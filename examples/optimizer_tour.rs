//! A tour of the §4 transformation rules: for each rule, a query where
//! it fires, the before/after plans, and the measured effect of firing
//! it (engine counters with the rule off vs on).
//!
//! Run with: `cargo run --release --example optimizer_tour`

use xmlpub::xml::workloads;
use xmlpub::{Database, OptimizerConfig};

fn show_rule(name: &str, rule: &str, sql: &str, scale: f64) -> xmlpub::Result<()> {
    let mut db = Database::tpch(scale)?;
    println!("\n======== {name} ========");

    // Without any rules.
    db.config_mut().skip_optimizer = true;
    let (r_off, s_off) = db.sql_with_stats(sql)?;

    // With only this rule (plus selection pushdown where the rule
    // depends on it).
    db.config_mut().skip_optimizer = false;
    db.config_mut().optimizer = OptimizerConfig::only(rule);
    db.config_mut().optimizer.cost_gate = false;
    let (plan, log) = db.optimized_plan(sql)?;
    let (r_on, s_on) = db.sql_with_stats(sql)?;

    assert!(r_off.bag_eq(&r_on), "rule changed the result!\n{}", r_off.bag_diff(&r_on));
    println!("rule fired {} time(s)", log.iter().filter(|f| f.rule == rule).count());
    println!("optimized plan:\n{}", plan.explain());
    println!(
        "work without rule: {} group rows scanned, {} rows hashed, {} rows scanned",
        s_off.group_rows_scanned, s_off.rows_hashed, s_off.rows_scanned
    );
    println!(
        "work with rule:    {} group rows scanned, {} rows hashed, {} rows scanned",
        s_on.group_rows_scanned, s_on.rows_hashed, s_on.rows_scanned
    );
    Ok(())
}

fn main() -> xmlpub::Result<()> {
    show_rule(
        "Placing Selections Before GApply (§4.1, Theorem 1)",
        "select-before-gapply",
        &workloads::selection_sweep_sql(2050.0),
        0.003,
    )?;

    show_rule(
        "Placing Projections Before GApply (§4.1)",
        "project-before-gapply",
        &workloads::projection_sweep_sql(false),
        0.003,
    )?;

    show_rule(
        "Converting GApply to groupby (§4.1, Figure 4)",
        "gapply-to-groupby",
        &workloads::to_groupby_sweep_sql(),
        0.003,
    )?;

    show_rule(
        "Group Selection via exists (§4.2, Figures 5 & 6)",
        "group-selection-exists",
        &workloads::exists_sweep_sql(2080.0),
        0.003,
    )?;

    show_rule(
        "Aggregate Selection (§4.2)",
        "group-selection-aggregate",
        &workloads::aggregate_selection_sweep_sql(1520.0),
        0.003,
    )?;

    show_rule(
        "Invariant Grouping (§4.3, Theorem 2, Figure 7)",
        "invariant-grouping",
        &workloads::invariant_grouping_sweep_sql(),
        0.003,
    )?;

    println!("\nAll rules preserved results while cutting the measured work.");
    Ok(())
}
