//! Quickstart: load TPC-H data, run the paper's Q1 in both formulations,
//! and look at the plans (Figure 2's logical tree, before and after the
//! optimizer).
//!
//! Run with: `cargo run --release --example quickstart`

use xmlpub::Database;

fn main() -> xmlpub::Result<()> {
    // Generate a small TPC-H database: supplier, part, partsupp.
    let db = Database::tpch(0.002)?;
    println!("Loaded tables:");
    for t in db.catalog().tables() {
        println!("  {} ({} rows)", t.name, db.statistics().rows(&t.name));
    }

    // ---- The paper's Q1, §3.1 gapply formulation -----------------------
    let q1 = "select gapply(
                  select p_name, p_retailprice, null from g
                  union all
                  select null, null, avg(p_retailprice) from g
              ) as (p_name, p_retailprice, avgprice)
              from partsupp, part
              where ps_partkey = p_partkey
              group by ps_suppkey : g";

    println!("\n== Q1 (gapply formulation) ==\n{}", db.explain(q1)?);

    let (result, stats) = db.sql_with_stats(q1)?;
    println!("Q1 returned {} rows; engine counters: {stats:?}", result.len());

    // Show the first few rows of the publishing stream.
    let preview = xmlpub::Relation::from_rows_unchecked(
        result.schema().clone(),
        result.rows()[..8.min(result.len())].to_vec(),
    );
    println!("\nFirst rows:\n{}", preview.to_table_string());

    // ---- The same query the classic way (§2) ---------------------------
    let q1_classic = "(select ps_suppkey, p_name, p_retailprice, null
                       from partsupp, part where ps_partkey = p_partkey
                       union all
                       select ps_suppkey, null, null, avg(p_retailprice)
                       from partsupp, part where ps_partkey = p_partkey
                       group by ps_suppkey)
                      order by ps_suppkey";
    let (classic, classic_stats) = db.sql_with_stats(q1_classic)?;
    println!("\nClassic formulation returns the same bag: {}", classic.bag_eq(&result));
    println!(
        "Classic plan scans {} base rows vs {} with GApply — the §2 redundancy, measured.",
        classic_stats.rows_scanned, stats.rows_scanned
    );
    Ok(())
}
