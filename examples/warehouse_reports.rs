//! Groupwise processing for decision support — the data-warehousing
//! motivation the paper inherits from Chatziantoniou & Ross [5, 6].
//!
//! "In this respect our work adds weight to the claim that such an
//! operator is an important addition to relational query evaluation
//! engines" (§1). This example runs warehouse-style reports over the
//! full TPC-H subset (customers, orders, lineitems) where each report
//! performs several related computations per group — exactly the
//! queries that are clumsy as self-joined SQL and natural as `gapply`.
//!
//! Run with: `cargo run --release --example warehouse_reports`

use xmlpub::Database;

fn main() -> xmlpub::Result<()> {
    let db = Database::tpch_full(0.0008)?;
    println!("Tables:");
    for t in db.catalog().tables() {
        println!("  {:<10} {:>8} rows", t.name, db.statistics().rows(&t.name));
    }

    // ---- Report 1: per customer, orders above/below their own average --
    // (the classic "multiple features of groups" query of [5]).
    let report1 = "select gapply(
                       select count(*), null, null from g
                       where o_totalprice >= (select avg(o_totalprice) from g)
                       union all
                       select null, count(*), null from g
                       where o_totalprice < (select avg(o_totalprice) from g)
                       union all
                       select null, null, max(o_totalprice) from g
                   ) as (big_orders, small_orders, max_order)
                   from customer, orders
                   where o_custkey = c_custkey
                   group by c_custkey : g";
    let (r1, s1) = db.sql_with_stats(report1)?;
    println!(
        "\nReport 1: {} rows (3 per customer), {} groups partitioned once, \
         {} base rows scanned",
        r1.len(),
        s1.groups_processed,
        s1.rows_scanned
    );

    // ---- Report 2: high-discount line items per order -------------------
    let report2 = "select gapply(
                       select l_linenumber, l_extendedprice, l_discount from g
                       where l_discount >= 2 * (select avg(l_discount) from g)
                   ) as (line, price, discount)
                   from orders, lineitem
                   where l_orderkey = o_orderkey
                   group by o_orderkey : g";
    let (r2, _) = db.sql_with_stats(report2)?;
    println!("Report 2: {} line items discounted at ≥ 2× their order's average", r2.len());

    // ---- Report 3: group selection over nations --------------------------
    // Which nations have some supplier with a very large account balance?
    let report3 = "select gapply(
                       select * from g where exists
                       (select 1 from g where s_acctbal > 9000.0)
                   )
                   from nation, supplier
                   where s_nationkey = n_nationkey
                   group by n_nationkey : g";
    let (r3, _) = db.sql_with_stats(report3)?;
    let nations = r3.distinct_values(0).len();
    println!("Report 3: {nations} nations have a supplier with balance > 9000");

    // The optimizer turns that into the Figure 5 id-join plan; show it.
    println!("\n== Report 3 plans ==\n{}", db.explain(report3)?);
    Ok(())
}
