//! XML publishing end to end: define the Figure 1 view, generate the
//! sorted outer union, execute it, and tag the clustered stream into an
//! XML document with the constant-space tagger. Then run an XQuery over
//! the view, translated both ways.
//!
//! Run with: `cargo run --release --example xml_publishing`

use xmlpub::xml::souq::sorted_outer_union;
use xmlpub::xml::xquery::ViewSql;
use xmlpub::xml::{supplier_parts_view, workloads};
use xmlpub::Database;

fn main() -> xmlpub::Result<()> {
    let db = Database::tpch(0.0005)?; // 5 suppliers, keeps the document small

    // ---- Publish the whole view ----------------------------------------
    let view = supplier_parts_view(db.catalog())?;
    let sou = sorted_outer_union(&view)?;
    println!("== sorted outer union plan ==\n{}", sou.plan.explain());

    let xml = db.publish(&view, true)?;
    let lines: Vec<&str> = xml.lines().collect();
    println!("== first 20 lines of the document ==");
    for line in lines.iter().take(20) {
        println!("{line}");
    }
    println!("... ({} lines total)\n", lines.len());

    // ---- An XQuery over the view, translated two ways -------------------
    let q1 = workloads::q1();
    println!("== XQuery (Q1) ==\n{}", q1.xquery.as_ref().unwrap());
    println!("== classic SQL (sorted outer union, §2) ==\n{}\n", q1.classic_sql);
    println!("== gapply SQL (§3.1) ==\n{}\n", q1.gapply_sql);

    let classic = db.sql(&q1.classic_sql)?;
    let gapply = db.sql(&q1.gapply_sql)?;
    println!(
        "both formulations return the same bag of {} rows: {}",
        gapply.len(),
        classic.bag_eq(&gapply)
    );

    // The gapply result is clustered by the supplier key when sort
    // partitioning is used, so it can feed the same tagger without the
    // extra ORDER BY the classic formulation needs.
    let view_sql = ViewSql::supplier_parts();
    println!(
        "\n(the gapply translation used grouping key '{}' from '{}')",
        view_sql.key, view_sql.child_from
    );
    Ok(())
}
