//! Umbrella crate for the reproduction workspace.
//!
//! The real public API lives in the [`xmlpub`] facade crate; this root
//! package exists to host the runnable `examples/` and the cross-crate
//! integration tests in `tests/`.

pub use xmlpub::*;
