//! Catalog: table definitions, key metadata, and the in-memory store.
//!
//! The invariant-grouping rule (§4.3) may only move a `GApply` below a
//! *foreign-key join*, so the catalog records primary keys and foreign
//! keys alongside schemas. Table data lives here too — this workspace's
//! "storage engine" is an in-memory [`Relation`] per table.
//!
//! Since the update workload opened (PR 9), table data is *versioned
//! and interior-mutable*: each table holds its relation behind an
//! `RwLock` next to a monotonically increasing version and a bounded
//! log of the [`DeltaBatch`]es that produced recent versions. Readers
//! ([`Catalog::data`]) snapshot the `Arc<Relation>` — a scan holds the
//! version it started on for its whole lifetime, unperturbed by
//! concurrent writers — while [`Catalog::apply_delta`] installs the
//! next version copy-on-write (in place when no reader still pins the
//! previous snapshot). Incremental consumers call
//! [`Catalog::deltas_since`] to catch up from the version they derived
//! their state at; `None` means the log has been trimmed past that
//! point and the consumer must rebuild from scratch.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, RwLock};
use xmlpub_common::{DeltaBatch, Error, Relation, Result, Schema};

/// Delta-log entries retained per table. Bounds memory under a sustained
/// update stream; consumers further behind than this fall back to a full
/// rebuild (`deltas_since` returns `None`).
pub const DELTA_LOG_CAPACITY: usize = 64;

/// A foreign-key constraint: `columns` of the owning table reference
/// `ref_columns` (a key) of `ref_table`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing columns (in the owning table).
    pub columns: Vec<String>,
    /// Referenced table.
    pub ref_table: String,
    /// Referenced key columns.
    pub ref_columns: Vec<String>,
}

/// A table definition: schema plus key metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct TableDef {
    /// Table name (lower-cased for lookup).
    pub name: String,
    /// Column schema (fields qualified by the table name).
    pub schema: Schema,
    /// Primary-key column names (empty when keyless).
    pub primary_key: Vec<String>,
    /// Outgoing foreign keys.
    pub foreign_keys: Vec<ForeignKey>,
}

impl TableDef {
    /// A keyless table definition.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        let name = name.into();
        let schema = schema.with_qualifier(&name);
        TableDef { name, schema, primary_key: Vec::new(), foreign_keys: Vec::new() }
    }

    /// Set the primary key.
    pub fn with_primary_key(mut self, cols: &[&str]) -> Self {
        self.primary_key = cols.iter().map(|c| c.to_string()).collect();
        self
    }

    /// Add a foreign key.
    pub fn with_foreign_key(mut self, cols: &[&str], ref_table: &str, ref_cols: &[&str]) -> Self {
        self.foreign_keys.push(ForeignKey {
            columns: cols.iter().map(|c| c.to_string()).collect(),
            ref_table: ref_table.to_string(),
            ref_columns: ref_cols.iter().map(|c| c.to_string()).collect(),
        });
        self
    }
}

/// One table's mutable state: the current snapshot, its version, and
/// the recent delta history.
#[derive(Debug)]
struct TableState {
    /// Current snapshot. Readers clone the `Arc`; writers install the
    /// next version with `Arc::make_mut` (in place when unshared).
    data: Arc<Relation>,
    /// Version of `data`. 0 at registration, +1 per applied batch.
    version: u64,
    /// Recent history: `(v, batch)` means applying `batch` to version
    /// `v - 1` produced version `v`. Contiguous, newest at the back,
    /// trimmed at [`DELTA_LOG_CAPACITY`].
    log: VecDeque<(u64, DeltaBatch)>,
}

#[derive(Debug)]
struct TableEntry {
    /// Definition — immutable after registration, readable without
    /// taking the state lock (the binder and the static analyses only
    /// ever touch this part).
    def: TableDef,
    state: RwLock<TableState>,
}

/// A named collection of tables with their (versioned) data.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: BTreeMap<String, TableEntry>,
}

impl Clone for Catalog {
    /// Snapshot clone: the new catalog sees every table at its current
    /// version with an empty history, and is not connected to the
    /// original — updates on either side are invisible to the other.
    fn clone(&self) -> Self {
        let tables = self
            .tables
            .iter()
            .map(|(k, e)| {
                let state = e.state.read().expect("catalog lock poisoned");
                (
                    k.clone(),
                    TableEntry {
                        def: e.def.clone(),
                        state: RwLock::new(TableState {
                            data: Arc::clone(&state.data),
                            version: state.version,
                            log: state.log.clone(),
                        }),
                    },
                )
            })
            .collect();
        Catalog { tables }
    }
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a table. The relation's schema must have the same arity
    /// as the definition.
    pub fn register(&mut self, def: TableDef, data: Relation) -> Result<()> {
        let key = def.name.to_ascii_lowercase();
        if self.tables.contains_key(&key) {
            return Err(Error::Catalog(format!("table '{}' already exists", def.name)));
        }
        if def.schema.len() != data.schema().len() {
            return Err(Error::Catalog(format!(
                "table '{}': definition has {} columns but data has {}",
                def.name,
                def.schema.len(),
                data.schema().len()
            )));
        }
        self.tables.insert(
            key,
            TableEntry {
                def,
                state: RwLock::new(TableState {
                    data: Arc::new(data),
                    version: 0,
                    log: VecDeque::new(),
                }),
            },
        );
        Ok(())
    }

    fn entry(&self, name: &str) -> Result<&TableEntry> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| Error::Catalog(format!("no such table '{name}'")))
    }

    /// Look up a table definition.
    pub fn table(&self, name: &str) -> Result<&TableDef> {
        self.entry(name).map(|e| &e.def)
    }

    /// Look up a table's data — a snapshot: the returned `Arc` keeps
    /// observing the version current at the call even if a writer
    /// installs newer versions afterwards.
    pub fn data(&self, name: &str) -> Result<Arc<Relation>> {
        let e = self.entry(name)?;
        Ok(Arc::clone(&e.state.read().expect("catalog lock poisoned").data))
    }

    /// A table's data together with the version it is at.
    pub fn data_versioned(&self, name: &str) -> Result<(Arc<Relation>, u64)> {
        let e = self.entry(name)?;
        let state = e.state.read().expect("catalog lock poisoned");
        Ok((Arc::clone(&state.data), state.version))
    }

    /// The current version of a table (0 until the first delta).
    pub fn version(&self, name: &str) -> Result<u64> {
        Ok(self.entry(name)?.state.read().expect("catalog lock poisoned").version)
    }

    /// Apply a batch of appends/deletes to a table, returning the new
    /// version. The new snapshot is installed copy-on-write: when no
    /// reader still pins the previous `Arc` the relation (and its
    /// derived caches and string dictionaries) is extended in place, so
    /// steady-state update cost tracks the batch, not the table.
    pub fn apply_delta(&self, name: &str, delta: &DeltaBatch) -> Result<u64> {
        let e = self.entry(name)?;
        let mut state = e.state.write().expect("catalog lock poisoned");
        if delta.is_empty() {
            return Ok(state.version);
        }
        // Work on a local handle so a failed apply (phantom delete,
        // arity error) leaves the published snapshot untouched even if
        // `make_mut` already forked.
        let mut next = Arc::clone(&state.data);
        Arc::make_mut(&mut next).apply_delta(delta)?;
        state.data = next;
        state.version += 1;
        let v = state.version;
        state.log.push_back((v, delta.clone()));
        while state.log.len() > DELTA_LOG_CAPACITY {
            state.log.pop_front();
        }
        Ok(v)
    }

    /// The contiguous run of deltas that advances version `since` to the
    /// current version, oldest first. `Some(vec![])` when the table is
    /// still at `since`; `None` when the log no longer reaches back that
    /// far (or `since` is from the future) — the caller must rebuild
    /// from a fresh snapshot.
    pub fn deltas_since(&self, name: &str, since: u64) -> Result<Option<Vec<DeltaBatch>>> {
        let e = self.entry(name)?;
        let state = e.state.read().expect("catalog lock poisoned");
        if since > state.version {
            return Ok(None);
        }
        if since == state.version {
            return Ok(Some(Vec::new()));
        }
        match state.log.front() {
            Some(&(oldest, _)) if oldest <= since + 1 => Ok(Some(
                state.log.iter().filter(|(v, _)| *v > since).map(|(_, b)| b.clone()).collect(),
            )),
            _ => Ok(None),
        }
    }

    /// Iterate registered table definitions (sorted by name).
    pub fn tables(&self) -> impl Iterator<Item = &TableDef> {
        self.tables.values().map(|e| &e.def)
    }

    /// Does `from_table(from_cols) = to_table(to_cols)` match a declared
    /// foreign key from `from_table` onto a key of `to_table`? This is
    /// what the binder uses to set the `fk_left_to_right` annotation.
    pub fn is_foreign_key_join(
        &self,
        from_table: &str,
        from_cols: &[&str],
        to_table: &str,
        to_cols: &[&str],
    ) -> bool {
        let Ok(def) = self.table(from_table) else {
            return false;
        };
        def.foreign_keys.iter().any(|fk| {
            fk.ref_table.eq_ignore_ascii_case(to_table)
                && eq_name_sets(&fk.columns, from_cols)
                && eq_name_sets(&fk.ref_columns, to_cols)
        })
    }

    /// Whether `cols` is (a superset of) the declared primary key of
    /// `table` — i.e. grouping by them yields one group per row.
    pub fn covers_primary_key(&self, table: &str, cols: &[&str]) -> bool {
        let Ok(def) = self.table(table) else {
            return false;
        };
        !def.primary_key.is_empty()
            && def.primary_key.iter().all(|k| cols.iter().any(|c| c.eq_ignore_ascii_case(k)))
    }
}

fn eq_name_sets(a: &[String], b: &[&str]) -> bool {
    a.len() == b.len() && a.iter().all(|x| b.iter().any(|y| x.eq_ignore_ascii_case(y)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlpub_common::{row, DataType, Field};

    fn supplier_def() -> TableDef {
        TableDef::new(
            "supplier",
            Schema::new(vec![
                Field::new("s_suppkey", DataType::Int),
                Field::new("s_name", DataType::Str),
            ]),
        )
        .with_primary_key(&["s_suppkey"])
    }

    fn partsupp_def() -> TableDef {
        TableDef::new(
            "partsupp",
            Schema::new(vec![
                Field::new("ps_suppkey", DataType::Int),
                Field::new("ps_partkey", DataType::Int),
            ]),
        )
        .with_primary_key(&["ps_suppkey", "ps_partkey"])
        .with_foreign_key(&["ps_suppkey"], "supplier", &["s_suppkey"])
    }

    fn sample_catalog() -> Catalog {
        let mut cat = Catalog::new();
        let sup = supplier_def();
        let data =
            Relation::new(sup.schema.clone(), vec![row![1, "Acme"], row![2, "Globex"]]).unwrap();
        cat.register(sup, data).unwrap();
        let ps = partsupp_def();
        let data = Relation::new(ps.schema.clone(), vec![row![1, 10], row![1, 11]]).unwrap();
        cat.register(ps, data).unwrap();
        cat
    }

    #[test]
    fn register_and_lookup() {
        let cat = sample_catalog();
        assert_eq!(cat.table("SUPPLIER").unwrap().name, "supplier");
        assert_eq!(cat.data("supplier").unwrap().len(), 2);
        assert!(cat.table("nope").is_err());
        assert!(cat.data("nope").is_err());
        assert_eq!(cat.tables().count(), 2);
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut cat = sample_catalog();
        let dup = supplier_def();
        let data = Relation::empty(dup.schema.clone());
        assert!(cat.register(dup, data).is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut cat = Catalog::new();
        let def = supplier_def();
        let bad = Relation::empty(Schema::new(vec![Field::new("x", DataType::Int)]));
        assert!(cat.register(def, bad).is_err());
    }

    #[test]
    fn table_schema_is_qualified() {
        let cat = sample_catalog();
        let def = cat.table("supplier").unwrap();
        assert_eq!(def.schema.field(0).qualifier.as_deref(), Some("supplier"));
    }

    #[test]
    fn fk_join_detection() {
        let cat = sample_catalog();
        assert!(cat.is_foreign_key_join("partsupp", &["ps_suppkey"], "supplier", &["s_suppkey"]));
        assert!(cat.is_foreign_key_join("PARTSUPP", &["PS_SUPPKEY"], "Supplier", &["S_SUPPKEY"]));
        assert!(!cat.is_foreign_key_join("supplier", &["s_suppkey"], "partsupp", &["ps_suppkey"]));
        assert!(!cat.is_foreign_key_join("partsupp", &["ps_partkey"], "supplier", &["s_suppkey"]));
    }

    #[test]
    fn apply_delta_versions_snapshots_and_log() {
        let cat = sample_catalog();
        assert_eq!(cat.version("supplier").unwrap(), 0);
        // A reader snapshot taken before the delta keeps seeing v0.
        let before = cat.data("supplier").unwrap();
        let v = cat
            .apply_delta(
                "supplier",
                &DeltaBatch::new(vec![row![3, "Initech"]], vec![row![2, "Globex"]]),
            )
            .unwrap();
        assert_eq!(v, 1);
        assert_eq!(before.len(), 2, "pre-delta snapshot is immutable");
        let after = cat.data("supplier").unwrap();
        assert_eq!(after.len(), 2);
        assert_eq!(after.rows()[1], row![3, "Initech"]);
        // Catch-up: everything since v0 in one contiguous run.
        let run = cat.deltas_since("supplier", 0).unwrap().expect("log covers v0");
        assert_eq!(run.len(), 1);
        assert_eq!(run[0].appended, vec![row![3, "Initech"]]);
        assert_eq!(cat.deltas_since("supplier", 1).unwrap(), Some(vec![]));
        // Future versions and empty batches.
        assert_eq!(cat.deltas_since("supplier", 9).unwrap(), None);
        assert_eq!(cat.apply_delta("supplier", &DeltaBatch::default()).unwrap(), 1);
        // A failed apply (phantom delete) leaves version and data alone.
        assert!(cat.apply_delta("supplier", &DeltaBatch::deletes(vec![row![99, "nope"]])).is_err());
        assert_eq!(cat.version("supplier").unwrap(), 1);
        assert_eq!(cat.data("supplier").unwrap().len(), 2);
        assert!(cat.apply_delta("nope", &DeltaBatch::default()).is_err());
    }

    #[test]
    fn delta_log_is_bounded_and_trims_oldest() {
        let cat = sample_catalog();
        for i in 0..(DELTA_LOG_CAPACITY as i64 + 8) {
            cat.apply_delta("supplier", &DeltaBatch::appends(vec![row![100 + i, "S"]])).unwrap();
        }
        let v = cat.version("supplier").unwrap();
        assert_eq!(v, DELTA_LOG_CAPACITY as u64 + 8);
        // Too far behind: trimmed.
        assert_eq!(cat.deltas_since("supplier", 0).unwrap(), None);
        // Within the window: a contiguous suffix.
        let run = cat.deltas_since("supplier", v - 5).unwrap().expect("recent");
        assert_eq!(run.len(), 5);
        let (rel, rv) = cat.data_versioned("supplier").unwrap();
        assert_eq!(rv, v);
        assert_eq!(rel.len(), 2 + DELTA_LOG_CAPACITY + 8);
    }

    #[test]
    fn clone_is_a_disconnected_snapshot() {
        let cat = sample_catalog();
        cat.apply_delta("supplier", &DeltaBatch::appends(vec![row![3, "Initech"]])).unwrap();
        let copy = cat.clone();
        assert_eq!(copy.version("supplier").unwrap(), 1);
        cat.apply_delta("supplier", &DeltaBatch::appends(vec![row![4, "Umbrella"]])).unwrap();
        assert_eq!(cat.version("supplier").unwrap(), 2);
        assert_eq!(copy.version("supplier").unwrap(), 1);
        assert_eq!(copy.data("supplier").unwrap().len(), 3);
        copy.apply_delta("supplier", &DeltaBatch::appends(vec![row![5, "Wonka"]])).unwrap();
        assert_eq!(cat.data("supplier").unwrap().len(), 4);
    }

    #[test]
    fn primary_key_cover() {
        let cat = sample_catalog();
        assert!(cat.covers_primary_key("supplier", &["s_suppkey", "s_name"]));
        assert!(cat.covers_primary_key("supplier", &["s_suppkey"]));
        assert!(!cat.covers_primary_key("supplier", &["s_name"]));
        assert!(!cat.covers_primary_key("partsupp", &["ps_suppkey"]));
        assert!(cat.covers_primary_key("partsupp", &["ps_suppkey", "ps_partkey"]));
        assert!(!cat.covers_primary_key("nope", &["x"]));
    }
}
