//! Catalog: table definitions, key metadata, and the in-memory store.
//!
//! The invariant-grouping rule (§4.3) may only move a `GApply` below a
//! *foreign-key join*, so the catalog records primary keys and foreign
//! keys alongside schemas. Table data lives here too — this workspace's
//! "storage engine" is an in-memory [`Relation`] per table, which is all
//! the paper's single-node, read-only evaluation needs.

use std::collections::BTreeMap;
use std::sync::Arc;
use xmlpub_common::{Error, Relation, Result, Schema};

/// A foreign-key constraint: `columns` of the owning table reference
/// `ref_columns` (a key) of `ref_table`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing columns (in the owning table).
    pub columns: Vec<String>,
    /// Referenced table.
    pub ref_table: String,
    /// Referenced key columns.
    pub ref_columns: Vec<String>,
}

/// A table definition: schema plus key metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct TableDef {
    /// Table name (lower-cased for lookup).
    pub name: String,
    /// Column schema (fields qualified by the table name).
    pub schema: Schema,
    /// Primary-key column names (empty when keyless).
    pub primary_key: Vec<String>,
    /// Outgoing foreign keys.
    pub foreign_keys: Vec<ForeignKey>,
}

impl TableDef {
    /// A keyless table definition.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        let name = name.into();
        let schema = schema.with_qualifier(&name);
        TableDef { name, schema, primary_key: Vec::new(), foreign_keys: Vec::new() }
    }

    /// Set the primary key.
    pub fn with_primary_key(mut self, cols: &[&str]) -> Self {
        self.primary_key = cols.iter().map(|c| c.to_string()).collect();
        self
    }

    /// Add a foreign key.
    pub fn with_foreign_key(mut self, cols: &[&str], ref_table: &str, ref_cols: &[&str]) -> Self {
        self.foreign_keys.push(ForeignKey {
            columns: cols.iter().map(|c| c.to_string()).collect(),
            ref_table: ref_table.to_string(),
            ref_columns: ref_cols.iter().map(|c| c.to_string()).collect(),
        });
        self
    }
}

/// A named collection of tables with their data.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, (TableDef, Arc<Relation>)>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a table. The relation's schema must have the same arity
    /// as the definition.
    pub fn register(&mut self, def: TableDef, data: Relation) -> Result<()> {
        let key = def.name.to_ascii_lowercase();
        if self.tables.contains_key(&key) {
            return Err(Error::Catalog(format!("table '{}' already exists", def.name)));
        }
        if def.schema.len() != data.schema().len() {
            return Err(Error::Catalog(format!(
                "table '{}': definition has {} columns but data has {}",
                def.name,
                def.schema.len(),
                data.schema().len()
            )));
        }
        self.tables.insert(key, (def, Arc::new(data)));
        Ok(())
    }

    /// Look up a table definition.
    pub fn table(&self, name: &str) -> Result<&TableDef> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .map(|(def, _)| def)
            .ok_or_else(|| Error::Catalog(format!("no such table '{name}'")))
    }

    /// Look up a table's data.
    pub fn data(&self, name: &str) -> Result<Arc<Relation>> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .map(|(_, data)| Arc::clone(data))
            .ok_or_else(|| Error::Catalog(format!("no such table '{name}'")))
    }

    /// Iterate registered table definitions (sorted by name).
    pub fn tables(&self) -> impl Iterator<Item = &TableDef> {
        self.tables.values().map(|(def, _)| def)
    }

    /// Does `from_table(from_cols) = to_table(to_cols)` match a declared
    /// foreign key from `from_table` onto a key of `to_table`? This is
    /// what the binder uses to set the `fk_left_to_right` annotation.
    pub fn is_foreign_key_join(
        &self,
        from_table: &str,
        from_cols: &[&str],
        to_table: &str,
        to_cols: &[&str],
    ) -> bool {
        let Ok(def) = self.table(from_table) else {
            return false;
        };
        def.foreign_keys.iter().any(|fk| {
            fk.ref_table.eq_ignore_ascii_case(to_table)
                && eq_name_sets(&fk.columns, from_cols)
                && eq_name_sets(&fk.ref_columns, to_cols)
        })
    }

    /// Whether `cols` is (a superset of) the declared primary key of
    /// `table` — i.e. grouping by them yields one group per row.
    pub fn covers_primary_key(&self, table: &str, cols: &[&str]) -> bool {
        let Ok(def) = self.table(table) else {
            return false;
        };
        !def.primary_key.is_empty()
            && def.primary_key.iter().all(|k| cols.iter().any(|c| c.eq_ignore_ascii_case(k)))
    }
}

fn eq_name_sets(a: &[String], b: &[&str]) -> bool {
    a.len() == b.len() && a.iter().all(|x| b.iter().any(|y| x.eq_ignore_ascii_case(y)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlpub_common::{row, DataType, Field};

    fn supplier_def() -> TableDef {
        TableDef::new(
            "supplier",
            Schema::new(vec![
                Field::new("s_suppkey", DataType::Int),
                Field::new("s_name", DataType::Str),
            ]),
        )
        .with_primary_key(&["s_suppkey"])
    }

    fn partsupp_def() -> TableDef {
        TableDef::new(
            "partsupp",
            Schema::new(vec![
                Field::new("ps_suppkey", DataType::Int),
                Field::new("ps_partkey", DataType::Int),
            ]),
        )
        .with_primary_key(&["ps_suppkey", "ps_partkey"])
        .with_foreign_key(&["ps_suppkey"], "supplier", &["s_suppkey"])
    }

    fn sample_catalog() -> Catalog {
        let mut cat = Catalog::new();
        let sup = supplier_def();
        let data =
            Relation::new(sup.schema.clone(), vec![row![1, "Acme"], row![2, "Globex"]]).unwrap();
        cat.register(sup, data).unwrap();
        let ps = partsupp_def();
        let data = Relation::new(ps.schema.clone(), vec![row![1, 10], row![1, 11]]).unwrap();
        cat.register(ps, data).unwrap();
        cat
    }

    #[test]
    fn register_and_lookup() {
        let cat = sample_catalog();
        assert_eq!(cat.table("SUPPLIER").unwrap().name, "supplier");
        assert_eq!(cat.data("supplier").unwrap().len(), 2);
        assert!(cat.table("nope").is_err());
        assert!(cat.data("nope").is_err());
        assert_eq!(cat.tables().count(), 2);
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut cat = sample_catalog();
        let dup = supplier_def();
        let data = Relation::empty(dup.schema.clone());
        assert!(cat.register(dup, data).is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut cat = Catalog::new();
        let def = supplier_def();
        let bad = Relation::empty(Schema::new(vec![Field::new("x", DataType::Int)]));
        assert!(cat.register(def, bad).is_err());
    }

    #[test]
    fn table_schema_is_qualified() {
        let cat = sample_catalog();
        let def = cat.table("supplier").unwrap();
        assert_eq!(def.schema.field(0).qualifier.as_deref(), Some("supplier"));
    }

    #[test]
    fn fk_join_detection() {
        let cat = sample_catalog();
        assert!(cat.is_foreign_key_join("partsupp", &["ps_suppkey"], "supplier", &["s_suppkey"]));
        assert!(cat.is_foreign_key_join("PARTSUPP", &["PS_SUPPKEY"], "Supplier", &["S_SUPPKEY"]));
        assert!(!cat.is_foreign_key_join("supplier", &["s_suppkey"], "partsupp", &["ps_suppkey"]));
        assert!(!cat.is_foreign_key_join("partsupp", &["ps_partkey"], "supplier", &["s_suppkey"]));
    }

    #[test]
    fn primary_key_cover() {
        let cat = sample_catalog();
        assert!(cat.covers_primary_key("supplier", &["s_suppkey", "s_name"]));
        assert!(cat.covers_primary_key("supplier", &["s_suppkey"]));
        assert!(!cat.covers_primary_key("supplier", &["s_name"]));
        assert!(!cat.covers_primary_key("partsupp", &["ps_suppkey"]));
        assert!(cat.covers_primary_key("partsupp", &["ps_suppkey", "ps_partkey"]));
        assert!(!cat.covers_primary_key("nope", &["x"]));
    }
}
