//! The logical operator tree.
//!
//! Operator repertoire = the paper's §3/§4 algebra. Multiset semantics
//! throughout; `distinct` is explicit. Every node can derive its output
//! [`Schema`] from its inputs, and the tree renders as an indented
//! EXPLAIN-style listing via [`LogicalPlan::explain`].

use std::fmt;
use xmlpub_common::{DataType, Field, Schema, Value};
use xmlpub_expr::{AggExpr, Expr};

/// One projection item: an expression and an optional output alias.
#[derive(Debug, Clone, PartialEq)]
pub struct ProjectItem {
    /// The computed expression (often a bare column).
    pub expr: Expr,
    /// Output name; defaults to the source column's name for bare columns.
    pub alias: Option<String>,
}

impl ProjectItem {
    /// A bare column pass-through.
    pub fn col(index: usize) -> Self {
        ProjectItem { expr: Expr::col(index), alias: None }
    }

    /// An expression with an output alias.
    pub fn named(expr: Expr, alias: impl Into<String>) -> Self {
        ProjectItem { expr, alias: Some(alias.into()) }
    }

    /// Derive the output field against the input schema.
    pub fn output_field(&self, input: &Schema, position: usize) -> Field {
        match (&self.expr, &self.alias) {
            (Expr::Column(i), None) => input
                .fields()
                .get(*i)
                .cloned()
                .unwrap_or_else(|| Field::new(format!("_c{position}"), DataType::Null)),
            (expr, alias) => {
                let name = alias.clone().unwrap_or_else(|| format!("_c{position}"));
                // A NULL literal keeps type Null so unions can unify it
                // against the sibling branch (sorted-outer-union padding).
                // An alias of the form `qualifier.name` produces a
                // qualified field — how the binder re-qualifies derived
                // table columns under their FROM alias.
                match name.split_once('.') {
                    Some((q, n)) => Field::qualified(q, n, expr.data_type(input)),
                    None => Field::new(name, expr.data_type(input)),
                }
            }
        }
    }
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    /// Sort expression (usually a column).
    pub expr: Expr,
    /// Ascending?
    pub asc: bool,
}

impl SortKey {
    /// Ascending sort on a column.
    pub fn asc(col: usize) -> Self {
        SortKey { expr: Expr::col(col), asc: true }
    }

    /// Descending sort on a column.
    pub fn desc(col: usize) -> Self {
        SortKey { expr: Expr::col(col), asc: false }
    }
}

/// How an `Apply` combines each outer row with its inner result
/// (the subquery execution model of [12] in the paper's references).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyMode {
    /// `R A E = ⋃_{r∈R} {r} × E(r)`: an outer row with an empty inner
    /// result disappears. This is the paper's `apply`.
    Cross,
    /// Keep outer rows whose inner result is empty, padding with NULLs.
    LeftOuter,
    /// Scalar-subquery apply: inner must yield ≤ 1 row; 0 rows pad with
    /// NULLs, > 1 row is a runtime error.
    Scalar,
}

impl ApplyMode {
    fn label(self) -> &'static str {
        match self {
            ApplyMode::Cross => "cross",
            ApplyMode::LeftOuter => "outer",
            ApplyMode::Scalar => "scalar",
        }
    }
}

/// A logical query plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scan of a named base table.
    Scan {
        /// Table name in the catalog.
        table: String,
        /// The table schema (qualified by the binder's alias).
        schema: Schema,
    },
    /// Scan of the relation-valued variable bound by the enclosing
    /// `GApply` (the paper's `$group` temporary relation). Only legal
    /// inside a per-group query.
    GroupScan {
        /// Schema of the bound group — the (possibly projected) outer
        /// schema of the owning `GApply`.
        schema: Schema,
    },
    /// `σ_predicate(input)`.
    Select {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Boolean predicate (SQL WHERE semantics: NULL rejects).
        predicate: Expr,
    },
    /// Generalised projection `π_items(input)` (computes expressions).
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Output expressions in order.
        items: Vec<ProjectItem>,
    },
    /// Inner join with an arbitrary predicate over the concatenated
    /// schema (left columns first).
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Join predicate over `left.schema ++ right.schema`.
        predicate: Expr,
        /// Whether this is a *foreign-key join*: the predicate is a
        /// key/foreign-key equality where the left child has a foreign
        /// key referencing the right child's key, so every left row
        /// matches exactly one right row. Set by the binder from catalog
        /// metadata; required by the invariant-grouping rule (§4.3).
        fk_left_to_right: bool,
    },
    /// Left outer join: every left row survives; unmatched rows pad the
    /// right side with NULLs. Produced by the scalar-subquery
    /// decorrelation rewrite (Galindo-Legaria & Joshi style); not part of
    /// the paper's §4 rule patterns, which therefore never match it.
    LeftOuterJoin {
        /// Preserved side.
        left: Box<LogicalPlan>,
        /// Nullable side.
        right: Box<LogicalPlan>,
        /// Join predicate over `left.schema ++ right.schema`.
        predicate: Expr,
    },
    /// The paper's `GApply(GCols, PGQ)`.
    GApply {
        /// Outer query (the stream to partition).
        input: Box<LogicalPlan>,
        /// Grouping (partitioning) column indices into `input`'s schema.
        group_cols: Vec<usize>,
        /// Per-group query; its leaves are `GroupScan`s over the group.
        pgq: Box<LogicalPlan>,
    },
    /// Grouping aggregation: one output row per distinct key combination.
    GroupBy {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Grouping column indices.
        keys: Vec<usize>,
        /// Aggregates computed per group.
        aggs: Vec<AggExpr>,
    },
    /// The paper's `aggregate` operator: aggregates over the whole input,
    /// always producing exactly one row (even on empty input — the root
    /// of the emptyOnEmpty analysis).
    ScalarAgg {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Aggregates to compute.
        aggs: Vec<AggExpr>,
    },
    /// Bag union of 2+ compatible inputs.
    UnionAll {
        /// The branches.
        inputs: Vec<LogicalPlan>,
    },
    /// Duplicate elimination.
    Distinct {
        /// Input plan.
        input: Box<LogicalPlan>,
    },
    /// Sort (presentational; also used to cluster rows for the tagger).
    OrderBy {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Sort keys, major first.
        keys: Vec<SortKey>,
    },
    /// Correlated apply: evaluate `inner` once per outer row, with the
    /// outer row visible to the inner plan through
    /// `Expr::Correlated { level: 0, .. }`.
    Apply {
        /// Outer input.
        outer: Box<LogicalPlan>,
        /// Parameterised inner plan.
        inner: Box<LogicalPlan>,
        /// Combination mode.
        mode: ApplyMode,
    },
    /// The paper's `exists`: `{()}` (one tuple over the null schema) if
    /// the input is non-empty, else `∅`. With `negated` the two cases
    /// swap, giving NOT EXISTS.
    Exists {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// NOT EXISTS?
        negated: bool,
    },
}

impl LogicalPlan {
    /// Scan constructor.
    pub fn scan(table: impl Into<String>, schema: Schema) -> LogicalPlan {
        LogicalPlan::Scan { table: table.into(), schema }
    }

    /// Group-scan constructor.
    pub fn group_scan(schema: Schema) -> LogicalPlan {
        LogicalPlan::GroupScan { schema }
    }

    /// Wrap in a selection.
    pub fn select(self, predicate: Expr) -> LogicalPlan {
        LogicalPlan::Select { input: Box::new(self), predicate }
    }

    /// Wrap in a projection.
    pub fn project(self, items: Vec<ProjectItem>) -> LogicalPlan {
        LogicalPlan::Project { input: Box::new(self), items }
    }

    /// Project onto bare columns.
    pub fn project_cols(self, cols: &[usize]) -> LogicalPlan {
        self.project(cols.iter().map(|&c| ProjectItem::col(c)).collect())
    }

    /// Join with another plan.
    pub fn join(self, right: LogicalPlan, predicate: Expr) -> LogicalPlan {
        LogicalPlan::Join {
            left: Box::new(self),
            right: Box::new(right),
            predicate,
            fk_left_to_right: false,
        }
    }

    /// Left outer join with another plan.
    pub fn left_outer_join(self, right: LogicalPlan, predicate: Expr) -> LogicalPlan {
        LogicalPlan::LeftOuterJoin { left: Box::new(self), right: Box::new(right), predicate }
    }

    /// Join annotated as a foreign-key join (left has FK to right).
    pub fn fk_join(self, right: LogicalPlan, predicate: Expr) -> LogicalPlan {
        LogicalPlan::Join {
            left: Box::new(self),
            right: Box::new(right),
            predicate,
            fk_left_to_right: true,
        }
    }

    /// Wrap in a GApply.
    pub fn gapply(self, group_cols: Vec<usize>, pgq: LogicalPlan) -> LogicalPlan {
        LogicalPlan::GApply { input: Box::new(self), group_cols, pgq: Box::new(pgq) }
    }

    /// Wrap in a group-by.
    pub fn group_by(self, keys: Vec<usize>, aggs: Vec<AggExpr>) -> LogicalPlan {
        LogicalPlan::GroupBy { input: Box::new(self), keys, aggs }
    }

    /// Wrap in a scalar aggregate.
    pub fn scalar_agg(self, aggs: Vec<AggExpr>) -> LogicalPlan {
        LogicalPlan::ScalarAgg { input: Box::new(self), aggs }
    }

    /// Bag-union with other branches.
    pub fn union_all(inputs: Vec<LogicalPlan>) -> LogicalPlan {
        LogicalPlan::UnionAll { inputs }
    }

    /// Wrap in duplicate elimination.
    pub fn distinct(self) -> LogicalPlan {
        LogicalPlan::Distinct { input: Box::new(self) }
    }

    /// Wrap in a sort.
    pub fn order_by(self, keys: Vec<SortKey>) -> LogicalPlan {
        LogicalPlan::OrderBy { input: Box::new(self), keys }
    }

    /// Correlated apply.
    pub fn apply(self, inner: LogicalPlan, mode: ApplyMode) -> LogicalPlan {
        LogicalPlan::Apply { outer: Box::new(self), inner: Box::new(inner), mode }
    }

    /// Existence test.
    pub fn exists(self) -> LogicalPlan {
        LogicalPlan::Exists { input: Box::new(self), negated: false }
    }

    /// Negated existence test.
    pub fn not_exists(self) -> LogicalPlan {
        LogicalPlan::Exists { input: Box::new(self), negated: true }
    }

    /// Derive the output schema.
    pub fn schema(&self) -> Schema {
        match self {
            LogicalPlan::Scan { schema, .. } | LogicalPlan::GroupScan { schema } => schema.clone(),
            LogicalPlan::Select { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::OrderBy { input, .. } => input.schema(),
            LogicalPlan::Project { input, items } => {
                let in_schema = input.schema();
                Schema::new(
                    items
                        .iter()
                        .enumerate()
                        .map(|(i, item)| item.output_field(&in_schema, i))
                        .collect(),
                )
            }
            LogicalPlan::Join { left, right, .. }
            | LogicalPlan::LeftOuterJoin { left, right, .. } => left.schema().join(&right.schema()),
            LogicalPlan::GApply { input, group_cols, pgq } => {
                let in_schema = input.schema();
                let key_fields: Vec<Field> =
                    group_cols.iter().map(|&c| in_schema.field(c).clone()).collect();
                Schema::new(key_fields).join(&pgq.schema())
            }
            LogicalPlan::GroupBy { input, keys, aggs } => {
                let in_schema = input.schema();
                let mut fields: Vec<Field> =
                    keys.iter().map(|&k| in_schema.field(k).clone()).collect();
                fields.extend(
                    aggs.iter().map(|a| Field::new(a.output_name.clone(), a.data_type(&in_schema))),
                );
                Schema::new(fields)
            }
            LogicalPlan::ScalarAgg { input, aggs } => {
                let in_schema = input.schema();
                Schema::new(
                    aggs.iter()
                        .map(|a| Field::new(a.output_name.clone(), a.data_type(&in_schema)))
                        .collect(),
                )
            }
            LogicalPlan::UnionAll { inputs } => {
                let mut schema = inputs
                    .first()
                    .map(|p| p.schema().without_qualifiers())
                    .unwrap_or_else(Schema::empty);
                for branch in inputs.iter().skip(1) {
                    // Branch compatibility is enforced by validate(); here
                    // unify types best-effort so NULL-padded branches
                    // (sorted outer unions) get the concrete sibling type.
                    if let Ok(unified) = schema.union_schema(&branch.schema()) {
                        schema = unified;
                    }
                }
                schema
            }
            LogicalPlan::Apply { outer, inner, .. } => outer.schema().join(&inner.schema()),
            LogicalPlan::Exists { .. } => Schema::empty(),
        }
    }

    /// Borrow the child plans in a fixed order (outer/left before
    /// inner/right; union branches in order).
    pub fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::Scan { .. } | LogicalPlan::GroupScan { .. } => vec![],
            LogicalPlan::Select { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::GroupBy { input, .. }
            | LogicalPlan::ScalarAgg { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::OrderBy { input, .. }
            | LogicalPlan::Exists { input, .. } => vec![input],
            LogicalPlan::Join { left, right, .. }
            | LogicalPlan::LeftOuterJoin { left, right, .. } => vec![left, right],
            LogicalPlan::GApply { input, pgq, .. } => vec![input, pgq],
            LogicalPlan::UnionAll { inputs } => inputs.iter().collect(),
            LogicalPlan::Apply { outer, inner, .. } => vec![outer, inner],
        }
    }

    /// Rebuild this node with children produced by `f` (applied in the
    /// same order as [`LogicalPlan::children`]).
    pub fn map_children(self, f: &mut impl FnMut(LogicalPlan) -> LogicalPlan) -> LogicalPlan {
        match self {
            leaf @ (LogicalPlan::Scan { .. } | LogicalPlan::GroupScan { .. }) => leaf,
            LogicalPlan::Select { input, predicate } => {
                LogicalPlan::Select { input: Box::new(f(*input)), predicate }
            }
            LogicalPlan::Project { input, items } => {
                LogicalPlan::Project { input: Box::new(f(*input)), items }
            }
            LogicalPlan::Join { left, right, predicate, fk_left_to_right } => LogicalPlan::Join {
                left: Box::new(f(*left)),
                right: Box::new(f(*right)),
                predicate,
                fk_left_to_right,
            },
            LogicalPlan::LeftOuterJoin { left, right, predicate } => LogicalPlan::LeftOuterJoin {
                left: Box::new(f(*left)),
                right: Box::new(f(*right)),
                predicate,
            },
            LogicalPlan::GApply { input, group_cols, pgq } => LogicalPlan::GApply {
                input: Box::new(f(*input)),
                group_cols,
                pgq: Box::new(f(*pgq)),
            },
            LogicalPlan::GroupBy { input, keys, aggs } => {
                LogicalPlan::GroupBy { input: Box::new(f(*input)), keys, aggs }
            }
            LogicalPlan::ScalarAgg { input, aggs } => {
                LogicalPlan::ScalarAgg { input: Box::new(f(*input)), aggs }
            }
            LogicalPlan::UnionAll { inputs } => {
                LogicalPlan::UnionAll { inputs: inputs.into_iter().map(f).collect() }
            }
            LogicalPlan::Distinct { input } => LogicalPlan::Distinct { input: Box::new(f(*input)) },
            LogicalPlan::OrderBy { input, keys } => {
                LogicalPlan::OrderBy { input: Box::new(f(*input)), keys }
            }
            LogicalPlan::Apply { outer, inner, mode } => {
                LogicalPlan::Apply { outer: Box::new(f(*outer)), inner: Box::new(f(*inner)), mode }
            }
            LogicalPlan::Exists { input, negated } => {
                LogicalPlan::Exists { input: Box::new(f(*input)), negated }
            }
        }
    }

    /// Whether any node in this subtree satisfies `pred`.
    pub fn any_node(&self, pred: &impl Fn(&LogicalPlan) -> bool) -> bool {
        pred(self) || self.children().iter().any(|c| c.any_node(pred))
    }

    /// Count nodes in the subtree (used by optimizer termination tests).
    pub fn node_count(&self) -> usize {
        1 + self.children().iter().map(|c| c.node_count()).sum::<usize>()
    }

    /// Short operator label for EXPLAIN.
    pub fn label(&self) -> String {
        match self {
            LogicalPlan::Scan { table, .. } => format!("Scan {table}"),
            LogicalPlan::GroupScan { .. } => "GroupScan $group".to_string(),
            LogicalPlan::Select { predicate, input } => {
                format!("Select {}", predicate.display(&input.schema()))
            }
            LogicalPlan::Project { items, input } => {
                let in_schema = input.schema();
                let cols: Vec<String> = items
                    .iter()
                    .map(|it| match &it.alias {
                        Some(a) => format!("{} as {a}", it.expr.display(&in_schema)),
                        None => it.expr.display(&in_schema),
                    })
                    .collect();
                format!("Project [{}]", cols.join(", "))
            }
            LogicalPlan::Join { predicate, fk_left_to_right, left, right } => {
                let schema = left.schema().join(&right.schema());
                format!(
                    "Join{} on {}",
                    if *fk_left_to_right { " (fk)" } else { "" },
                    predicate.display(&schema)
                )
            }
            LogicalPlan::LeftOuterJoin { predicate, left, right } => {
                let schema = left.schema().join(&right.schema());
                format!("LeftOuterJoin on {}", predicate.display(&schema))
            }
            LogicalPlan::GApply { group_cols, input, .. } => {
                let schema = input.schema();
                let cols: Vec<String> =
                    group_cols.iter().map(|&c| schema.field(c).qualified_name()).collect();
                format!("GApply group=[{}]", cols.join(", "))
            }
            LogicalPlan::GroupBy { keys, aggs, input } => {
                let schema = input.schema();
                let ks: Vec<String> =
                    keys.iter().map(|&k| schema.field(k).qualified_name()).collect();
                let ags: Vec<String> = aggs.iter().map(|a| a.display(&schema)).collect();
                format!("GroupBy keys=[{}] aggs=[{}]", ks.join(", "), ags.join(", "))
            }
            LogicalPlan::ScalarAgg { aggs, input } => {
                let schema = input.schema();
                let ags: Vec<String> = aggs.iter().map(|a| a.display(&schema)).collect();
                format!("ScalarAgg [{}]", ags.join(", "))
            }
            LogicalPlan::UnionAll { inputs } => format!("UnionAll ({} branches)", inputs.len()),
            LogicalPlan::Distinct { .. } => "Distinct".to_string(),
            LogicalPlan::OrderBy { keys, input } => {
                let schema = input.schema();
                let ks: Vec<String> = keys
                    .iter()
                    .map(|k| {
                        format!("{}{}", k.expr.display(&schema), if k.asc { "" } else { " desc" })
                    })
                    .collect();
                format!("OrderBy [{}]", ks.join(", "))
            }
            LogicalPlan::Apply { mode, .. } => format!("Apply ({})", mode.label()),
            LogicalPlan::Exists { negated, .. } => {
                if *negated {
                    "NotExists".to_string()
                } else {
                    "Exists".to_string()
                }
            }
        }
    }

    /// Render the subtree as an indented EXPLAIN listing.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&self.label());
        out.push('\n');
        match self {
            // GApply prints its per-group query under a marker so the
            // relation-valued boundary is visible.
            LogicalPlan::GApply { input, pgq, .. } => {
                input.explain_into(out, depth + 1);
                out.push_str(&"  ".repeat(depth + 1));
                out.push_str("per-group:\n");
                pgq.explain_into(out, depth + 2);
            }
            _ => {
                for c in self.children() {
                    c.explain_into(out, depth + 1);
                }
            }
        }
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.explain())
    }
}

/// Convenience: a literal NULL project item named `name` (the padding
/// column of a sorted outer union branch).
pub fn null_item(name: impl Into<String>) -> ProjectItem {
    ProjectItem::named(Expr::Literal(Value::Null), name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlpub_common::DataType;

    fn partsupp_part() -> Schema {
        Schema::new(vec![
            Field::qualified("partsupp", "ps_suppkey", DataType::Int),
            Field::qualified("partsupp", "ps_partkey", DataType::Int),
            Field::qualified("part", "p_partkey", DataType::Int),
            Field::qualified("part", "p_name", DataType::Str),
            Field::qualified("part", "p_retailprice", DataType::Float),
        ])
    }

    /// The paper's Q1 per-group query: project(name, price, NULL) union
    /// all project(NULL, NULL, avg(price)).
    fn q1_pgq(group_schema: &Schema) -> LogicalPlan {
        let name = group_schema.resolve(None, "p_name").unwrap();
        let price = group_schema.resolve(None, "p_retailprice").unwrap();
        let branch1 = LogicalPlan::group_scan(group_schema.clone()).project(vec![
            ProjectItem::col(name),
            ProjectItem::col(price),
            null_item("avgprice"),
        ]);
        let branch2 = LogicalPlan::group_scan(group_schema.clone())
            .scalar_agg(vec![AggExpr::avg(Expr::col(price), "a")])
            .project(vec![null_item("p_name"), null_item("p_retailprice"), ProjectItem::col(0)]);
        LogicalPlan::union_all(vec![branch1, branch2])
    }

    #[test]
    fn scan_and_select_schema() {
        let s = LogicalPlan::scan("partsupp", partsupp_part());
        assert_eq!(s.schema().len(), 5);
        let sel = s.select(Expr::col(4).gt(Expr::lit(100.0)));
        assert_eq!(sel.schema().len(), 5);
    }

    #[test]
    fn project_schema_names() {
        let p = LogicalPlan::scan("t", partsupp_part()).project(vec![
            ProjectItem::col(3),
            ProjectItem::named(Expr::col(4).gt(Expr::lit(1)), "expensive"),
            null_item("pad"),
        ]);
        let schema = p.schema();
        assert_eq!(schema.field(0).name, "p_name");
        assert_eq!(schema.field(0).qualifier.as_deref(), Some("part"));
        assert_eq!(schema.field(1).name, "expensive");
        assert_eq!(schema.field(1).data_type, DataType::Bool);
        assert_eq!(schema.field(2).data_type, DataType::Null);
    }

    #[test]
    fn gapply_schema_is_keys_then_pgq() {
        let outer = LogicalPlan::scan("j", partsupp_part());
        let pgq = q1_pgq(&outer.schema());
        let plan = outer.gapply(vec![0], pgq);
        let schema = plan.schema();
        assert_eq!(schema.len(), 4);
        assert_eq!(schema.field(0).name, "ps_suppkey");
        assert_eq!(schema.field(1).name, "p_name");
        // Union unifies the NULL pad with avg's float.
        assert_eq!(schema.field(3).data_type, DataType::Float);
    }

    #[test]
    fn groupby_and_scalar_agg_schema() {
        let g = LogicalPlan::scan("t", partsupp_part())
            .group_by(vec![0], vec![AggExpr::avg(Expr::col(4), "avgprice")]);
        let schema = g.schema();
        assert_eq!(schema.len(), 2);
        assert_eq!(schema.field(1).name, "avgprice");
        assert_eq!(schema.field(1).data_type, DataType::Float);

        let sa = LogicalPlan::scan("t", partsupp_part()).scalar_agg(vec![AggExpr::count_star("n")]);
        assert_eq!(sa.schema().len(), 1);
        assert_eq!(sa.schema().field(0).data_type, DataType::Int);
    }

    #[test]
    fn apply_and_exists_schema() {
        let outer = LogicalPlan::scan("t", partsupp_part());
        let inner = LogicalPlan::group_scan(partsupp_part())
            .scalar_agg(vec![AggExpr::avg(Expr::col(4), "a")]);
        let ap = outer.clone().apply(inner, ApplyMode::Cross);
        assert_eq!(ap.schema().len(), 6);

        let ex = outer.apply(LogicalPlan::scan("u", partsupp_part()).exists(), ApplyMode::Cross);
        assert_eq!(ex.schema().len(), 5); // exists contributes no columns
    }

    #[test]
    fn join_schema_concatenates() {
        let l = LogicalPlan::scan("a", partsupp_part());
        let r = LogicalPlan::scan("b", partsupp_part());
        let j = l.join(r, Expr::col(1).eq(Expr::col(7)));
        assert_eq!(j.schema().len(), 10);
    }

    #[test]
    fn children_and_map_children() {
        let plan =
            LogicalPlan::scan("t", partsupp_part()).select(Expr::lit(true)).project_cols(&[0, 1]);
        assert_eq!(plan.children().len(), 1);
        assert_eq!(plan.node_count(), 3);
        // Replace the child with a bare scan.
        let swapped = plan.map_children(&mut |_| LogicalPlan::scan("x", partsupp_part()));
        match &swapped {
            LogicalPlan::Project { input, .. } => {
                assert!(matches!(**input, LogicalPlan::Scan { .. }))
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn any_node_finds_gapply() {
        let outer = LogicalPlan::scan("j", partsupp_part());
        let pgq = q1_pgq(&outer.schema());
        let plan = outer.gapply(vec![0], pgq).order_by(vec![SortKey::asc(0)]);
        assert!(plan.any_node(&|p| matches!(p, LogicalPlan::GApply { .. })));
        assert!(!plan.any_node(&|p| matches!(p, LogicalPlan::Distinct { .. })));
    }

    #[test]
    fn explain_shows_per_group_marker() {
        let outer = LogicalPlan::scan("j", partsupp_part());
        let pgq = q1_pgq(&outer.schema());
        let plan = outer.gapply(vec![0], pgq);
        let text = plan.explain();
        assert!(text.contains("GApply group=[partsupp.ps_suppkey]"), "{text}");
        assert!(text.contains("per-group:"), "{text}");
        assert!(text.contains("UnionAll"), "{text}");
    }

    #[test]
    fn union_schema_unifies_null_padding() {
        let b1 = LogicalPlan::scan("t", partsupp_part())
            .project(vec![ProjectItem::col(0), null_item("x")]);
        let b2 = LogicalPlan::scan("t", partsupp_part())
            .project(vec![ProjectItem::col(0), ProjectItem::named(Expr::col(4), "x")]);
        let u = LogicalPlan::union_all(vec![b1, b2]);
        assert_eq!(u.schema().field(1).data_type, DataType::Float);
    }

    #[test]
    fn display_modes() {
        assert_eq!(ApplyMode::Cross.label(), "cross");
        assert_eq!(ApplyMode::Scalar.label(), "scalar");
        let e = LogicalPlan::scan("t", partsupp_part()).not_exists();
        assert_eq!(e.label(), "NotExists");
    }
}
