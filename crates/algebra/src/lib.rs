//! Logical algebra: relational operators extended with `GApply`.
//!
//! This crate is the paper's Section 3 made concrete:
//!
//! * [`LogicalPlan`] — the operator tree. Besides the classical operators
//!   (scan, select, project, join, group-by, scalar aggregate, union all,
//!   distinct, order-by) it has the subquery operators `Apply`/`Exists`
//!   in the style of Galindo-Legaria & Joshi, and the paper's
//!   **`GApply(GCols, PGQ)`**, whose per-group query reads the bound
//!   relation-valued variable through [`LogicalPlan::GroupScan`];
//! * [`catalog`] — table definitions with key/foreign-key metadata (the
//!   invariant-grouping rule needs to know which joins are FK joins) and
//!   the in-memory table store;
//! * [`analysis`] — the paper's static analyses over per-group queries:
//!   **covering ranges** and **emptyOnEmpty** (§4.1, Theorem 1),
//!   **eval / gp-eval columns** and the **adapted per-group query**
//!   (§4.3, Theorem 2);
//! * [`validate`] — structural validation, including the paper's
//!   restriction of per-group queries to scan/select/project/distinct/
//!   apply/exists/union-all/groupby/aggregate/orderby over the single
//!   temporary relation.

pub mod analysis;
pub mod catalog;
pub mod plan;
pub mod validate;

pub use analysis::{
    adapted_pgq, adapted_pgq_with_map, covering_range, empty_on_empty, gp_eval_columns,
};
pub use catalog::{Catalog, ForeignKey, TableDef, DELTA_LOG_CAPACITY};
pub use plan::{ApplyMode, LogicalPlan, ProjectItem, SortKey};
pub use validate::validate;
