//! Structural validation of logical plans.
//!
//! Catches optimizer and binder bugs early: column indices out of range,
//! union branches with incompatible schemas, correlated references with no
//! enclosing `Apply`, and violations of the paper's restrictions on
//! per-group queries — a PGQ "can operate only on the temporary relation
//! associated with the group" and uses only scan/select/project/distinct/
//! apply/exists/union-all/groupby/aggregate/orderby (§3).

use crate::plan::LogicalPlan;
use xmlpub_common::{Error, Result, Schema};
use xmlpub_expr::Expr;

/// Validation context threaded through the recursive walk.
struct Ctx<'a> {
    /// Inside a per-group query? Carries the group schema for GroupScan.
    group_schema: Option<&'a Schema>,
    /// Number of enclosing `Apply` operators (bounds correlated levels).
    apply_depth: usize,
}

/// Validate a plan tree. Returns the first problem found.
pub fn validate(plan: &LogicalPlan) -> Result<()> {
    walk(plan, &Ctx { group_schema: None, apply_depth: 0 })
}

fn check_expr(expr: &Expr, input: &Schema, ctx: &Ctx<'_>, where_: &str) -> Result<()> {
    let mut err = None;
    expr.visit(&mut |e| {
        if err.is_some() {
            return;
        }
        match e {
            Expr::Column(i) if *i >= input.len() => {
                err = Some(Error::plan(format!(
                    "{where_}: column #{i} out of range for schema {input}"
                )));
            }
            Expr::Correlated { level, .. } if *level >= ctx.apply_depth => {
                err = Some(Error::plan(format!(
                    "{where_}: correlated reference at level {level} but only {} enclosing \
                     Apply operator(s)",
                    ctx.apply_depth
                )));
            }
            _ => {}
        }
    });
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

fn walk(plan: &LogicalPlan, ctx: &Ctx<'_>) -> Result<()> {
    match plan {
        LogicalPlan::Scan { .. } => {
            if ctx.group_schema.is_some() {
                return Err(Error::plan(
                    "per-group query may only scan the group's temporary relation, \
                     not base tables",
                ));
            }
            Ok(())
        }
        LogicalPlan::GroupScan { schema } => match ctx.group_schema {
            None => Err(Error::plan("GroupScan outside a per-group query")),
            Some(expected) => {
                if schema.len() != expected.len() {
                    return Err(Error::plan(format!(
                        "GroupScan schema {schema} does not match the group schema {expected}: \
                         {} column(s) vs {}",
                        schema.len(),
                        expected.len()
                    )));
                }
                for (i, (got, want)) in schema.fields().iter().zip(expected.fields()).enumerate() {
                    if !got.name.eq_ignore_ascii_case(&want.name) {
                        return Err(Error::plan(format!(
                            "GroupScan column #{i} is named `{}` but the group schema calls \
                             it `{}`",
                            got.name, want.name
                        )));
                    }
                    if got.data_type.unify(want.data_type).is_none() {
                        return Err(Error::plan(format!(
                            "GroupScan column #{i} (`{}`) has type {} but the group schema \
                             has {}",
                            got.name, got.data_type, want.data_type
                        )));
                    }
                }
                Ok(())
            }
        },
        LogicalPlan::Select { input, predicate } => {
            walk(input, ctx)?;
            check_expr(predicate, &input.schema(), ctx, "Select")
        }
        LogicalPlan::Project { input, items } => {
            walk(input, ctx)?;
            let schema = input.schema();
            for it in items {
                check_expr(&it.expr, &schema, ctx, "Project")?;
            }
            Ok(())
        }
        LogicalPlan::Join { left, right, predicate, .. }
        | LogicalPlan::LeftOuterJoin { left, right, predicate } => {
            if ctx.group_schema.is_some() {
                return Err(Error::plan("join is not a permitted per-group query operator"));
            }
            walk(left, ctx)?;
            walk(right, ctx)?;
            check_expr(predicate, &left.schema().join(&right.schema()), ctx, "Join")
        }
        LogicalPlan::GApply { input, group_cols, pgq } => {
            if ctx.group_schema.is_some() {
                return Err(Error::plan("GApply may not be nested inside a per-group query"));
            }
            walk(input, ctx)?;
            let in_schema = input.schema();
            for &c in group_cols {
                if c >= in_schema.len() {
                    return Err(Error::plan(format!(
                        "GApply grouping column #{c} out of range for schema {in_schema}"
                    )));
                }
            }
            if group_cols.is_empty() {
                return Err(Error::plan("GApply requires at least one grouping column"));
            }
            let pgq_ctx = Ctx { group_schema: Some(&in_schema), apply_depth: ctx.apply_depth };
            walk(pgq, &pgq_ctx)
        }
        LogicalPlan::GroupBy { input, keys, aggs } => {
            walk(input, ctx)?;
            let schema = input.schema();
            for &k in keys {
                if k >= schema.len() {
                    return Err(Error::plan(format!(
                        "GroupBy key #{k} out of range for schema {schema}"
                    )));
                }
            }
            for a in aggs {
                if let Some(arg) = &a.arg {
                    check_expr(arg, &schema, ctx, "GroupBy aggregate")?;
                }
            }
            Ok(())
        }
        LogicalPlan::ScalarAgg { input, aggs } => {
            walk(input, ctx)?;
            let schema = input.schema();
            for a in aggs {
                if let Some(arg) = &a.arg {
                    check_expr(arg, &schema, ctx, "ScalarAgg aggregate")?;
                }
            }
            if aggs.is_empty() {
                return Err(Error::plan("ScalarAgg requires at least one aggregate"));
            }
            Ok(())
        }
        LogicalPlan::UnionAll { inputs } => {
            if inputs.len() < 2 {
                return Err(Error::plan("UnionAll requires at least two branches"));
            }
            for i in inputs {
                walk(i, ctx)?;
            }
            let first = inputs[0].schema();
            for (n, branch) in inputs.iter().enumerate().skip(1) {
                let s = branch.schema();
                if s.len() != first.len() {
                    return Err(Error::plan(format!(
                        "UnionAll branch {n} has {} column(s) but branch 0 has {}",
                        s.len(),
                        first.len()
                    )));
                }
                for (i, (f, b)) in first.fields().iter().zip(s.fields()).enumerate() {
                    if f.data_type.unify(b.data_type).is_none() {
                        return Err(Error::plan(format!(
                            "UnionAll branch {n} column #{i} (`{}`) has type {} which does \
                             not unify with branch 0's {}",
                            b.name, b.data_type, f.data_type
                        )));
                    }
                }
            }
            Ok(())
        }
        LogicalPlan::Distinct { input } => walk(input, ctx),
        LogicalPlan::OrderBy { input, keys } => {
            walk(input, ctx)?;
            let schema = input.schema();
            for k in keys {
                check_expr(&k.expr, &schema, ctx, "OrderBy")?;
            }
            Ok(())
        }
        LogicalPlan::Apply { outer, inner, .. } => {
            walk(outer, ctx)?;
            let inner_ctx =
                Ctx { group_schema: ctx.group_schema, apply_depth: ctx.apply_depth + 1 };
            walk(inner, &inner_ctx)
        }
        LogicalPlan::Exists { input, .. } => walk(input, ctx),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{ApplyMode, ProjectItem};
    use xmlpub_common::{DataType, Field};
    use xmlpub_expr::AggExpr;

    fn schema3() -> Schema {
        Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Float),
            Field::new("s", DataType::Str),
        ])
    }

    fn scan() -> LogicalPlan {
        LogicalPlan::scan("t", schema3())
    }

    #[test]
    fn valid_simple_plans() {
        validate(&scan()).unwrap();
        validate(&scan().select(Expr::col(1).gt(Expr::lit(1.0)))).unwrap();
        validate(&scan().project_cols(&[2, 0])).unwrap();
        validate(&scan().group_by(vec![0], vec![AggExpr::avg(Expr::col(1), "a")])).unwrap();
        validate(&scan().order_by(vec![crate::plan::SortKey::asc(0)])).unwrap();
    }

    #[test]
    fn column_out_of_range() {
        assert!(validate(&scan().select(Expr::col(7).gt(Expr::lit(1)))).is_err());
        assert!(validate(&scan().project(vec![ProjectItem::col(9)])).is_err());
        assert!(validate(&scan().group_by(vec![9], vec![])).is_err());
        assert!(validate(&scan().group_by(vec![0], vec![AggExpr::avg(Expr::col(9), "a")])).is_err());
    }

    #[test]
    fn group_scan_needs_gapply() {
        assert!(validate(&LogicalPlan::group_scan(schema3())).is_err());
    }

    #[test]
    fn valid_gapply() {
        let pgq =
            LogicalPlan::group_scan(schema3()).scalar_agg(vec![AggExpr::avg(Expr::col(1), "a")]);
        validate(&scan().gapply(vec![0], pgq)).unwrap();
    }

    #[test]
    fn gapply_grouping_columns_checked() {
        let pgq = LogicalPlan::group_scan(schema3()).scalar_agg(vec![AggExpr::count_star("c")]);
        assert!(validate(&scan().gapply(vec![9], pgq.clone())).is_err());
        assert!(validate(&scan().gapply(vec![], pgq)).is_err());
    }

    #[test]
    fn pgq_may_not_scan_base_tables() {
        let pgq = scan().scalar_agg(vec![AggExpr::count_star("c")]);
        let err = validate(&scan().gapply(vec![0], pgq)).unwrap_err();
        assert!(err.to_string().contains("temporary relation"), "{err}");
    }

    #[test]
    fn pgq_may_not_join_or_nest_gapply() {
        let joined = LogicalPlan::group_scan(schema3())
            .join(LogicalPlan::group_scan(schema3()), Expr::lit(true));
        assert!(validate(&scan().gapply(vec![0], joined)).is_err());

        let nested_pgq = LogicalPlan::group_scan(schema3()).gapply(
            vec![0],
            LogicalPlan::group_scan(schema3()).scalar_agg(vec![AggExpr::count_star("c")]),
        );
        assert!(validate(&scan().gapply(vec![0], nested_pgq)).is_err());
    }

    #[test]
    fn group_scan_schema_must_match() {
        let wrong = Schema::new(vec![Field::new("x", DataType::Int)]);
        let pgq = LogicalPlan::group_scan(wrong).scalar_agg(vec![AggExpr::count_star("c")]);
        assert!(validate(&scan().gapply(vec![0], pgq)).is_err());
    }

    #[test]
    fn group_scan_field_names_and_types_checked() {
        // Same arity but a renamed column: caught, and the error names it.
        let renamed = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Float),
            Field::new("zzz", DataType::Str),
        ]);
        let pgq = LogicalPlan::group_scan(renamed).scalar_agg(vec![AggExpr::count_star("c")]);
        let err = validate(&scan().gapply(vec![0], pgq)).unwrap_err();
        assert!(err.to_string().contains("`zzz`"), "{err}");

        // Same names but a type that does not unify: caught by column.
        let retyped = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Str),
            Field::new("s", DataType::Str),
        ]);
        let pgq = LogicalPlan::group_scan(retyped).scalar_agg(vec![AggExpr::count_star("c")]);
        let err = validate(&scan().gapply(vec![0], pgq)).unwrap_err();
        assert!(err.to_string().contains("column #1"), "{err}");

        // Int vs Float unifies, so a numeric widening is tolerated.
        let widened = Schema::new(vec![
            Field::new("k", DataType::Float),
            Field::new("v", DataType::Float),
            Field::new("s", DataType::Str),
        ]);
        let pgq = LogicalPlan::group_scan(widened).scalar_agg(vec![AggExpr::count_star("c")]);
        validate(&scan().gapply(vec![0], pgq)).unwrap();
    }

    #[test]
    fn union_error_names_the_offending_column() {
        let u = LogicalPlan::union_all(vec![
            scan().project_cols(&[0, 1]),
            scan().project_cols(&[0, 2]),
        ]);
        let err = validate(&u).unwrap_err();
        assert!(err.to_string().contains("column #1"), "{err}");
    }

    #[test]
    fn union_checks() {
        let u = LogicalPlan::union_all(vec![scan().project_cols(&[0])]);
        assert!(validate(&u).is_err());
        let u =
            LogicalPlan::union_all(vec![scan().project_cols(&[0]), scan().project_cols(&[0, 1])]);
        assert!(validate(&u).is_err());
        let u = LogicalPlan::union_all(vec![scan().project_cols(&[0]), scan().project_cols(&[2])]);
        assert!(validate(&u).is_err()); // int vs str
        let u = LogicalPlan::union_all(vec![scan().project_cols(&[0]), scan().project_cols(&[1])]);
        validate(&u).unwrap(); // int unifies with float
    }

    #[test]
    fn correlated_needs_apply() {
        let sel = scan().select(Expr::Correlated { level: 0, index: 0 }.eq(Expr::col(0)));
        assert!(validate(&sel).is_err());
        // Inside an Apply's inner it is fine.
        let inner = scan().select(Expr::Correlated { level: 0, index: 0 }.eq(Expr::col(0)));
        let ap = scan().apply(inner, ApplyMode::Cross);
        validate(&ap).unwrap();
        // Level too deep still fails.
        let inner = scan().select(Expr::Correlated { level: 1, index: 0 }.eq(Expr::col(0)));
        let ap = scan().apply(inner, ApplyMode::Cross);
        assert!(validate(&ap).is_err());
    }

    #[test]
    fn scalar_agg_requires_aggregates() {
        assert!(validate(&scan().scalar_agg(vec![])).is_err());
    }

    #[test]
    fn pgq_with_apply_and_exists_is_valid() {
        // Q2-shaped per-group query: count over a selection comparing to a
        // scalar subquery over the same group.
        let gs = || LogicalPlan::group_scan(schema3());
        let avg_inner = gs().scalar_agg(vec![AggExpr::avg(Expr::col(1), "a")]);
        let pgq = gs()
            .apply(avg_inner, ApplyMode::Cross)
            .select(Expr::col(1).gt_eq(Expr::col(3)))
            .scalar_agg(vec![AggExpr::count_star("c")]);
        validate(&scan().gapply(vec![0], pgq)).unwrap();

        let ex = gs().select(Expr::col(1).gt(Expr::lit(100.0))).exists();
        let pgq = gs().apply(ex, ApplyMode::Cross);
        validate(&scan().gapply(vec![0], pgq)).unwrap();
    }
}
