//! Static analyses over per-group queries (paper §4.1 and §4.3).
//!
//! All four analyses answer questions *in terms of the group's schema*
//! (the columns of the `$group` temporary relation):
//!
//! * [`covering_range`] — the selection condition σ such that
//!   `PGQ($gp) = PGQ(σ($gp))` (Theorem 1). Used by the
//!   *Placing Selections Before GApply* rule.
//! * [`empty_on_empty`] — does `PGQ(∅) = ∅`? The side condition of the
//!   same rule: only then may the covering range move to the outer query.
//! * [`gp_eval_columns`] — the columns *needed to evaluate* the per-group
//!   query (§4.3): selection columns, grouping keys, aggregated and
//!   ordering columns — but **not** plainly projected columns, which "could
//!   potentially be obtained by performing joins later".
//! * [`used_columns`] — every group column the PGQ touches at all
//!   (gp-eval plus pass-through projections). This drives the
//!   *Placing Projections Before GApply* rule.
//! * [`adapted_pgq`] — rewrite a PGQ against a narrower group schema,
//!   "eliminating the columns not available at n from all project lists"
//!   (§4.3), for the invariant-grouping rule.
//!
//! Columns inside a PGQ are positional, so each analysis threads a
//! mapping from a node's output columns back to group-scan columns:
//! a *direct map* (`Vec<Option<usize>>`, exact pass-through) for rewriting
//! predicates, and a *dependency map* (`Vec<ColumnSet>`, which scan
//! columns feed each output) for column accounting.

use crate::plan::{LogicalPlan, ProjectItem, SortKey};
use xmlpub_common::{ColumnSet, Schema};
use xmlpub_expr::Expr;

// ---------------------------------------------------------------------
// Column mappings
// ---------------------------------------------------------------------

/// For each output column of `plan` (a per-group query node), the group
/// scan column it passes through unchanged, if any.
pub fn direct_map(plan: &LogicalPlan) -> Vec<Option<usize>> {
    match plan {
        LogicalPlan::GroupScan { schema } => (0..schema.len()).map(Some).collect(),
        // Scans of base tables do not occur inside a PGQ (validate()
        // rejects them); returning no passthroughs keeps this total.
        LogicalPlan::Scan { schema, .. } => vec![None; schema.len()],
        LogicalPlan::Select { input, .. }
        | LogicalPlan::Distinct { input }
        | LogicalPlan::OrderBy { input, .. } => direct_map(input),
        LogicalPlan::Project { input, items } => {
            let child = direct_map(input);
            items
                .iter()
                .map(|it| match &it.expr {
                    Expr::Column(i) => child.get(*i).copied().flatten(),
                    _ => None,
                })
                .collect()
        }
        LogicalPlan::GroupBy { input, keys, aggs } => {
            let child = direct_map(input);
            let mut out: Vec<Option<usize>> =
                keys.iter().map(|&k| child.get(k).copied().flatten()).collect();
            out.extend(std::iter::repeat_n(None, aggs.len()));
            out
        }
        LogicalPlan::ScalarAgg { aggs, .. } => vec![None; aggs.len()],
        LogicalPlan::UnionAll { inputs } => {
            let mut maps = inputs.iter().map(direct_map);
            let Some(first) = maps.next() else {
                return vec![];
            };
            maps.fold(first, |acc, m| {
                acc.into_iter().zip(m).map(|(a, b)| if a == b { a } else { None }).collect()
            })
        }
        LogicalPlan::Apply { outer, inner, .. } => {
            let mut out = direct_map(outer);
            out.extend(direct_map(inner));
            out
        }
        LogicalPlan::Exists { .. } => vec![],
        LogicalPlan::Join { left, right, .. } | LogicalPlan::LeftOuterJoin { left, right, .. } => {
            let mut out = direct_map(left);
            out.extend(direct_map(right));
            out
        }
        LogicalPlan::GApply { .. } => {
            // Nested GApply is rejected by validation; be conservative.
            vec![]
        }
    }
}

/// For each output column of `plan`, the set of group-scan columns it
/// depends on (empty for literals and columns synthesised out of nothing).
pub fn dependency_map(plan: &LogicalPlan) -> Vec<ColumnSet> {
    match plan {
        LogicalPlan::GroupScan { schema } => {
            (0..schema.len()).map(|i| ColumnSet::from_iter_cols([i])).collect()
        }
        LogicalPlan::Scan { schema, .. } => vec![ColumnSet::new(); schema.len()],
        LogicalPlan::Select { input, .. }
        | LogicalPlan::Distinct { input }
        | LogicalPlan::OrderBy { input, .. } => dependency_map(input),
        LogicalPlan::Project { input, items } => {
            let child = dependency_map(input);
            items.iter().map(|it| deps_of_expr(&it.expr, &child)).collect()
        }
        LogicalPlan::GroupBy { input, keys, aggs } => {
            let child = dependency_map(input);
            let mut out: Vec<ColumnSet> =
                keys.iter().map(|&k| child.get(k).cloned().unwrap_or_default()).collect();
            out.extend(
                aggs.iter()
                    .map(|a| a.arg.as_ref().map(|e| deps_of_expr(e, &child)).unwrap_or_default()),
            );
            out
        }
        LogicalPlan::ScalarAgg { input, aggs } => {
            let child = dependency_map(input);
            aggs.iter()
                .map(|a| a.arg.as_ref().map(|e| deps_of_expr(e, &child)).unwrap_or_default())
                .collect()
        }
        LogicalPlan::UnionAll { inputs } => {
            let mut maps = inputs.iter().map(dependency_map);
            let Some(first) = maps.next() else {
                return vec![];
            };
            maps.fold(first, |acc, m| acc.into_iter().zip(m).map(|(a, b)| a.union(&b)).collect())
        }
        LogicalPlan::Apply { outer, inner, .. } => {
            let mut out = dependency_map(outer);
            out.extend(dependency_map(inner));
            out
        }
        LogicalPlan::Exists { .. } => vec![],
        LogicalPlan::Join { left, right, .. } | LogicalPlan::LeftOuterJoin { left, right, .. } => {
            let mut out = dependency_map(left);
            out.extend(dependency_map(right));
            out
        }
        LogicalPlan::GApply { .. } => vec![],
    }
}

fn deps_of_expr(expr: &Expr, child: &[ColumnSet]) -> ColumnSet {
    let mut out = ColumnSet::new();
    for c in expr.columns().iter() {
        if let Some(d) = child.get(c) {
            out = out.union(d);
        }
    }
    out
}

// ---------------------------------------------------------------------
// Covering ranges (§4.1)
// ---------------------------------------------------------------------

/// Does the subtree contain an `apply`, `groupby` or `aggregate`? A
/// selection above one of these contributes nothing to the covering
/// range (its condition may depend on the *whole* group through the
/// blocked computation below it).
pub fn has_blocking_descendant(plan: &LogicalPlan) -> bool {
    plan.any_node(&|p| {
        matches!(
            p,
            LogicalPlan::Apply { .. } | LogicalPlan::GroupBy { .. } | LogicalPlan::ScalarAgg { .. }
        )
    })
}

/// Compute the covering range of a per-group query: a predicate over the
/// group schema such that running the PGQ on the σ-filtered group equals
/// running it on the whole group (Theorem 1). `Expr::Literal(true)` means
/// "the whole group".
///
/// Per the paper: scan → `true`; select → child's range ANDed with its
/// condition unless it has an apply/groupby/aggregate descendant (then
/// child's range); other unary operators → child's range; apply and
/// union(all) → disjunction of the children's ranges. A select condition
/// participates only when it rewrites cleanly onto group-scan columns and
/// is uncorrelated — otherwise it is conservatively ignored (range stays
/// the child's, which is always sound).
pub fn covering_range(pgq: &LogicalPlan) -> Expr {
    match pgq {
        LogicalPlan::GroupScan { .. } | LogicalPlan::Scan { .. } => Expr::lit(true),
        LogicalPlan::Select { input, predicate } => {
            let child = covering_range(input);
            if has_blocking_descendant(input) {
                return child;
            }
            let map = direct_map(input);
            match rewrite_onto_scan(predicate, &map) {
                Some(cond) => and_range(child, cond),
                None => child,
            }
        }
        LogicalPlan::Project { input, .. }
        | LogicalPlan::Distinct { input }
        | LogicalPlan::OrderBy { input, .. }
        | LogicalPlan::GroupBy { input, .. }
        | LogicalPlan::ScalarAgg { input, .. }
        | LogicalPlan::Exists { input, .. } => covering_range(input),
        LogicalPlan::UnionAll { inputs } => or_ranges(inputs.iter().map(covering_range).collect()),
        LogicalPlan::Apply { outer, inner, .. } => {
            or_ranges(vec![covering_range(outer), covering_range(inner)])
        }
        // Join/GApply cannot occur inside a valid PGQ; whole group is safe.
        _ => Expr::lit(true),
    }
}

/// Rewrite a predicate so it reads group-scan columns directly, if every
/// referenced column is a clean pass-through and nothing is correlated.
fn rewrite_onto_scan(pred: &Expr, map: &[Option<usize>]) -> Option<Expr> {
    if pred.has_correlated() {
        return None;
    }
    pred.remap_columns(&|c| map.get(c).copied().flatten())
}

fn and_range(a: Expr, b: Expr) -> Expr {
    let true_lit = Expr::lit(true);
    if a == true_lit {
        return b;
    }
    if b == true_lit {
        return a;
    }
    a.and(b)
}

fn or_ranges(ranges: Vec<Expr>) -> Expr {
    // true ∨ anything = true: if any child needs the whole group, so do we.
    if ranges.iter().any(|r| *r == Expr::lit(true)) {
        return Expr::lit(true);
    }
    let mut it = ranges.into_iter();
    let first = it.next().unwrap_or_else(|| Expr::lit(true));
    it.fold(first, |acc, r| acc.or(r))
}

// ---------------------------------------------------------------------
// emptyOnEmpty (§4.1)
// ---------------------------------------------------------------------

/// Does the per-group query produce an empty output on an empty input?
/// (The `emptyOnEmpty` bit of §4.1. An `aggregate` breaks the property —
/// `count(*)` over ∅ returns a row — while every other operator preserves
/// it; `apply` looks only at its outer child; unions need all branches.)
pub fn empty_on_empty(pgq: &LogicalPlan) -> bool {
    match pgq {
        LogicalPlan::GroupScan { .. } | LogicalPlan::Scan { .. } => true,
        LogicalPlan::Select { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Distinct { input }
        | LogicalPlan::GroupBy { input, .. }
        | LogicalPlan::OrderBy { input, .. }
        | LogicalPlan::Exists { input, negated: false } => empty_on_empty(input),
        // NOT EXISTS of an empty input yields the unit tuple.
        LogicalPlan::Exists { negated: true, .. } => false,
        LogicalPlan::ScalarAgg { .. } => false,
        LogicalPlan::Apply { outer, .. } => empty_on_empty(outer),
        LogicalPlan::UnionAll { inputs } => inputs.iter().all(empty_on_empty),
        _ => false,
    }
}

// ---------------------------------------------------------------------
// gp-eval columns and used columns (§4.3)
// ---------------------------------------------------------------------

/// The gp-eval columns of a per-group query: group columns needed to
/// *evaluate* it (selection, grouping, aggregation, ordering columns),
/// excluding plainly projected pass-throughs.
pub fn gp_eval_columns(pgq: &LogicalPlan) -> ColumnSet {
    let mut out = ColumnSet::new();
    eval_walk(pgq, &mut out);
    out
}

fn eval_walk(plan: &LogicalPlan, out: &mut ColumnSet) {
    match plan {
        LogicalPlan::GroupScan { .. } | LogicalPlan::Scan { .. } => {}
        LogicalPlan::Select { input, predicate } => {
            eval_walk(input, out);
            let deps = dependency_map(input);
            *out = out.union(&deps_of_expr(predicate, &deps));
        }
        LogicalPlan::Project { input, .. } | LogicalPlan::Exists { input, .. } => {
            eval_walk(input, out)
        }
        LogicalPlan::Distinct { input } => {
            eval_walk(input, out);
            // Distinct compares its input values, so they are needed to
            // evaluate it. (A conservative extension of the paper's list,
            // which does not treat distinct explicitly.)
            for d in dependency_map(input) {
                *out = out.union(&d);
            }
        }
        LogicalPlan::GroupBy { input, keys, aggs } => {
            eval_walk(input, out);
            let deps = dependency_map(input);
            for &k in keys {
                if let Some(d) = deps.get(k) {
                    *out = out.union(d);
                }
            }
            for a in aggs {
                if let Some(arg) = &a.arg {
                    *out = out.union(&deps_of_expr(arg, &deps));
                }
            }
        }
        LogicalPlan::ScalarAgg { input, aggs } => {
            eval_walk(input, out);
            let deps = dependency_map(input);
            for a in aggs {
                if let Some(arg) = &a.arg {
                    *out = out.union(&deps_of_expr(arg, &deps));
                }
            }
        }
        LogicalPlan::OrderBy { input, keys } => {
            eval_walk(input, out);
            let deps = dependency_map(input);
            for k in keys {
                *out = out.union(&deps_of_expr(&k.expr, &deps));
            }
        }
        LogicalPlan::UnionAll { inputs } => {
            for i in inputs {
                eval_walk(i, out);
            }
        }
        LogicalPlan::Apply { outer, inner, .. } => {
            eval_walk(outer, out);
            eval_walk(inner, out);
        }
        LogicalPlan::Join { left, right, .. } | LogicalPlan::LeftOuterJoin { left, right, .. } => {
            eval_walk(left, out);
            eval_walk(right, out);
        }
        LogicalPlan::GApply { .. } => {}
    }
}

/// Every group column the PGQ touches: the gp-eval columns plus the
/// pass-through columns it returns. Grouping columns are *not* implicitly
/// included — the caller (the projection-before-GApply rule) adds them.
pub fn used_columns(pgq: &LogicalPlan) -> ColumnSet {
    let mut out = gp_eval_columns(pgq);
    // Project expressions may compute values (not just pass through);
    // their sources are needed even when not gp-eval.
    collect_project_uses(pgq, &mut out);
    // Whatever flows to the PGQ output is needed.
    for d in dependency_map(pgq) {
        out = out.union(&d);
    }
    out
}

fn collect_project_uses(plan: &LogicalPlan, out: &mut ColumnSet) {
    if let LogicalPlan::Project { input, items } = plan {
        let deps = dependency_map(input);
        for it in items {
            *out = out.union(&deps_of_expr(&it.expr, &deps));
        }
    }
    for c in plan.children() {
        collect_project_uses(c, out);
    }
}

// ---------------------------------------------------------------------
// Adapted per-group query (§4.3)
// ---------------------------------------------------------------------

/// Rewrite a per-group query against a narrower group schema.
///
/// `base_map[i]` gives the new group-scan index of old group column `i`
/// (`None` when the column is unavailable at the push-down target node).
/// Per §4.3, unavailable columns are eliminated from project lists; any
/// other use of an unavailable column (selection, aggregation, grouping,
/// ordering, distinct input, or a correlated reference) makes the
/// adaptation fail (`None`) — in a correct invariant-grouping firing this
/// cannot happen because gp-eval ⊆ available is checked first.
pub fn adapted_pgq(
    pgq: &LogicalPlan,
    base_map: &[Option<usize>],
    new_schema: &Schema,
) -> Option<LogicalPlan> {
    adapt(pgq, base_map, new_schema, &mut Vec::new()).map(|(p, _)| p)
}

/// Like [`adapted_pgq`], but also returns the mapping from the original
/// per-group query's output columns to the adapted one's (`None` marks a
/// dropped projection item). The invariant-grouping rule uses the map to
/// re-attach dropped columns above the re-ordered joins.
pub fn adapted_pgq_with_map(
    pgq: &LogicalPlan,
    base_map: &[Option<usize>],
    new_schema: &Schema,
) -> Option<(LogicalPlan, Vec<Option<usize>>)> {
    adapt(pgq, base_map, new_schema, &mut Vec::new())
}

type ColMap = Vec<Option<usize>>;

/// Recursive adaptation. Returns the new plan and the mapping from the
/// old node's output columns to the new node's output columns.
/// `corr_stack` holds the output mappings of enclosing applies' outer
/// sides, for remapping `Expr::Correlated` references.
fn adapt(
    plan: &LogicalPlan,
    base_map: &[Option<usize>],
    new_schema: &Schema,
    corr_stack: &mut Vec<ColMap>,
) -> Option<(LogicalPlan, ColMap)> {
    match plan {
        LogicalPlan::GroupScan { .. } => {
            Some((LogicalPlan::group_scan(new_schema.clone()), base_map.to_vec()))
        }
        LogicalPlan::Select { input, predicate } => {
            let (child, map) = adapt(input, base_map, new_schema, corr_stack)?;
            let pred = remap_full(predicate, &map, corr_stack)?;
            Some((child.select(pred), map))
        }
        LogicalPlan::Project { input, items } => {
            let (child, map) = adapt(input, base_map, new_schema, corr_stack)?;
            let mut new_items = Vec::new();
            let mut out_map: ColMap = Vec::with_capacity(items.len());
            for it in items {
                match remap_full(&it.expr, &map, corr_stack) {
                    Some(e) => {
                        out_map.push(Some(new_items.len()));
                        new_items.push(ProjectItem { expr: e, alias: it.alias.clone() });
                    }
                    // §4.3: eliminate columns not available at n from
                    // project lists.
                    None => out_map.push(None),
                }
            }
            if new_items.is_empty() {
                return None;
            }
            Some((child.project(new_items), out_map))
        }
        LogicalPlan::Distinct { input } => {
            let (child, map) = adapt(input, base_map, new_schema, corr_stack)?;
            // Dropping a column under DISTINCT would change multiplicities.
            if map.iter().any(|m| m.is_none()) {
                return None;
            }
            Some((child.distinct(), map))
        }
        LogicalPlan::OrderBy { input, keys } => {
            let (child, map) = adapt(input, base_map, new_schema, corr_stack)?;
            let new_keys = keys
                .iter()
                .map(|k| {
                    remap_full(&k.expr, &map, corr_stack).map(|expr| SortKey { expr, asc: k.asc })
                })
                .collect::<Option<Vec<_>>>()?;
            Some((child.order_by(new_keys), map))
        }
        LogicalPlan::GroupBy { input, keys, aggs } => {
            let (child, map) = adapt(input, base_map, new_schema, corr_stack)?;
            let new_keys =
                keys.iter().map(|&k| map.get(k).copied().flatten()).collect::<Option<Vec<_>>>()?;
            let new_aggs =
                aggs.iter().map(|a| remap_agg(a, &map, corr_stack)).collect::<Option<Vec<_>>>()?;
            let out_len = new_keys.len() + new_aggs.len();
            Some((child.group_by(new_keys, new_aggs), (0..out_len).map(Some).collect()))
        }
        LogicalPlan::ScalarAgg { input, aggs } => {
            let (child, map) = adapt(input, base_map, new_schema, corr_stack)?;
            let new_aggs =
                aggs.iter().map(|a| remap_agg(a, &map, corr_stack)).collect::<Option<Vec<_>>>()?;
            let n = new_aggs.len();
            Some((child.scalar_agg(new_aggs), (0..n).map(Some).collect()))
        }
        LogicalPlan::UnionAll { inputs } => {
            let mut branches = Vec::with_capacity(inputs.len());
            let mut common: Option<ColMap> = None;
            for b in inputs {
                let (nb, m) = adapt(b, base_map, new_schema, corr_stack)?;
                match &common {
                    None => common = Some(m),
                    // All branches must drop the same output positions or
                    // the union stops lining up.
                    Some(c) => {
                        let same_mask = c.len() == m.len()
                            && c.iter().zip(&m).all(|(a, b)| a.is_some() == b.is_some());
                        if !same_mask {
                            return None;
                        }
                    }
                }
                branches.push(nb);
            }
            Some((LogicalPlan::union_all(branches), common?))
        }
        LogicalPlan::Apply { outer, inner, mode } => {
            let (new_outer, outer_map) = adapt(outer, base_map, new_schema, corr_stack)?;
            corr_stack.push(outer_map.clone());
            let inner_result = adapt(inner, base_map, new_schema, corr_stack);
            corr_stack.pop();
            let (new_inner, inner_map) = inner_result?;
            let outer_new_len = outer_map.iter().filter(|m| m.is_some()).count();
            let mut out_map = outer_map;
            out_map.extend(inner_map.into_iter().map(|m| m.map(|j| j + outer_new_len)));
            Some((new_outer.apply(new_inner, *mode), out_map))
        }
        LogicalPlan::Exists { input, negated } => {
            let (child, _) = adapt(input, base_map, new_schema, corr_stack)?;
            let plan = if *negated { child.not_exists() } else { child.exists() };
            Some((plan, vec![]))
        }
        // Scan/Join/GApply do not occur inside a valid PGQ.
        _ => None,
    }
}

/// Remap local and correlated column references; `None` if anything
/// references a dropped column.
fn remap_full(expr: &Expr, local: &ColMap, corr_stack: &[ColMap]) -> Option<Expr> {
    let ok = std::cell::Cell::new(true);
    let out = expr.clone().transform(&|e| match e {
        Expr::Column(i) => match local.get(i).copied().flatten() {
            Some(j) => Expr::Column(j),
            None => {
                ok.set(false);
                Expr::Column(i)
            }
        },
        Expr::Correlated { level, index } => {
            // corr_stack is innermost-last; level 0 = last entry. A level
            // beyond the stack refers to an apply outside this PGQ and
            // stays untouched.
            match corr_stack.len().checked_sub(1 + level) {
                Some(pos) => match corr_stack[pos].get(index).copied().flatten() {
                    Some(j) => Expr::Correlated { level, index: j },
                    None => {
                        ok.set(false);
                        Expr::Correlated { level, index }
                    }
                },
                None => Expr::Correlated { level, index },
            }
        }
        other => other,
    });
    ok.get().then_some(out)
}

fn remap_agg(
    agg: &xmlpub_expr::AggExpr,
    local: &ColMap,
    corr_stack: &[ColMap],
) -> Option<xmlpub_expr::AggExpr> {
    let arg = match &agg.arg {
        Some(a) => Some(remap_full(a, local, corr_stack)?),
        None => None,
    };
    Some(xmlpub_expr::AggExpr { func: agg.func, arg, output_name: agg.output_name.clone() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{null_item, ApplyMode};
    use xmlpub_common::{DataType, Field};
    use xmlpub_expr::predicate::equivalent;
    use xmlpub_expr::AggExpr;

    /// Group schema used throughout: the partsupp ⋈ part join output.
    fn gschema() -> Schema {
        Schema::new(vec![
            Field::new("ps_suppkey", DataType::Int),
            Field::new("ps_partkey", DataType::Int),
            Field::new("p_partkey", DataType::Int),
            Field::new("p_name", DataType::Str),
            Field::new("p_brand", DataType::Str),
            Field::new("p_retailprice", DataType::Float),
        ])
    }

    fn gs() -> LogicalPlan {
        LogicalPlan::group_scan(gschema())
    }

    const PRICE: usize = 5;
    const BRAND: usize = 4;
    const NAME: usize = 3;

    /// The paper's Figure 3 per-group query: parts of brand A priced above
    /// the average price of brand-B parts.
    fn figure3_pgq() -> LogicalPlan {
        let brand_a = gs().select(Expr::col(BRAND).eq(Expr::lit("Brand#A")));
        let avg_b = gs()
            .select(Expr::col(BRAND).eq(Expr::lit("Brand#B")))
            .scalar_agg(vec![AggExpr::avg(Expr::col(PRICE), "avgb")]);
        brand_a
            .apply(avg_b, ApplyMode::Cross)
            .select(Expr::col(PRICE).gt(Expr::col(6)))
            .project(vec![ProjectItem::col(NAME), ProjectItem::col(PRICE)])
    }

    #[test]
    fn covering_range_of_plain_scan_is_true() {
        assert_eq!(covering_range(&gs()), Expr::lit(true));
    }

    #[test]
    fn covering_range_collects_select_condition() {
        let p = gs().select(Expr::col(PRICE).gt(Expr::lit(100.0)));
        assert_eq!(covering_range(&p), Expr::col(PRICE).gt(Expr::lit(100.0)));
    }

    #[test]
    fn covering_range_ands_stacked_selects() {
        let p = gs()
            .select(Expr::col(PRICE).gt(Expr::lit(100.0)))
            .select(Expr::col(BRAND).eq(Expr::lit("B")));
        let r = covering_range(&p);
        assert!(equivalent(
            &r,
            &Expr::col(PRICE).gt(Expr::lit(100.0)).and(Expr::col(BRAND).eq(Expr::lit("B")))
        ));
    }

    #[test]
    fn covering_range_figure3_is_brand_a_or_brand_b() {
        // The paper's own example: range = brand=A ∨ brand=B; the price
        // comparison above the apply contributes nothing.
        let r = covering_range(&figure3_pgq());
        let expected =
            Expr::col(BRAND).eq(Expr::lit("Brand#A")).or(Expr::col(BRAND).eq(Expr::lit("Brand#B")));
        assert!(equivalent(&r, &expected), "got {r:?}");
    }

    #[test]
    fn covering_range_union_is_disjunction() {
        let u = LogicalPlan::union_all(vec![
            gs().select(Expr::col(BRAND).eq(Expr::lit("A"))).project_cols(&[NAME]),
            gs().select(Expr::col(BRAND).eq(Expr::lit("B"))).project_cols(&[NAME]),
        ]);
        let r = covering_range(&u);
        assert!(equivalent(
            &r,
            &Expr::col(BRAND).eq(Expr::lit("A")).or(Expr::col(BRAND).eq(Expr::lit("B")))
        ));
    }

    #[test]
    fn covering_range_union_with_unfiltered_branch_is_true() {
        let u = LogicalPlan::union_all(vec![
            gs().select(Expr::col(BRAND).eq(Expr::lit("A"))).project_cols(&[NAME]),
            gs().project_cols(&[NAME]),
        ]);
        assert_eq!(covering_range(&u), Expr::lit(true));
    }

    #[test]
    fn covering_range_select_above_aggregate_ignored() {
        let p = gs()
            .scalar_agg(vec![AggExpr::avg(Expr::col(PRICE), "a")])
            .select(Expr::col(0).gt(Expr::lit(10)));
        assert_eq!(covering_range(&p), Expr::lit(true));
    }

    #[test]
    fn covering_range_condition_through_projection() {
        // A select above a renaming projection still rewrites onto the
        // scan when the referenced column is a pass-through.
        let p = gs()
            .project(vec![ProjectItem::col(PRICE), ProjectItem::col(BRAND)])
            .select(Expr::col(1).eq(Expr::lit("A")));
        assert_eq!(covering_range(&p), Expr::col(BRAND).eq(Expr::lit("A")));
    }

    #[test]
    fn covering_range_computed_column_ignored() {
        // price*2 > 10 references a computed column: not rewritable, so
        // the range stays `true`.
        let p = gs()
            .project(vec![ProjectItem::named(
                Expr::binary(xmlpub_expr::BinOp::Mul, Expr::col(PRICE), Expr::lit(2)),
                "double",
            )])
            .select(Expr::col(0).gt(Expr::lit(10)));
        assert_eq!(covering_range(&p), Expr::lit(true));
    }

    #[test]
    fn covering_range_correlated_condition_ignored() {
        let inner = gs().select(Expr::col(PRICE).gt(Expr::Correlated { level: 0, index: PRICE }));
        let p = gs().apply(inner.exists(), ApplyMode::Cross);
        // outer range true ∨ inner range true = true
        assert_eq!(covering_range(&p), Expr::lit(true));
    }

    #[test]
    fn empty_on_empty_basics() {
        assert!(empty_on_empty(&gs()));
        assert!(empty_on_empty(&gs().select(Expr::lit(true))));
        assert!(empty_on_empty(&gs().project_cols(&[0])));
        assert!(empty_on_empty(&gs().distinct()));
        assert!(empty_on_empty(&gs().group_by(vec![0], vec![AggExpr::count_star("c")])));
        assert!(!empty_on_empty(&gs().scalar_agg(vec![AggExpr::count_star("c")])));
    }

    #[test]
    fn empty_on_empty_union_needs_all_branches() {
        let good =
            LogicalPlan::union_all(vec![gs().project_cols(&[NAME]), gs().project_cols(&[NAME])]);
        assert!(empty_on_empty(&good));
        let bad = LogicalPlan::union_all(vec![
            gs().project_cols(&[NAME]),
            gs().scalar_agg(vec![AggExpr::count_star("c")]).project(vec![null_item("x")]),
        ]);
        assert!(!empty_on_empty(&bad));
    }

    #[test]
    fn empty_on_empty_apply_uses_outer_child() {
        // Q2 shape: apply over the group with a scalar-agg inner — outer
        // child is the scan, so the apply is emptyOnEmpty...
        let inner = gs().scalar_agg(vec![AggExpr::avg(Expr::col(PRICE), "a")]);
        let ap = gs().apply(inner, ApplyMode::Cross);
        assert!(empty_on_empty(&ap));
        // ...but a scalar aggregate on top breaks it.
        let full = ap.scalar_agg(vec![AggExpr::count_star("c")]);
        assert!(!empty_on_empty(&full));
    }

    #[test]
    fn empty_on_empty_exists_variants() {
        assert!(empty_on_empty(&gs().exists()));
        assert!(!empty_on_empty(&gs().not_exists()));
    }

    #[test]
    fn figure3_is_empty_on_empty() {
        // The Figure 3 PGQ's root chain is select→project over an apply
        // whose *outer* child is a scan: empty group in, empty result out,
        // so the brand range may move to the outer query.
        assert!(empty_on_empty(&figure3_pgq()));
    }

    #[test]
    fn gp_eval_collects_selection_and_aggregation_columns() {
        let e = gp_eval_columns(&figure3_pgq());
        // brand (both selects) and price (aggregated + compared) are
        // gp-eval; p_name is only projected, so it is not.
        assert!(e.contains(BRAND));
        assert!(e.contains(PRICE));
        assert!(!e.contains(NAME));
    }

    #[test]
    fn gp_eval_groupby_keys_count() {
        let p = gs().group_by(vec![1], vec![AggExpr::avg(Expr::col(PRICE), "a")]);
        let e = gp_eval_columns(&p);
        assert!(e.contains(1));
        assert!(e.contains(PRICE));
        assert!(!e.contains(NAME));
    }

    #[test]
    fn gp_eval_orderby_and_distinct() {
        let p = gs().project_cols(&[NAME, PRICE]).order_by(vec![SortKey::asc(1)]);
        let e = gp_eval_columns(&p);
        assert!(e.contains(PRICE));
        assert!(!e.contains(NAME));

        let d = gs().project_cols(&[NAME]).distinct();
        let e = gp_eval_columns(&d);
        assert!(e.contains(NAME));
    }

    #[test]
    fn used_columns_include_passthrough_projections() {
        let u = used_columns(&figure3_pgq());
        assert!(u.contains(NAME));
        assert!(u.contains(BRAND));
        assert!(u.contains(PRICE));
        assert!(!u.contains(0));
        assert!(!u.contains(1));
    }

    #[test]
    fn used_columns_of_bare_scan_is_everything() {
        assert_eq!(used_columns(&gs()), ColumnSet::all(gschema().len()));
    }

    #[test]
    fn direct_map_through_operators() {
        let p = gs().project_cols(&[PRICE, BRAND]).select(Expr::lit(true));
        assert_eq!(direct_map(&p), vec![Some(PRICE), Some(BRAND)]);
        let g = gs().group_by(vec![0], vec![AggExpr::count_star("c")]);
        assert_eq!(direct_map(&g), vec![Some(0), None]);
        let sa = gs().scalar_agg(vec![AggExpr::count_star("c")]);
        assert_eq!(direct_map(&sa), vec![None]);
    }

    #[test]
    fn direct_map_union_requires_agreement() {
        let u = LogicalPlan::union_all(vec![
            gs().project_cols(&[NAME, PRICE]),
            gs().project_cols(&[NAME, BRAND]),
        ]);
        assert_eq!(direct_map(&u), vec![Some(NAME), None]);
    }

    fn narrow_schema() -> Schema {
        // Columns 0..4 survive (drop p_retailprice is NOT the case here;
        // we drop p_brand and p_retailprice to keep the test interesting).
        Schema::new(vec![
            Field::new("ps_suppkey", DataType::Int),
            Field::new("ps_partkey", DataType::Int),
            Field::new("p_partkey", DataType::Int),
            Field::new("p_name", DataType::Str),
        ])
    }

    #[test]
    fn adapted_pgq_drops_projected_columns() {
        // PGQ projects (p_name, p_brand); p_brand becomes unavailable.
        let pgq = gs().project_cols(&[NAME, BRAND]);
        let base: Vec<Option<usize>> = vec![Some(0), Some(1), Some(2), Some(3), None, None];
        let adapted = adapted_pgq(&pgq, &base, &narrow_schema()).unwrap();
        match &adapted {
            LogicalPlan::Project { items, .. } => {
                assert_eq!(items.len(), 1);
                assert_eq!(items[0].expr, Expr::col(3));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn adapted_pgq_fails_when_selection_needs_dropped_column() {
        let pgq = gs().select(Expr::col(BRAND).eq(Expr::lit("A"))).project_cols(&[NAME]);
        let base: Vec<Option<usize>> = vec![Some(0), Some(1), Some(2), Some(3), None, None];
        assert!(adapted_pgq(&pgq, &base, &narrow_schema()).is_none());
    }

    #[test]
    fn adapted_pgq_fails_under_distinct_drop() {
        let pgq = gs().project_cols(&[NAME, BRAND]).distinct();
        let base: Vec<Option<usize>> = vec![Some(0), Some(1), Some(2), Some(3), None, None];
        assert!(adapted_pgq(&pgq, &base, &narrow_schema()).is_none());
    }

    #[test]
    fn adapted_pgq_keeps_aggregation_when_columns_available() {
        // Figure 7 shape: PGQ keeps only columns present below the
        // supplier join (suppose s_name was old column 4/5 here — we use
        // brand/price as the stand-in and keep price available instead).
        let keep_price_schema = Schema::new(vec![
            Field::new("ps_suppkey", DataType::Int),
            Field::new("ps_partkey", DataType::Int),
            Field::new("p_partkey", DataType::Int),
            Field::new("p_name", DataType::Str),
            Field::new("p_retailprice", DataType::Float),
        ]);
        let base: Vec<Option<usize>> = vec![Some(0), Some(1), Some(2), Some(3), None, Some(4)];
        let pgq = gs().scalar_agg(vec![AggExpr::min(Expr::col(PRICE), "m")]);
        let adapted = adapted_pgq(&pgq, &base, &keep_price_schema).unwrap();
        match &adapted {
            LogicalPlan::ScalarAgg { aggs, .. } => {
                assert_eq!(aggs[0].arg, Some(Expr::col(4)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn adapted_pgq_union_branches_must_align() {
        let base: Vec<Option<usize>> = vec![Some(0), Some(1), Some(2), Some(3), None, None];
        // Both branches lose their second column → aligned.
        let u = LogicalPlan::union_all(vec![
            gs().project_cols(&[NAME, BRAND]),
            gs().project_cols(&[NAME, BRAND]),
        ]);
        assert!(adapted_pgq(&u, &base, &narrow_schema()).is_some());
        // One branch loses a column the other keeps → misaligned.
        let u = LogicalPlan::union_all(vec![
            gs().project_cols(&[NAME, BRAND]),
            gs().project_cols(&[NAME, NAME]),
        ]);
        assert!(adapted_pgq(&u, &base, &narrow_schema()).is_none());
    }

    #[test]
    fn adapted_pgq_identity_mapping_roundtrips() {
        let base: Vec<Option<usize>> = (0..gschema().len()).map(Some).collect();
        let pgq = figure3_pgq();
        let adapted = adapted_pgq(&pgq, &base, &gschema()).unwrap();
        assert_eq!(adapted, pgq);
    }

    #[test]
    fn adapted_pgq_remaps_correlated_refs() {
        let inner = gs().select(Expr::col(PRICE).gt(Expr::Correlated { level: 0, index: PRICE }));
        let pgq = gs().apply(inner.exists(), ApplyMode::Cross).project_cols(&[NAME]);
        // Keep everything but reorder: price moves from 5 to 0.
        let reordered = Schema::new(vec![
            Field::new("p_retailprice", DataType::Float),
            Field::new("ps_suppkey", DataType::Int),
            Field::new("ps_partkey", DataType::Int),
            Field::new("p_partkey", DataType::Int),
            Field::new("p_name", DataType::Str),
            Field::new("p_brand", DataType::Str),
        ]);
        let base: Vec<Option<usize>> = vec![Some(1), Some(2), Some(3), Some(4), Some(5), Some(0)];
        let adapted = adapted_pgq(&pgq, &base, &reordered).unwrap();
        // Dig out the correlated reference and check it now points at 0.
        let mut found = false;
        fn find_corr(p: &LogicalPlan, found: &mut bool) {
            if let LogicalPlan::Select { predicate, .. } = p {
                predicate.visit(&mut |e| {
                    if let Expr::Correlated { index, .. } = e {
                        assert_eq!(*index, 0);
                        *found = true;
                    }
                });
            }
            for c in p.children() {
                find_corr(c, found);
            }
        }
        find_corr(&adapted, &mut found);
        assert!(found);
    }
}
