//! Properties of the §4.3 column analyses: the gp-eval set is contained
//! in the used set, and adapting a per-group query to the projection of
//! exactly its used columns always succeeds without changing its output
//! schema — the contract the projection-before-GApply and
//! invariant-grouping rules rely on.

use proptest::prelude::*;
use xmlpub_algebra::analysis::{adapted_pgq, gp_eval_columns, used_columns};
use xmlpub_algebra::{validate, ApplyMode, LogicalPlan, ProjectItem, SortKey};
use xmlpub_common::{DataType, Field, Schema};
use xmlpub_expr::{AggExpr, Expr};

fn schema4() -> Schema {
    Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("b", DataType::Str),
        Field::new("p", DataType::Float),
        Field::new("q", DataType::Int),
    ])
}

/// Random valid per-group queries over `schema4` (uncorrelated, since
/// `adapted_pgq` declines correlated references by design).
fn pgq_strategy() -> BoxedStrategy<LogicalPlan> {
    let gs = || LogicalPlan::group_scan(schema4());
    let leaf = Just(gs()).boxed();
    leaf.prop_recursive(3, 12, 2, move |inner| {
        let gs = || LogicalPlan::group_scan(schema4());
        prop_oneof![
            (inner.clone(), 0usize..4, -5i64..5).prop_map(|(p, c, v)| {
                let width = p.schema().len();
                p.select(Expr::col(c % width.max(1)).gt_eq(Expr::lit(v)))
            }),
            (inner.clone(), 1usize..4).prop_map(|(p, n)| {
                let width = p.schema().len();
                let keep: Vec<usize> = (0..n.min(width)).collect();
                p.project(keep.into_iter().map(ProjectItem::col).collect())
            }),
            inner.clone().prop_map(|p| p.distinct()),
            inner.clone().prop_map(|p| p.order_by(vec![SortKey::asc(0)])),
            Just(gs().scalar_agg(vec![AggExpr::avg(Expr::col(2), "a"), AggExpr::count_star("n"),])),
            Just(gs().group_by(vec![1], vec![AggExpr::max(Expr::col(2), "m")])),
            inner.clone().prop_map(move |p| {
                let agg = LogicalPlan::group_scan(schema4())
                    .scalar_agg(vec![AggExpr::min(Expr::col(2), "mn")]);
                p.apply(agg, ApplyMode::Scalar)
            }),
            inner.prop_map(|p| LogicalPlan::union_all(vec![p.clone(), p])),
        ]
    })
    .boxed()
}

/// The base-column remapping and narrowed schema that keep exactly the
/// used columns of `pgq`, in their original order.
fn used_projection(pgq: &LogicalPlan) -> (Vec<Option<usize>>, Schema) {
    let used = used_columns(pgq);
    let kept: Vec<usize> = used.into_vec();
    let group = schema4();
    let base_map: Vec<Option<usize>> =
        (0..group.len()).map(|i| kept.iter().position(|&k| k == i)).collect();
    let fields = kept.iter().map(|&i| group.fields()[i].clone()).collect();
    (base_map, Schema::new(fields))
}

proptest! {
    /// Columns needed to *evaluate* a PGQ are a subset of all columns it
    /// touches.
    #[test]
    fn gp_eval_is_subset_of_used(pgq in pgq_strategy()) {
        let gp_eval = gp_eval_columns(&pgq);
        let used = used_columns(&pgq);
        prop_assert!(
            gp_eval.is_subset(&used),
            "gp-eval {:?} not within used {:?} for\n{}",
            gp_eval.as_slice(), used.as_slice(), pgq.explain()
        );
    }

    /// Narrowing the group to exactly the used columns never breaks the
    /// PGQ: adaptation succeeds, output schema is unchanged, and the
    /// adapted query still validates inside a GApply over the narrowed
    /// input.
    #[test]
    fn adaptation_to_used_columns_preserves_schema(pgq in pgq_strategy()) {
        let (base_map, narrowed) = used_projection(&pgq);
        prop_assume!(!narrowed.fields().is_empty());
        let adapted = adapted_pgq(&pgq, &base_map, &narrowed);
        let adapted = match adapted {
            Some(a) => a,
            None => {
                return Err(TestCaseError::fail(format!(
                    "adaptation over the used-column projection failed for\n{}",
                    pgq.explain()
                )))
            }
        };
        prop_assert_eq!(
            adapted.schema(), pgq.schema(),
            "adapted schema differs for\n{}", pgq.explain()
        );
        let host = LogicalPlan::scan("t", narrowed).gapply(vec![0], adapted);
        prop_assert!(validate(&host).is_ok(), "adapted PGQ fails validation:\n{}", host.explain());
    }
}
