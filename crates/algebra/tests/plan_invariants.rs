//! Structural invariants of the logical plan layer, checked over a
//! family of generated plan shapes.

use proptest::prelude::*;
use xmlpub_algebra::analysis::{covering_range, dependency_map, direct_map, gp_eval_columns};
use xmlpub_algebra::{validate, ApplyMode, LogicalPlan, ProjectItem, SortKey};
use xmlpub_common::{DataType, Field, Schema};
use xmlpub_expr::{AggExpr, Expr};

fn schema4() -> Schema {
    Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("b", DataType::Str),
        Field::new("p", DataType::Float),
        Field::new("q", DataType::Int),
    ])
}

/// Generate random valid per-group queries over `schema4`.
fn pgq_strategy() -> BoxedStrategy<LogicalPlan> {
    let gs = || LogicalPlan::group_scan(schema4());
    let leaf = Just(gs()).boxed();
    leaf.prop_recursive(3, 12, 2, move |inner| {
        let gs = || LogicalPlan::group_scan(schema4());
        prop_oneof![
            // select
            (inner.clone(), 0usize..4, -5i64..5).prop_map(|(p, c, v)| {
                let width = p.schema().len();
                p.select(Expr::col(c % width.max(1)).gt_eq(Expr::lit(v)))
            }),
            // project (keep a nonempty prefix)
            (inner.clone(), 1usize..4).prop_map(|(p, n)| {
                let width = p.schema().len();
                let keep: Vec<usize> = (0..n.min(width)).collect();
                p.project(keep.into_iter().map(ProjectItem::col).collect())
            }),
            // distinct / orderby
            inner.clone().prop_map(|p| p.distinct()),
            inner.clone().prop_map(|p| { p.order_by(vec![SortKey::asc(0)]) }),
            // scalar aggregate over a fresh scan
            Just(gs().scalar_agg(vec![AggExpr::avg(Expr::col(2), "a"), AggExpr::count_star("n"),])),
            // group-by over a fresh scan
            Just(gs().group_by(vec![1], vec![AggExpr::max(Expr::col(2), "m")])),
            // apply with a scalar-agg inner
            inner.clone().prop_map(move |p| {
                let agg = LogicalPlan::group_scan(schema4())
                    .scalar_agg(vec![AggExpr::min(Expr::col(2), "mn")]);
                p.apply(agg, ApplyMode::Scalar)
            }),
            // union of two copies of the same subtree (always compatible)
            inner.prop_map(|p| LogicalPlan::union_all(vec![p.clone(), p])),
        ]
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generated PGQs pass validation inside a GApply.
    #[test]
    fn generated_pgqs_validate(pgq in pgq_strategy()) {
        let plan = LogicalPlan::scan("t", schema4()).gapply(vec![0], pgq);
        prop_assert!(validate(&plan).is_ok(), "{}", plan.explain());
    }

    /// map_children with the identity rebuilds an equal plan.
    #[test]
    fn map_children_identity(pgq in pgq_strategy()) {
        let rebuilt = pgq.clone().map_children(&mut |c| c);
        prop_assert_eq!(rebuilt, pgq);
    }

    /// The column analyses are consistent with the plan's arity: maps
    /// have one entry per output column, in-range; gp-eval and covering
    /// range reference only group-scan columns.
    #[test]
    fn analyses_are_arity_consistent(pgq in pgq_strategy()) {
        let width = pgq.schema().len();
        let dm = direct_map(&pgq);
        prop_assert_eq!(dm.len(), width);
        for m in dm.into_iter().flatten() {
            prop_assert!(m < schema4().len());
        }
        let deps = dependency_map(&pgq);
        prop_assert_eq!(deps.len(), width);
        for d in &deps {
            for c in d.iter() {
                prop_assert!(c < schema4().len());
            }
        }
        for c in gp_eval_columns(&pgq).iter() {
            prop_assert!(c < schema4().len());
        }
        let range = covering_range(&pgq);
        for c in range.columns().iter() {
            prop_assert!(c < schema4().len());
        }
    }

    /// explain() never panics and mentions every leaf.
    #[test]
    fn explain_is_robust(pgq in pgq_strategy()) {
        let plan = LogicalPlan::scan("t", schema4()).gapply(vec![0], pgq);
        let text = plan.explain();
        prop_assert!(text.contains("GApply"));
        prop_assert!(text.contains("per-group:"));
        prop_assert!(text.contains("GroupScan"));
    }

    /// node_count matches a manual traversal.
    #[test]
    fn node_count_matches_children_walk(pgq in pgq_strategy()) {
        fn count(p: &LogicalPlan) -> usize {
            1 + p.children().iter().map(|c| count(c)).sum::<usize>()
        }
        prop_assert_eq!(pgq.node_count(), count(&pgq));
    }
}
