//! The generator proper.
//!
//! Cardinalities at scale factor 1 mirror TPC-H: 10 000 suppliers,
//! 200 000 parts, 800 000 partsupp rows (4 suppliers per part), 150 000
//! customers, 1 500 000 orders, ~6 000 000 lineitems. The experiments run
//! at SF 0.002–0.05, which keeps group *counts* and *sizes* in realistic
//! proportion while staying laptop-sized.

use crate::names;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xmlpub_algebra::{Catalog, TableDef};
use xmlpub_common::{DataType, Field, Relation, Result, Schema, Tuple, Value};

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct TpchConfig {
    /// TPC-H scale factor; 1.0 ≈ the official 1 GB database's row counts.
    pub scale: f64,
    /// RNG seed — equal seeds generate identical databases.
    pub seed: u64,
    /// Skew knob for the partsupp fan-out: 0.0 keeps the official fixed
    /// 4-suppliers-per-part; larger values draw the per-part supplier
    /// count from [1, 4 + 8·skew], stressing the §4.4 uniformity
    /// assumption in the ablation benches.
    pub skew: f64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig { scale: 0.01, seed: 0x5EED_CAFE, skew: 0.0 }
    }
}

impl TpchConfig {
    /// Config with the given scale factor and default seed.
    pub fn with_scale(scale: f64) -> Self {
        TpchConfig { scale, ..Default::default() }
    }

    fn count(&self, base: u64) -> usize {
        ((base as f64 * self.scale).round() as usize).max(1)
    }

    /// Number of suppliers at this scale.
    pub fn suppliers(&self) -> usize {
        self.count(10_000)
    }

    /// Number of parts at this scale.
    pub fn parts(&self) -> usize {
        self.count(200_000)
    }

    /// Number of customers at this scale.
    pub fn customers(&self) -> usize {
        self.count(150_000)
    }

    /// Number of orders at this scale.
    pub fn orders(&self) -> usize {
        self.count(1_500_000)
    }
}

/// The generator. Create once, then pull tables (or a whole catalog).
#[derive(Debug)]
pub struct TpchGenerator {
    cfg: TpchConfig,
}

impl TpchGenerator {
    /// A generator for the given configuration.
    pub fn new(cfg: TpchConfig) -> Self {
        TpchGenerator { cfg }
    }

    /// Convenience: generator at a scale factor with default seed.
    pub fn with_scale(scale: f64) -> Self {
        TpchGenerator::new(TpchConfig::with_scale(scale))
    }

    fn rng(&self, table_tag: u64) -> StdRng {
        StdRng::seed_from_u64(self.cfg.seed ^ table_tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// `region(r_regionkey, r_name)` — the five official regions.
    pub fn region(&self) -> (TableDef, Relation) {
        let schema = Schema::new(vec![
            Field::new("r_regionkey", DataType::Int),
            Field::new("r_name", DataType::Str),
        ]);
        let def = TableDef::new("region", schema).with_primary_key(&["r_regionkey"]);
        let rows = names::REGIONS
            .iter()
            .enumerate()
            .map(|(i, r)| Tuple::new(vec![Value::Int(i as i64), Value::str(*r)]))
            .collect();
        let data = Relation::from_rows_unchecked(def.schema.clone(), rows);
        (def, data)
    }

    /// `nation(n_nationkey, n_name, n_regionkey)`
    pub fn nation(&self) -> (TableDef, Relation) {
        let schema = Schema::new(vec![
            Field::new("n_nationkey", DataType::Int),
            Field::new("n_name", DataType::Str),
            Field::new("n_regionkey", DataType::Int),
        ]);
        let def = TableDef::new("nation", schema)
            .with_primary_key(&["n_nationkey"])
            .with_foreign_key(&["n_regionkey"], "region", &["r_regionkey"]);
        let rows = names::NATIONS
            .iter()
            .enumerate()
            .map(|(i, n)| {
                Tuple::new(vec![
                    Value::Int(i as i64),
                    Value::str(*n),
                    Value::Int(names::NATION_REGION[i]),
                ])
            })
            .collect();
        let data = Relation::from_rows_unchecked(def.schema.clone(), rows);
        (def, data)
    }

    /// `supplier(s_suppkey, s_name, s_nationkey, s_acctbal)`
    pub fn supplier(&self) -> (TableDef, Relation) {
        let schema = Schema::new(vec![
            Field::new("s_suppkey", DataType::Int),
            Field::new("s_name", DataType::Str),
            Field::new("s_nationkey", DataType::Int),
            Field::new("s_acctbal", DataType::Float),
        ]);
        let def = TableDef::new("supplier", schema)
            .with_primary_key(&["s_suppkey"])
            .with_foreign_key(&["s_nationkey"], "nation", &["n_nationkey"]);
        let mut rng = self.rng(1);
        let n = self.cfg.suppliers();
        let rows = (1..=n)
            .map(|k| {
                Tuple::new(vec![
                    Value::Int(k as i64),
                    Value::str(format!("Supplier#{k:09}")),
                    Value::Int(rng.gen_range(0..25)),
                    Value::Float(round2(rng.gen_range(-999.99..9999.99))),
                ])
            })
            .collect();
        let data = Relation::from_rows_unchecked(def.schema.clone(), rows);
        (def, data)
    }

    /// `part(p_partkey, p_name, p_brand, p_type, p_size, p_container,
    /// p_retailprice)`
    pub fn part(&self) -> (TableDef, Relation) {
        let schema = Schema::new(vec![
            Field::new("p_partkey", DataType::Int),
            Field::new("p_name", DataType::Str),
            Field::new("p_brand", DataType::Str),
            Field::new("p_type", DataType::Str),
            Field::new("p_size", DataType::Int),
            Field::new("p_container", DataType::Str),
            Field::new("p_retailprice", DataType::Float),
        ]);
        let def = TableDef::new("part", schema).with_primary_key(&["p_partkey"]);
        let mut rng = self.rng(2);
        let n = self.cfg.parts();
        let rows = (1..=n)
            .map(|k| {
                let name = {
                    // Official dbgen: five distinct colour words.
                    let mut words = Vec::with_capacity(5);
                    while words.len() < 5 {
                        let w = names::COLORS[rng.gen_range(0..names::COLORS.len())];
                        if !words.contains(&w) {
                            words.push(w);
                        }
                    }
                    words.join(" ")
                };
                let brand = format!("Brand#{}{}", rng.gen_range(1..=5u32), rng.gen_range(1..=5u32));
                let ptype = format!(
                    "{} {} {}",
                    names::TYPE_SYLLABLE_1[rng.gen_range(0..names::TYPE_SYLLABLE_1.len())],
                    names::TYPE_SYLLABLE_2[rng.gen_range(0..names::TYPE_SYLLABLE_2.len())],
                    names::TYPE_SYLLABLE_3[rng.gen_range(0..names::TYPE_SYLLABLE_3.len())],
                );
                let container = format!(
                    "{} {}",
                    names::CONTAINER_SIZES[rng.gen_range(0..names::CONTAINER_SIZES.len())],
                    names::CONTAINER_KINDS[rng.gen_range(0..names::CONTAINER_KINDS.len())],
                );
                Tuple::new(vec![
                    Value::Int(k as i64),
                    Value::str(name),
                    Value::str(brand),
                    Value::str(ptype),
                    Value::Int(rng.gen_range(1..=50)),
                    Value::str(container),
                    Value::Float(retail_price(k as i64)),
                ])
            })
            .collect();
        let data = Relation::from_rows_unchecked(def.schema.clone(), rows);
        (def, data)
    }

    /// `partsupp(ps_suppkey, ps_partkey, ps_availqty, ps_supplycost)`
    pub fn partsupp(&self) -> (TableDef, Relation) {
        let schema = Schema::new(vec![
            Field::new("ps_suppkey", DataType::Int),
            Field::new("ps_partkey", DataType::Int),
            Field::new("ps_availqty", DataType::Int),
            Field::new("ps_supplycost", DataType::Float),
        ]);
        let def = TableDef::new("partsupp", schema)
            .with_primary_key(&["ps_suppkey", "ps_partkey"])
            .with_foreign_key(&["ps_suppkey"], "supplier", &["s_suppkey"])
            .with_foreign_key(&["ps_partkey"], "part", &["p_partkey"]);
        let mut rng = self.rng(3);
        let parts = self.cfg.parts();
        let suppliers = self.cfg.suppliers() as i64;
        let mut rows = Vec::with_capacity(parts * 4);
        for p in 1..=parts {
            let fanout = if self.cfg.skew <= 0.0 {
                4
            } else {
                let max = (4.0 + 8.0 * self.cfg.skew).round() as usize;
                rng.gen_range(1..=max.max(1))
            };
            for s in 0..fanout {
                // The official assignment spreads a part's suppliers
                // evenly around the supplier keyspace.
                let suppkey = ((p as i64 + (s as i64 * (suppliers / 4 + 1))) % suppliers) + 1;
                rows.push(Tuple::new(vec![
                    Value::Int(suppkey),
                    Value::Int(p as i64),
                    Value::Int(rng.gen_range(1..=9999)),
                    Value::Float(round2(rng.gen_range(1.0..1000.0))),
                ]));
            }
        }
        let data = Relation::from_rows_unchecked(def.schema.clone(), rows);
        (def, data)
    }

    /// `customer(c_custkey, c_name, c_nationkey, c_acctbal)`
    pub fn customer(&self) -> (TableDef, Relation) {
        let schema = Schema::new(vec![
            Field::new("c_custkey", DataType::Int),
            Field::new("c_name", DataType::Str),
            Field::new("c_nationkey", DataType::Int),
            Field::new("c_acctbal", DataType::Float),
        ]);
        let def = TableDef::new("customer", schema)
            .with_primary_key(&["c_custkey"])
            .with_foreign_key(&["c_nationkey"], "nation", &["n_nationkey"]);
        let mut rng = self.rng(4);
        let n = self.cfg.customers();
        let rows = (1..=n)
            .map(|k| {
                Tuple::new(vec![
                    Value::Int(k as i64),
                    Value::str(format!("Customer#{k:09}")),
                    Value::Int(rng.gen_range(0..25)),
                    Value::Float(round2(rng.gen_range(-999.99..9999.99))),
                ])
            })
            .collect();
        let data = Relation::from_rows_unchecked(def.schema.clone(), rows);
        (def, data)
    }

    /// `orders(o_orderkey, o_custkey, o_orderstatus, o_totalprice,
    /// o_orderyear)` — the year stands in for the official order date
    /// (dbgen's seven-year 1992–1998 window), derived from the key
    /// rather than the RNG stream so pre-existing columns stay
    /// byte-identical across versions of this generator.
    pub fn orders(&self) -> (TableDef, Relation) {
        let schema = Schema::new(vec![
            Field::new("o_orderkey", DataType::Int),
            Field::new("o_custkey", DataType::Int),
            Field::new("o_orderstatus", DataType::Str),
            Field::new("o_totalprice", DataType::Float),
            Field::new("o_orderyear", DataType::Int),
        ]);
        let def = TableDef::new("orders", schema)
            .with_primary_key(&["o_orderkey"])
            .with_foreign_key(&["o_custkey"], "customer", &["c_custkey"]);
        let mut rng = self.rng(5);
        let n = self.cfg.orders();
        let customers = self.cfg.customers() as i64;
        let rows = (1..=n)
            .map(|k| {
                let status = ["O", "F", "P"][rng.gen_range(0..3)];
                Tuple::new(vec![
                    Value::Int(k as i64),
                    Value::Int(rng.gen_range(1..=customers)),
                    Value::str(status),
                    Value::Float(round2(rng.gen_range(850.0..560000.0))),
                    Value::Int(1992 + (k as i64 % 7)),
                ])
            })
            .collect();
        let data = Relation::from_rows_unchecked(def.schema.clone(), rows);
        (def, data)
    }

    /// `lineitem(l_orderkey, l_linenumber, l_partkey, l_suppkey,
    /// l_quantity, l_extendedprice, l_discount)` — 1–7 lines per order.
    pub fn lineitem(&self) -> (TableDef, Relation) {
        let schema = Schema::new(vec![
            Field::new("l_orderkey", DataType::Int),
            Field::new("l_linenumber", DataType::Int),
            Field::new("l_partkey", DataType::Int),
            Field::new("l_suppkey", DataType::Int),
            Field::new("l_quantity", DataType::Int),
            Field::new("l_extendedprice", DataType::Float),
            Field::new("l_discount", DataType::Float),
        ]);
        let def = TableDef::new("lineitem", schema)
            .with_primary_key(&["l_orderkey", "l_linenumber"])
            .with_foreign_key(&["l_orderkey"], "orders", &["o_orderkey"])
            .with_foreign_key(&["l_partkey"], "part", &["p_partkey"])
            .with_foreign_key(&["l_suppkey"], "supplier", &["s_suppkey"]);
        let mut rng = self.rng(6);
        let orders = self.cfg.orders();
        let parts = self.cfg.parts() as i64;
        let suppliers = self.cfg.suppliers() as i64;
        let mut rows = Vec::new();
        for o in 1..=orders {
            for line in 1..=rng.gen_range(1..=7) {
                let qty = rng.gen_range(1..=50i64);
                let part = rng.gen_range(1..=parts);
                rows.push(Tuple::new(vec![
                    Value::Int(o as i64),
                    Value::Int(line),
                    Value::Int(part),
                    Value::Int(rng.gen_range(1..=suppliers)),
                    Value::Int(qty),
                    Value::Float(round2(qty as f64 * retail_price(part))),
                    Value::Float(round2(rng.gen_range(0.0..0.1))),
                ]));
            }
        }
        let data = Relation::from_rows_unchecked(def.schema.clone(), rows);
        (def, data)
    }

    /// Generate the full catalog (all eight tables).
    pub fn catalog(&self) -> Result<Catalog> {
        let mut cat = Catalog::new();
        for (def, data) in [
            self.region(),
            self.nation(),
            self.supplier(),
            self.part(),
            self.partsupp(),
            self.customer(),
            self.orders(),
            self.lineitem(),
        ] {
            cat.register(def, data)?;
        }
        Ok(cat)
    }

    /// Generate only the three tables the paper's running examples use
    /// (supplier, part, partsupp) — faster for tests.
    pub fn core_catalog(&self) -> Result<Catalog> {
        let mut cat = Catalog::new();
        for (def, data) in [self.supplier(), self.part(), self.partsupp()] {
            cat.register(def, data)?;
        }
        Ok(cat)
    }
}

/// The official TPC-H retail-price formula.
fn retail_price(partkey: i64) -> f64 {
    (90_000.0 + ((partkey / 10) % 20_001) as f64 + 100.0 * (partkey % 1_000) as f64) / 100.0
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TpchGenerator {
        TpchGenerator::new(TpchConfig { scale: 0.001, seed: 42, skew: 0.0 })
    }

    #[test]
    fn cardinality_ratios() {
        let g = small();
        let (_, sup) = g.supplier();
        let (_, part) = g.part();
        let (_, ps) = g.partsupp();
        assert_eq!(sup.len(), 10);
        assert_eq!(part.len(), 200);
        assert_eq!(ps.len(), 800); // exactly 4 suppliers per part
    }

    #[test]
    fn determinism() {
        let a = small().part().1;
        let b = small().part().1;
        assert_eq!(a.rows(), b.rows());
        let c = TpchGenerator::new(TpchConfig { scale: 0.001, seed: 43, skew: 0.0 }).part().1;
        assert_ne!(a.rows(), c.rows());
    }

    #[test]
    fn partsupp_references_valid_keys() {
        let g = small();
        let suppliers = g.cfg.suppliers() as i64;
        let parts = g.cfg.parts() as i64;
        let (_, ps) = g.partsupp();
        for row in ps.rows() {
            let s = row.value(0).as_int().unwrap();
            let p = row.value(1).as_int().unwrap();
            assert!((1..=suppliers).contains(&s), "bad suppkey {s}");
            assert!((1..=parts).contains(&p), "bad partkey {p}");
        }
    }

    #[test]
    fn partsupp_pairs_are_unique() {
        let (_, ps) = small().partsupp();
        let mut pairs: Vec<(i64, i64)> = ps
            .rows()
            .iter()
            .map(|r| (r.value(0).as_int().unwrap(), r.value(1).as_int().unwrap()))
            .collect();
        let n = pairs.len();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len(), n, "duplicate (suppkey, partkey) pairs");
    }

    #[test]
    fn retail_price_formula_matches_spec() {
        assert_eq!(retail_price(1), 901.00);
        assert_eq!(retail_price(10), 910.01);
        let (_, part) = small().part();
        for row in part.rows() {
            let price = row.value(6).as_f64().unwrap();
            assert!((900.0..=2098.99).contains(&price), "price {price} out of spec range");
        }
    }

    #[test]
    fn brands_and_sizes_have_expected_domains() {
        let (_, part) = TpchGenerator::with_scale(0.005).part();
        let brands = part.distinct_values(2);
        assert!(brands.len() <= 25);
        assert!(brands.len() > 15, "brand domain too small: {}", brands.len());
        for row in part.rows() {
            let size = row.value(4).as_int().unwrap();
            assert!((1..=50).contains(&size));
        }
    }

    #[test]
    fn part_names_are_five_words() {
        let (_, part) = small().part();
        for row in part.rows() {
            assert_eq!(row.value(1).as_str().unwrap().split(' ').count(), 5);
        }
    }

    #[test]
    fn catalog_registers_everything() {
        let g = TpchGenerator::new(TpchConfig { scale: 0.0005, seed: 7, skew: 0.0 });
        let cat = g.catalog().unwrap();
        for t in
            ["region", "nation", "supplier", "part", "partsupp", "customer", "orders", "lineitem"]
        {
            assert!(cat.table(t).is_ok(), "missing {t}");
            assert!(!cat.data(t).unwrap().is_empty(), "{t} empty");
        }
        let core = g.core_catalog().unwrap();
        assert_eq!(core.tables().count(), 3);
    }

    #[test]
    fn fk_metadata_is_registered() {
        let cat = small().core_catalog().unwrap();
        assert!(cat.is_foreign_key_join("partsupp", &["ps_suppkey"], "supplier", &["s_suppkey"]));
        assert!(cat.is_foreign_key_join("partsupp", &["ps_partkey"], "part", &["p_partkey"]));
    }

    #[test]
    fn skew_changes_fanout() {
        let skewed = TpchGenerator::new(TpchConfig { scale: 0.001, seed: 42, skew: 1.0 });
        let (_, ps) = skewed.partsupp();
        // Fan-out varies between 1 and 12, so the total differs from 4/part.
        assert_ne!(ps.len(), 800);
        let mut counts = std::collections::BTreeMap::new();
        for row in ps.rows() {
            *counts.entry(row.value(1).as_int().unwrap()).or_insert(0usize) += 1;
        }
        let min = counts.values().min().unwrap();
        let max = counts.values().max().unwrap();
        assert!(max > min, "skewed fanout should vary (min={min}, max={max})");
    }

    #[test]
    fn nation_regions_match_spec_and_orders_span_the_date_window() {
        let g = small();
        let (_, nation) = g.nation();
        assert_eq!(nation.len(), 25);
        for row in nation.rows() {
            let r = row.value(2).as_int().unwrap();
            assert!((0..5).contains(&r), "bad regionkey {r}");
        }
        // Official spot checks: ALGERIA→AFRICA, GERMANY→EUROPE,
        // CHINA→ASIA, UNITED STATES→AMERICA, EGYPT→MIDDLE EAST.
        for (key, region) in [(0, 0), (7, 3), (18, 2), (24, 1), (4, 4)] {
            assert_eq!(nation.rows()[key as usize].value(2).as_int().unwrap(), region);
        }
        let (_, region) = g.region();
        assert_eq!(region.len(), 5);
        let (_, orders) = g.orders();
        let years: std::collections::BTreeSet<i64> =
            orders.rows().iter().map(|r| r.value(4).as_int().unwrap()).collect();
        assert!(years.iter().all(|y| (1992..=1998).contains(y)), "{years:?}");
        assert!(years.len() > 1, "order years should vary: {years:?}");
    }

    #[test]
    fn lineitem_orders_link_up() {
        let g = TpchGenerator::new(TpchConfig { scale: 0.0002, seed: 9, skew: 0.0 });
        let (_, orders) = g.orders();
        let (_, items) = g.lineitem();
        let max_order = orders.len() as i64;
        assert!(!items.is_empty());
        for row in items.rows() {
            let o = row.value(0).as_int().unwrap();
            assert!((1..=max_order).contains(&o));
        }
    }
}
