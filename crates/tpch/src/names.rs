//! Word lists for synthetic TPC-H text columns.
//!
//! The official generator composes `p_name` from five colour words and
//! container names from size × kind; we reuse the same vocabularies so
//! predicates like `p_name like '%chartreuse%'` behave realistically.

/// The 92 TPC-H part-name colour words.
pub const COLORS: &[&str] = &[
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "burnished",
    "chartreuse",
    "chiffon",
    "chocolate",
    "coral",
    "cornflower",
    "cornsilk",
    "cream",
    "cyan",
    "dark",
    "deep",
    "dim",
    "dodger",
    "drab",
    "firebrick",
    "floral",
    "forest",
    "frosted",
    "gainsboro",
    "ghost",
    "goldenrod",
    "green",
    "grey",
    "honeydew",
    "hot",
    "hotpink",
    "indian",
    "ivory",
    "khaki",
    "lace",
    "lavender",
    "lawn",
    "lemon",
    "light",
    "lime",
    "linen",
    "magenta",
    "maroon",
    "medium",
    "metallic",
    "midnight",
    "mint",
    "misty",
    "moccasin",
    "navajo",
    "navy",
    "olive",
    "orange",
    "orchid",
    "pale",
    "papaya",
    "peach",
    "peru",
    "pink",
    "plum",
    "powder",
    "puff",
    "purple",
    "red",
    "rose",
    "rosy",
    "royal",
    "saddle",
    "salmon",
    "sandy",
    "seashell",
    "sienna",
    "sky",
    "slate",
    "smoke",
    "snow",
    "spring",
    "steel",
    "tan",
    "thistle",
    "tomato",
    "turquoise",
    "violet",
    "wheat",
    "white",
];

/// Container sizes.
pub const CONTAINER_SIZES: &[&str] = &["SM", "LG", "MED", "JUMBO", "WRAP"];

/// Container kinds.
pub const CONTAINER_KINDS: &[&str] = &["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];

/// The 25 TPC-H nations.
pub const NATIONS: &[&str] = &[
    "ALGERIA",
    "ARGENTINA",
    "BRAZIL",
    "CANADA",
    "EGYPT",
    "ETHIOPIA",
    "FRANCE",
    "GERMANY",
    "INDIA",
    "INDONESIA",
    "IRAN",
    "IRAQ",
    "JAPAN",
    "JORDAN",
    "KENYA",
    "MOROCCO",
    "MOZAMBIQUE",
    "PERU",
    "CHINA",
    "ROMANIA",
    "SAUDI ARABIA",
    "VIETNAM",
    "RUSSIA",
    "UNITED KINGDOM",
    "UNITED STATES",
];

/// The five official regions, in `r_regionkey` order.
pub const REGIONS: &[&str] = &["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// Official dbgen nation → region assignment, indexed by
/// `n_nationkey` (parallel to [`NATIONS`]).
pub const NATION_REGION: &[i64] = &[
    0, // ALGERIA
    1, // ARGENTINA
    1, // BRAZIL
    1, // CANADA
    4, // EGYPT
    0, // ETHIOPIA
    3, // FRANCE
    3, // GERMANY
    2, // INDIA
    2, // INDONESIA
    4, // IRAN
    4, // IRAQ
    2, // JAPAN
    4, // JORDAN
    0, // KENYA
    0, // MOROCCO
    0, // MOZAMBIQUE
    1, // PERU
    2, // CHINA
    3, // ROMANIA
    4, // SAUDI ARABIA
    2, // VIETNAM
    3, // RUSSIA
    3, // UNITED KINGDOM
    1, // UNITED STATES
];

/// Part types (abbreviated list, same shape as TPC-H's 150 combinations).
pub const TYPE_SYLLABLE_1: &[&str] = &["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
/// Second type syllable.
pub const TYPE_SYLLABLE_2: &[&str] = &["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
/// Third type syllable.
pub const TYPE_SYLLABLE_3: &[&str] = &["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocabulary_sizes() {
        assert_eq!(COLORS.len(), 92);
        assert_eq!(NATIONS.len(), 25);
        assert_eq!(CONTAINER_SIZES.len() * CONTAINER_KINDS.len(), 40);
        assert_eq!(TYPE_SYLLABLE_1.len() * TYPE_SYLLABLE_2.len() * TYPE_SYLLABLE_3.len(), 150);
    }

    #[test]
    fn no_duplicate_colors() {
        let mut sorted: Vec<&str> = COLORS.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), COLORS.len());
    }
}
