//! Deterministic TPC-H-subset data generator.
//!
//! The paper evaluates on TPC-H (§5.2). We cannot ship the official
//! `dbgen` output, so this crate generates the same schema with the same
//! cardinality ratios from a seeded RNG. The properties the experiments
//! depend on are preserved:
//!
//! * `partsupp` has a fixed fan-out per part (4 suppliers/part at SF 1),
//!   so grouping `partsupp ⋈ part` by `ps_suppkey` yields many groups of
//!   moderate, near-uniform size — the §4.4 uniformity assumption;
//! * `p_retailprice` follows the official TPC-H formula, giving the value
//!   spread that the group-selection and aggregate-selection sweeps vary
//!   their thresholds over;
//! * `p_brand` has 25 distinct values, `p_size` 50 — the selectivity
//!   knobs for Q3/Q4-style predicates.
//!
//! Everything is scale-factor parameterised; the experiment harness
//! records the SF it used in EXPERIMENTS.md.

pub mod gen;
pub mod names;

pub use gen::{TpchConfig, TpchGenerator};
