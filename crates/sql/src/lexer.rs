//! Tokenizer.
//!
//! Hand-written, position-tracking. Identifiers are case-insensitive;
//! string literals use single quotes with `''` escaping; numbers are
//! 64-bit ints or floats.

use xmlpub_common::{Error, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (original spelling preserved).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (unescaped).
    Str(String),
    /// One of `( ) , . ; : * + - / %`
    Sym(char),
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// End of input.
    Eof,
}

impl Tok {
    /// Case-insensitive keyword check.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// A token plus its 1-based source position.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
}

/// Tokenize an input string. The result always ends with [`Tok::Eof`].
pub fn tokenize(input: &str) -> Result<Vec<SpannedTok>> {
    let mut out = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    let mut line = 1usize;
    let mut col = 1usize;
    macro_rules! push {
        ($tok:expr, $l:expr, $c:expr) => {
            out.push(SpannedTok { tok: $tok, line: $l, column: $c })
        };
    }
    while i < chars.len() {
        let (l, c) = (line, col);
        let ch = chars[i];
        match ch {
            '\n' => {
                line += 1;
                col = 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => {
                col += 1;
                i += 1;
            }
            '-' if chars.get(i + 1) == Some(&'-') => {
                // Line comment.
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '(' | ')' | ',' | '.' | ';' | ':' | '*' | '+' | '-' | '/' | '%' => {
                push!(Tok::Sym(ch), l, c);
                col += 1;
                i += 1;
            }
            '=' => {
                push!(Tok::Eq, l, c);
                col += 1;
                i += 1;
            }
            '!' if chars.get(i + 1) == Some(&'=') => {
                push!(Tok::NotEq, l, c);
                col += 2;
                i += 2;
            }
            '<' => match chars.get(i + 1) {
                Some('=') => {
                    push!(Tok::LtEq, l, c);
                    col += 2;
                    i += 2;
                }
                Some('>') => {
                    push!(Tok::NotEq, l, c);
                    col += 2;
                    i += 2;
                }
                _ => {
                    push!(Tok::Lt, l, c);
                    col += 1;
                    i += 1;
                }
            },
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    push!(Tok::GtEq, l, c);
                    col += 2;
                    i += 2;
                } else {
                    push!(Tok::Gt, l, c);
                    col += 1;
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                col += 1;
                loop {
                    match chars.get(i) {
                        Some('\'') if chars.get(i + 1) == Some(&'\'') => {
                            s.push('\'');
                            i += 2;
                            col += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            col += 1;
                            break;
                        }
                        Some(&ch) => {
                            if ch == '\n' {
                                line += 1;
                                col = 1;
                            } else {
                                col += 1;
                            }
                            s.push(ch);
                            i += 1;
                        }
                        None => return Err(Error::parse_at("unterminated string literal", l, c)),
                    }
                }
                push!(Tok::Str(s), l, c);
            }
            '0'..='9' => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if chars.get(i) == Some(&'.')
                    && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())
                {
                    is_float = true;
                    i += 1;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if matches!(chars.get(i), Some('e') | Some('E')) {
                    let mut j = i + 1;
                    if matches!(chars.get(j), Some('+') | Some('-')) {
                        j += 1;
                    }
                    if chars.get(j).is_some_and(|d| d.is_ascii_digit()) {
                        is_float = true;
                        i = j;
                        while i < chars.len() && chars[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text: String = chars[start..i].iter().collect();
                col += i - start;
                if is_float {
                    let v = text
                        .parse::<f64>()
                        .map_err(|_| Error::parse_at(format!("bad number '{text}'"), l, c))?;
                    push!(Tok::Float(v), l, c);
                } else {
                    let v = text
                        .parse::<i64>()
                        .map_err(|_| Error::parse_at(format!("bad number '{text}'"), l, c))?;
                    push!(Tok::Int(v), l, c);
                }
            }
            ch if ch.is_ascii_alphabetic() || ch == '_' || ch == '$' => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_ascii_alphanumeric() || chars[i] == '_' || chars[i] == '$')
                {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                col += i - start;
                push!(Tok::Ident(text), l, c);
            }
            other => return Err(Error::parse_at(format!("unexpected character '{other}'"), l, c)),
        }
    }
    out.push(SpannedTok { tok: Tok::Eof, line, column: col });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(input: &str) -> Vec<Tok> {
        tokenize(input).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("select * from t where a >= 1.5"),
            vec![
                Tok::Ident("select".into()),
                Tok::Sym('*'),
                Tok::Ident("from".into()),
                Tok::Ident("t".into()),
                Tok::Ident("where".into()),
                Tok::Ident("a".into()),
                Tok::GtEq,
                Tok::Float(1.5),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("= <> != < <= > >="),
            vec![Tok::Eq, Tok::NotEq, Tok::NotEq, Tok::Lt, Tok::LtEq, Tok::Gt, Tok::GtEq, Tok::Eof]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(toks("'it''s'"), vec![Tok::Str("it's".into()), Tok::Eof]);
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("42 4.5 1e3 7"),
            vec![Tok::Int(42), Tok::Float(4.5), Tok::Float(1000.0), Tok::Int(7), Tok::Eof]
        );
        // A dot not followed by a digit is a symbol (qualified name).
        assert_eq!(
            toks("t.c"),
            vec![Tok::Ident("t".into()), Tok::Sym('.'), Tok::Ident("c".into()), Tok::Eof]
        );
    }

    #[test]
    fn comments_and_positions() {
        let ts = tokenize("select -- comment\n  x").unwrap();
        assert_eq!(ts[1].tok, Tok::Ident("x".into()));
        assert_eq!(ts[1].line, 2);
        assert_eq!(ts[1].column, 3);
    }

    #[test]
    fn gapply_colon_syntax() {
        assert_eq!(
            toks("group by ps_suppkey : tmpSupp"),
            vec![
                Tok::Ident("group".into()),
                Tok::Ident("by".into()),
                Tok::Ident("ps_suppkey".into()),
                Tok::Sym(':'),
                Tok::Ident("tmpSupp".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn keyword_check_is_case_insensitive() {
        assert!(Tok::Ident("SELECT".into()).is_kw("select"));
        assert!(!Tok::Ident("selects".into()).is_kw("select"));
        assert!(!Tok::Eq.is_kw("select"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("select @").is_err());
    }
}
