//! Recursive-descent parser.

use crate::ast::*;
use crate::lexer::{tokenize, SpannedTok, Tok};
use xmlpub_common::{Error, Result, Value};

/// Parse one SQL query (a trailing `;` is allowed).
pub fn parse(input: &str) -> Result<Query> {
    let toks = tokenize(input)?;
    let mut p = Parser { toks, pos: 0, depth: 0 };
    let q = p.parse_query()?;
    p.eat_sym(';');
    p.expect_eof()?;
    Ok(q)
}

/// Keywords that terminate an implicit alias position.
const CLAUSE_KEYWORDS: &[&str] = &[
    "where", "group", "order", "having", "union", "on", "join", "inner", "left", "right", "from",
    "as", "and", "or", "not", "select", "limit",
];

/// Hard recursion bound: expressions and subqueries nested deeper than
/// this are rejected instead of overflowing the stack.
const MAX_DEPTH: usize = 96;

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
    depth: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn here(&self) -> (usize, usize) {
        let t = &self.toks[self.pos];
        (t.line, t.column)
    }

    fn advance(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        let (l, c) = self.here();
        Error::parse_at(msg, l, c)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{kw}', found {:?}", self.peek())))
        }
    }

    fn eat_sym(&mut self, s: char) -> bool {
        if *self.peek() == Tok::Sym(s) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: char) -> Result<()> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{s}', found {:?}", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.advance();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect_eof(&self) -> Result<()> {
        if *self.peek() == Tok::Eof {
            Ok(())
        } else {
            Err(self.err(format!("unexpected trailing input: {:?}", self.peek())))
        }
    }

    // ---- queries ----------------------------------------------------

    fn parse_query(&mut self) -> Result<Query> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            self.depth -= 1;
            return Err(self.err(format!("query nested deeper than {MAX_DEPTH} levels")));
        }
        let out = self.parse_query_inner();
        self.depth -= 1;
        out
    }

    fn parse_query_inner(&mut self) -> Result<Query> {
        let body = self.parse_set_expr()?;
        let mut order_by = Vec::new();
        if self.peek().is_kw("order") {
            self.advance();
            self.expect_kw("by")?;
            loop {
                let expr = self.parse_expr()?;
                let asc = if self.eat_kw("desc") {
                    false
                } else {
                    self.eat_kw("asc");
                    true
                };
                order_by.push(OrderItem { expr, asc });
                if !self.eat_sym(',') {
                    break;
                }
            }
        }
        Ok(Query { body, order_by })
    }

    fn parse_set_expr(&mut self) -> Result<SetExpr> {
        let mut left = self.parse_set_primary()?;
        while self.peek().is_kw("union") {
            self.advance();
            let all = self.eat_kw("all");
            let right = self.parse_set_primary()?;
            left = SetExpr::Union { left: Box::new(left), right: Box::new(right), all };
        }
        Ok(left)
    }

    fn parse_set_primary(&mut self) -> Result<SetExpr> {
        if self.eat_sym('(') {
            let inner = self.parse_set_expr()?;
            self.expect_sym(')')?;
            Ok(inner)
        } else {
            Ok(SetExpr::Select(Box::new(self.parse_select()?)))
        }
    }

    fn parse_select(&mut self) -> Result<Select> {
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        let mut select = Select { distinct, ..Default::default() };

        // The gapply extension: `select gapply(<query>) [as (cols)]`.
        if self.peek().is_kw("gapply") && *self.peek2() == Tok::Sym('(') {
            self.advance();
            self.expect_sym('(')?;
            let query = self.parse_query()?;
            self.expect_sym(')')?;
            let columns = if self.eat_kw("as") {
                self.expect_sym('(')?;
                let mut cols = vec![self.expect_ident()?];
                while self.eat_sym(',') {
                    cols.push(self.expect_ident()?);
                }
                self.expect_sym(')')?;
                Some(cols)
            } else {
                None
            };
            select.gapply = Some(GApplyClause { query: Box::new(query), columns });
        } else {
            loop {
                select.items.push(self.parse_select_item()?);
                if !self.eat_sym(',') {
                    break;
                }
            }
        }

        if self.eat_kw("from") {
            loop {
                select.from.push(self.parse_table_ref()?);
                if !self.eat_sym(',') {
                    break;
                }
            }
        }
        if self.eat_kw("where") {
            select.selection = Some(self.parse_expr()?);
        }
        if self.peek().is_kw("group") {
            self.advance();
            self.expect_kw("by")?;
            loop {
                select.group_by.push(self.parse_expr()?);
                if !self.eat_sym(',') {
                    break;
                }
            }
            // The `: x` relation-valued binding of the extension.
            if self.eat_sym(':') {
                select.group_binding = Some(self.expect_ident()?);
            }
        }
        if self.eat_kw("having") {
            select.having = Some(self.parse_expr()?);
        }
        if select.gapply.is_some() && select.group_binding.is_none() {
            return Err(
                self.err("gapply requires a relation-valued variable: `group by <cols> : x`")
            );
        }
        Ok(select)
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        if self.eat_sym('*') {
            return Ok(SelectItem::Wildcard);
        }
        // `alias.*`
        if let (Tok::Ident(q), Tok::Sym('.')) = (self.peek(), self.peek2()) {
            if self.toks.get(self.pos + 2).map(|t| &t.tok) == Some(&Tok::Sym('*')) {
                let q = q.clone();
                self.advance();
                self.advance();
                self.advance();
                return Ok(SelectItem::QualifiedWildcard(q));
            }
        }
        let expr = self.parse_expr()?;
        let alias = if self.eat_kw("as") {
            Some(self.expect_ident()?)
        } else {
            match self.peek() {
                Tok::Ident(s) if !CLAUSE_KEYWORDS.iter().any(|k| s.eq_ignore_ascii_case(k)) => {
                    let a = s.clone();
                    self.advance();
                    Some(a)
                }
                _ => None,
            }
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    // ---- FROM -------------------------------------------------------

    fn parse_table_ref(&mut self) -> Result<TableRef> {
        let mut left = self.parse_table_primary()?;
        loop {
            let is_join = if self.peek().is_kw("join") {
                self.advance();
                true
            } else if self.peek().is_kw("inner") {
                self.advance();
                self.expect_kw("join")?;
                true
            } else {
                false
            };
            if !is_join {
                break;
            }
            let right = self.parse_table_primary()?;
            self.expect_kw("on")?;
            let on = self.parse_expr()?;
            left = TableRef::Join { left: Box::new(left), right: Box::new(right), on };
        }
        Ok(left)
    }

    fn parse_table_primary(&mut self) -> Result<TableRef> {
        if self.eat_sym('(') {
            let query = self.parse_query()?;
            self.expect_sym(')')?;
            self.eat_kw("as");
            let alias = self.expect_ident()?;
            let columns = if self.eat_sym('(') {
                let mut cols = vec![self.expect_ident()?];
                while self.eat_sym(',') {
                    cols.push(self.expect_ident()?);
                }
                self.expect_sym(')')?;
                Some(cols)
            } else {
                None
            };
            return Ok(TableRef::Derived { query: Box::new(query), alias, columns });
        }
        let name = self.expect_ident()?;
        let alias = if self.eat_kw("as") {
            Some(self.expect_ident()?)
        } else {
            match self.peek() {
                Tok::Ident(s) if !CLAUSE_KEYWORDS.iter().any(|k| s.eq_ignore_ascii_case(k)) => {
                    let a = s.clone();
                    self.advance();
                    Some(a)
                }
                _ => None,
            }
        };
        Ok(TableRef::Table { name, alias })
    }

    // ---- expressions --------------------------------------------------

    fn parse_expr(&mut self) -> Result<AstExpr> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            self.depth -= 1;
            return Err(self.err(format!("expression nested deeper than {MAX_DEPTH} levels")));
        }
        let out = self.parse_or();
        self.depth -= 1;
        out
    }

    fn parse_or(&mut self) -> Result<AstExpr> {
        let mut left = self.parse_and()?;
        while self.eat_kw("or") {
            let right = self.parse_and()?;
            left = AstExpr::Binary { op: BinOp::Or, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<AstExpr> {
        let mut left = self.parse_not()?;
        while self.eat_kw("and") {
            let right = self.parse_not()?;
            left = AstExpr::Binary { op: BinOp::And, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<AstExpr> {
        if self.peek().is_kw("not") && !self.peek2().is_kw("exists") {
            self.advance();
            return Ok(AstExpr::Not(Box::new(self.parse_not()?)));
        }
        self.parse_predicate()
    }

    fn parse_predicate(&mut self) -> Result<AstExpr> {
        let left = self.parse_additive()?;
        // Comparison operators.
        let op = match self.peek() {
            Tok::Eq => Some(BinOp::Eq),
            Tok::NotEq => Some(BinOp::NotEq),
            Tok::Lt => Some(BinOp::Lt),
            Tok::LtEq => Some(BinOp::LtEq),
            Tok::Gt => Some(BinOp::Gt),
            Tok::GtEq => Some(BinOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let right = self.parse_additive()?;
            return Ok(AstExpr::Binary { op, left: Box::new(left), right: Box::new(right) });
        }
        // Postfix predicates: IS [NOT] NULL, [NOT] LIKE, [NOT] IN, BETWEEN.
        if self.peek().is_kw("is") {
            self.advance();
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(AstExpr::IsNull { expr: Box::new(left), negated });
        }
        let negated = if self.peek().is_kw("not")
            && (self.peek2().is_kw("like")
                || self.peek2().is_kw("in")
                || self.peek2().is_kw("between"))
        {
            self.advance();
            true
        } else {
            false
        };
        if self.eat_kw("like") {
            let pattern = match self.advance() {
                Tok::Str(s) => s,
                other => {
                    return Err(self.err(format!("LIKE needs a string pattern, found {other:?}")))
                }
            };
            return Ok(AstExpr::Like { expr: Box::new(left), pattern, negated });
        }
        if self.eat_kw("in") {
            self.expect_sym('(')?;
            let mut list = vec![self.parse_expr()?];
            while self.eat_sym(',') {
                list.push(self.parse_expr()?);
            }
            self.expect_sym(')')?;
            return Ok(AstExpr::InList { expr: Box::new(left), list, negated });
        }
        if self.eat_kw("between") {
            let low = self.parse_additive()?;
            self.expect_kw("and")?;
            let high = self.parse_additive()?;
            let range = AstExpr::Binary {
                op: BinOp::And,
                left: Box::new(AstExpr::Binary {
                    op: BinOp::GtEq,
                    left: Box::new(left.clone()),
                    right: Box::new(low),
                }),
                right: Box::new(AstExpr::Binary {
                    op: BinOp::LtEq,
                    left: Box::new(left),
                    right: Box::new(high),
                }),
            };
            return Ok(if negated { AstExpr::Not(Box::new(range)) } else { range });
        }
        if negated {
            return Err(self.err("dangling NOT"));
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<AstExpr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Tok::Sym('+') => BinOp::Add,
                Tok::Sym('-') => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.parse_multiplicative()?;
            left = AstExpr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<AstExpr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Tok::Sym('*') => BinOp::Mul,
                Tok::Sym('/') => BinOp::Div,
                Tok::Sym('%') => BinOp::Mod,
                _ => break,
            };
            self.advance();
            let right = self.parse_unary()?;
            left = AstExpr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<AstExpr> {
        if self.eat_sym('-') {
            return Ok(AstExpr::Neg(Box::new(self.parse_unary()?)));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<AstExpr> {
        // EXISTS / NOT EXISTS subquery.
        if self.peek().is_kw("exists") {
            self.advance();
            self.expect_sym('(')?;
            let q = self.parse_query()?;
            self.expect_sym(')')?;
            return Ok(AstExpr::Exists { query: Box::new(q), negated: false });
        }
        if self.peek().is_kw("not") && self.peek2().is_kw("exists") {
            self.advance();
            self.advance();
            self.expect_sym('(')?;
            let q = self.parse_query()?;
            self.expect_sym(')')?;
            return Ok(AstExpr::Exists { query: Box::new(q), negated: true });
        }
        if self.peek().is_kw("case") {
            return self.parse_case();
        }
        match self.peek().clone() {
            Tok::Int(v) => {
                self.advance();
                Ok(AstExpr::Literal(Value::Int(v)))
            }
            Tok::Float(v) => {
                self.advance();
                Ok(AstExpr::Literal(Value::Float(v)))
            }
            Tok::Str(s) => {
                self.advance();
                Ok(AstExpr::Literal(Value::str(s)))
            }
            Tok::Sym('(') => {
                self.advance();
                // Scalar subquery vs parenthesised expression.
                if self.peek().is_kw("select") {
                    let q = self.parse_query()?;
                    self.expect_sym(')')?;
                    Ok(AstExpr::Subquery(Box::new(q)))
                } else {
                    let e = self.parse_expr()?;
                    self.expect_sym(')')?;
                    Ok(e)
                }
            }
            Tok::Ident(first) => {
                const RESERVED: &[&str] = &[
                    "select", "from", "where", "group", "by", "order", "having", "union", "on",
                    "join", "inner", "as", "when", "then", "else", "end", "distinct", "all", "and",
                    "or", "not", "is", "like", "in", "between", "exists",
                ];
                if RESERVED.iter().any(|k| first.eq_ignore_ascii_case(k)) {
                    return Err(self.err(format!("unexpected keyword '{first}' in expression")));
                }
                self.advance();
                if first.eq_ignore_ascii_case("null") {
                    return Ok(AstExpr::Literal(Value::Null));
                }
                if first.eq_ignore_ascii_case("true") {
                    return Ok(AstExpr::Literal(Value::Bool(true)));
                }
                if first.eq_ignore_ascii_case("false") {
                    return Ok(AstExpr::Literal(Value::Bool(false)));
                }
                // Function call.
                if *self.peek() == Tok::Sym('(') {
                    self.advance();
                    let name = first.to_ascii_lowercase();
                    if self.eat_sym('*') {
                        self.expect_sym(')')?;
                        return Ok(AstExpr::Function {
                            name,
                            args: vec![],
                            distinct: false,
                            star: true,
                        });
                    }
                    let distinct = self.eat_kw("distinct");
                    let mut args = Vec::new();
                    if *self.peek() != Tok::Sym(')') {
                        args.push(self.parse_expr()?);
                        while self.eat_sym(',') {
                            args.push(self.parse_expr()?);
                        }
                    }
                    self.expect_sym(')')?;
                    return Ok(AstExpr::Function { name, args, distinct, star: false });
                }
                // Qualified column.
                if self.eat_sym('.') {
                    let name = self.expect_ident()?;
                    return Ok(AstExpr::Column { qualifier: Some(first), name });
                }
                Ok(AstExpr::Column { qualifier: None, name: first })
            }
            other => Err(self.err(format!("unexpected token {other:?} in expression"))),
        }
    }

    fn parse_case(&mut self) -> Result<AstExpr> {
        self.expect_kw("case")?;
        let mut branches = Vec::new();
        while self.eat_kw("when") {
            let cond = self.parse_expr()?;
            self.expect_kw("then")?;
            let result = self.parse_expr()?;
            branches.push((cond, result));
        }
        if branches.is_empty() {
            return Err(self.err("CASE requires at least one WHEN branch"));
        }
        let else_expr = if self.eat_kw("else") { Some(Box::new(self.parse_expr()?)) } else { None };
        self.expect_kw("end")?;
        Ok(AstExpr::Case { branches, else_expr })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(q: &Query) -> &Select {
        match &q.body {
            SetExpr::Select(s) => s,
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn minimal_select() {
        let q = parse("select a, b from t").unwrap();
        let s = sel(&q);
        assert_eq!(s.items.len(), 2);
        assert_eq!(s.from.len(), 1);
    }

    #[test]
    fn wildcard_and_aliases() {
        let q = parse("select *, t.*, a as x, b y from t as u, v w").unwrap();
        let s = sel(&q);
        assert_eq!(s.items.len(), 4);
        assert!(matches!(s.items[0], SelectItem::Wildcard));
        assert!(matches!(&s.items[1], SelectItem::QualifiedWildcard(q) if q == "t"));
        assert!(matches!(&s.items[2], SelectItem::Expr { alias: Some(a), .. } if a == "x"));
        assert!(matches!(&s.items[3], SelectItem::Expr { alias: Some(a), .. } if a == "y"));
        assert!(matches!(&s.from[0], TableRef::Table { alias: Some(a), .. } if a == "u"));
        assert!(matches!(&s.from[1], TableRef::Table { alias: Some(a), .. } if a == "w"));
    }

    #[test]
    fn expression_precedence() {
        let q = parse("select 1 + 2 * 3 from t where a or b and not c").unwrap();
        let s = sel(&q);
        // 1 + (2 * 3)
        match &s.items[0] {
            SelectItem::Expr { expr: AstExpr::Binary { op: BinOp::Add, right, .. }, .. } => {
                assert!(matches!(**right, AstExpr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
        // a or (b and (not c))
        match s.selection.as_ref().unwrap() {
            AstExpr::Binary { op: BinOp::Or, right, .. } => match &**right {
                AstExpr::Binary { op: BinOp::And, right, .. } => {
                    assert!(matches!(**right, AstExpr::Not(_)))
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn comparisons_and_postfix_predicates() {
        let q = parse(
            "select * from t where a >= 1 and b is not null and c like 'x%' \
             and d not in (1, 2) and e between 1 and 3",
        )
        .unwrap();
        assert!(sel(&q).selection.is_some());
    }

    #[test]
    fn group_by_having_order_by() {
        let q = parse("select k, avg(v) from t group by k having count(*) > 1 order by k desc, 2")
            .unwrap();
        let s = sel(&q);
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        assert_eq!(q.order_by.len(), 2);
        assert!(!q.order_by[0].asc);
    }

    #[test]
    fn union_all_chain() {
        let q = parse("select a from t union all select b from u union select c from v").unwrap();
        match &q.body {
            SetExpr::Union { all: false, left, .. } => match &**left {
                SetExpr::Union { all: true, .. } => {}
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn joins_and_derived_tables() {
        let q = parse(
            "select * from a join b on a.x = b.y inner join c on b.z = c.w, \
             (select k from d) as sub(kk)",
        )
        .unwrap();
        let s = sel(&q);
        assert_eq!(s.from.len(), 2);
        assert!(matches!(&s.from[0], TableRef::Join { .. }));
        match &s.from[1] {
            TableRef::Derived { alias, columns, .. } => {
                assert_eq!(alias, "sub");
                assert_eq!(columns.as_deref(), Some(&["kk".to_string()][..]));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn subqueries_and_exists() {
        let q = parse(
            "select * from t where a > (select avg(a) from t) and \
             exists (select 1 from u) and not exists (select 1 from v)",
        )
        .unwrap();
        assert!(sel(&q).selection.is_some());
    }

    #[test]
    fn aggregate_calls() {
        let q = parse("select count(*), count(distinct a), sum(b + 1) from t").unwrap();
        let s = sel(&q);
        assert!(matches!(
            &s.items[0],
            SelectItem::Expr { expr: AstExpr::Function { star: true, .. }, .. }
        ));
        assert!(matches!(
            &s.items[1],
            SelectItem::Expr { expr: AstExpr::Function { distinct: true, .. }, .. }
        ));
    }

    #[test]
    fn case_expression() {
        let q = parse(
            "select case when a > 1 then 'big' when a > 0 then 'small' else 'neg' end from t",
        )
        .unwrap();
        match &sel(&q).items[0] {
            SelectItem::Expr { expr: AstExpr::Case { branches, else_expr }, .. } => {
                assert_eq!(branches.len(), 2);
                assert!(else_expr.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse("select case end from t").is_err());
    }

    #[test]
    fn paper_q1_gapply_syntax() {
        // The paper's Q1, §3.1, with an inline per-group query.
        let q = parse(
            "select gapply(
                 select p_name, p_retailprice, null from tmpSupp
                 union all
                 select null, null, avg(p_retailprice) from tmpSupp
             ) as (p_name, p_retailprice, avgprice)
             from partsupp, part
             where ps_partkey = p_partkey
             group by ps_suppkey : tmpSupp",
        )
        .unwrap();
        let s = sel(&q);
        let ga = s.gapply.as_ref().expect("gapply clause");
        assert!(matches!(ga.query.body, SetExpr::Union { all: true, .. }));
        assert_eq!(
            ga.columns.as_deref(),
            Some(&["p_name".to_string(), "p_retailprice".into(), "avgprice".into()][..])
        );
        assert_eq!(s.group_binding.as_deref(), Some("tmpSupp"));
        assert_eq!(s.group_by.len(), 1);
    }

    #[test]
    fn gapply_without_binding_is_an_error() {
        let err = parse("select gapply(select * from x) from t group by k").unwrap_err();
        assert!(err.to_string().contains("relation-valued"), "{err}");
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse("select from").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("parse error at 1:"), "{msg}");
    }

    #[test]
    fn null_true_false_literals() {
        let q = parse("select null, true, false from t").unwrap();
        let s = sel(&q);
        assert!(matches!(
            &s.items[0],
            SelectItem::Expr { expr: AstExpr::Literal(Value::Null), .. }
        ));
        assert!(matches!(
            &s.items[1],
            SelectItem::Expr { expr: AstExpr::Literal(Value::Bool(true)), .. }
        ));
    }

    #[test]
    fn negative_numbers_and_parens() {
        let q = parse("select -(a + 1) * 2 from t").unwrap();
        assert!(matches!(
            &sel(&q).items[0],
            SelectItem::Expr { expr: AstExpr::Binary { op: BinOp::Mul, .. }, .. }
        ));
    }

    #[test]
    fn trailing_semicolon_ok() {
        assert!(parse("select a from t;").is_ok());
        assert!(parse("select a from t; garbage").is_err());
    }
}
