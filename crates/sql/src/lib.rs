//! SQL front end with the paper's GApply syntax extension (§3.1).
//!
//! The supported dialect is the subset the paper's queries use —
//! `SELECT [DISTINCT] … FROM … [JOIN … ON …] WHERE … GROUP BY … [HAVING …]
//! [ORDER BY …]`, `UNION [ALL]`, scalar and `EXISTS` subqueries,
//! aggregates, `CASE`, `LIKE`, `IN (list)` — plus the extension:
//!
//! ```sql
//! select gapply(<per-group query>) [as (col, ...)]
//! from <relations>
//! where <conditions>
//! group by <grouping columns> : x
//! ```
//!
//! The `: x` names the relation-valued variable; all columns of the
//! joined tables are bound to `x`, and the per-group query treats `x` as
//! its (only) table. The binder lowers this directly to a
//! [`xmlpub_algebra::LogicalPlan::GApply`] node, which is the whole point
//! of exposing the syntax: "the parser should translate a query with the
//! gapply keyword into an operator tree with GApply", sparing the
//! optimizer the (hard) job of detecting groupwise processing in plain
//! SQL, "especially in the presence of unions".

pub mod ast;
pub mod binder;
pub mod lexer;
pub mod parser;

pub use binder::Binder;
pub use parser::parse;

use xmlpub_algebra::{Catalog, LogicalPlan};
use xmlpub_common::Result;

/// Parse and bind a SQL string against a catalog.
pub fn compile(sql: &str, catalog: &Catalog) -> Result<LogicalPlan> {
    let query = parse(sql)?;
    Binder::new(catalog).bind_query(&query)
}
