//! Abstract syntax tree for the supported dialect.

use xmlpub_common::Value;

/// A full query: a set expression plus an optional ORDER BY.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The body (selects combined with UNION [ALL]).
    pub body: SetExpr,
    /// ORDER BY items (empty when absent).
    pub order_by: Vec<OrderItem>,
}

/// Select bodies combined by set operators.
#[derive(Debug, Clone, PartialEq)]
pub enum SetExpr {
    /// A single SELECT.
    Select(Box<Select>),
    /// `left UNION ALL right` (when `all`) or `left UNION right`.
    Union {
        /// Left branch.
        left: Box<SetExpr>,
        /// Right branch.
        right: Box<SetExpr>,
        /// UNION ALL vs UNION (distinct).
        all: bool,
    },
}

/// One ORDER BY item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// Sort expression (often a bare column or output name).
    pub expr: AstExpr,
    /// Ascending unless `DESC` was written.
    pub asc: bool,
}

/// A SELECT block.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Select {
    /// SELECT DISTINCT?
    pub distinct: bool,
    /// Regular projection items; empty when `gapply` is used.
    pub items: Vec<SelectItem>,
    /// The paper's `gapply(<per-group query>) [as (cols)]` select form.
    pub gapply: Option<GApplyClause>,
    /// FROM clause.
    pub from: Vec<TableRef>,
    /// WHERE predicate.
    pub selection: Option<AstExpr>,
    /// GROUP BY expressions (column references).
    pub group_by: Vec<AstExpr>,
    /// The `: x` relation-valued variable of the GApply extension.
    pub group_binding: Option<String>,
    /// HAVING predicate.
    pub having: Option<AstExpr>,
}

/// The gapply select clause.
#[derive(Debug, Clone, PartialEq)]
pub struct GApplyClause {
    /// The per-group query (its FROM references the `: x` binding).
    pub query: Box<Query>,
    /// Optional `as (c1, c2, …)` output column names for the per-group
    /// part of the result.
    pub columns: Option<Vec<String>>,
}

/// One item in a SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// An expression with an optional alias.
    Expr {
        /// The expression.
        expr: AstExpr,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// A FROM-clause relation.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// A named table with an optional alias.
    Table {
        /// Table name.
        name: String,
        /// Alias (defaults to the table name).
        alias: Option<String>,
    },
    /// A parenthesised subquery with a mandatory alias.
    Derived {
        /// The subquery.
        query: Box<Query>,
        /// Alias.
        alias: String,
        /// Optional column renames `as t(c1, c2)`.
        columns: Option<Vec<String>>,
    },
    /// `left [INNER] JOIN right ON condition`.
    Join {
        /// Left input.
        left: Box<TableRef>,
        /// Right input.
        right: Box<TableRef>,
        /// ON condition.
        on: AstExpr,
    },
}

/// Binary operators at the AST level (same set as the algebra).
pub use xmlpub_expr::BinOp;

/// Scalar expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// `[qualifier.]name`
    Column {
        /// Table alias, if written.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// A literal.
    Literal(Value),
    /// Binary operator application.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<AstExpr>,
        /// Right operand.
        right: Box<AstExpr>,
    },
    /// `NOT e`
    Not(Box<AstExpr>),
    /// `-e`
    Neg(Box<AstExpr>),
    /// `e IS [NOT] NULL`
    IsNull {
        /// Operand.
        expr: Box<AstExpr>,
        /// IS NOT NULL?
        negated: bool,
    },
    /// `e [NOT] LIKE 'pattern'`
    Like {
        /// Operand.
        expr: Box<AstExpr>,
        /// Pattern literal.
        pattern: String,
        /// NOT LIKE?
        negated: bool,
    },
    /// `e [NOT] IN (v1, v2, …)`
    InList {
        /// Operand.
        expr: Box<AstExpr>,
        /// List items.
        list: Vec<AstExpr>,
        /// NOT IN?
        negated: bool,
    },
    /// Searched CASE.
    Case {
        /// WHEN/THEN pairs.
        branches: Vec<(AstExpr, AstExpr)>,
        /// ELSE arm.
        else_expr: Option<Box<AstExpr>>,
    },
    /// A function call — aggregates (`count`, `sum`, `avg`, `min`, `max`)
    /// are recognised by the binder.
    Function {
        /// Lower-cased function name.
        name: String,
        /// Arguments (empty for `count(*)`).
        args: Vec<AstExpr>,
        /// `DISTINCT` argument modifier.
        distinct: bool,
        /// `*` argument (count(*)).
        star: bool,
    },
    /// Scalar subquery `(select …)`.
    Subquery(Box<Query>),
    /// `[NOT] EXISTS (select …)`.
    Exists {
        /// The subquery.
        query: Box<Query>,
        /// NOT EXISTS?
        negated: bool,
    },
}

impl AstExpr {
    /// Column shorthand.
    pub fn column(name: &str) -> AstExpr {
        AstExpr::Column { qualifier: None, name: name.to_string() }
    }

    /// Does this expression contain an aggregate function call (not
    /// nested inside a subquery)?
    pub fn contains_aggregate(&self) -> bool {
        match self {
            AstExpr::Function { name, .. } => {
                matches!(name.as_str(), "count" | "sum" | "avg" | "min" | "max")
            }
            AstExpr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            AstExpr::Not(e) | AstExpr::Neg(e) => e.contains_aggregate(),
            AstExpr::IsNull { expr, .. } | AstExpr::Like { expr, .. } => expr.contains_aggregate(),
            AstExpr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(|e| e.contains_aggregate())
            }
            AstExpr::Case { branches, else_expr } => {
                branches.iter().any(|(c, r)| c.contains_aggregate() || r.contains_aggregate())
                    || else_expr.as_ref().is_some_and(|e| e.contains_aggregate())
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_detection() {
        let agg = AstExpr::Function {
            name: "avg".into(),
            args: vec![AstExpr::column("x")],
            distinct: false,
            star: false,
        };
        assert!(agg.contains_aggregate());
        let wrapped = AstExpr::Binary {
            op: BinOp::Gt,
            left: Box::new(agg),
            right: Box::new(AstExpr::Literal(Value::Int(1))),
        };
        assert!(wrapped.contains_aggregate());
        assert!(!AstExpr::column("x").contains_aggregate());
        // Subqueries shield their aggregates.
        let sub = AstExpr::Subquery(Box::new(Query {
            body: SetExpr::Select(Box::default()),
            order_by: vec![],
        }));
        assert!(!sub.contains_aggregate());
    }
}
