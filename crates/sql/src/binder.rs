//! Name resolution and lowering to the logical algebra.
//!
//! Highlights:
//!
//! * the `gapply` clause lowers directly to a `GApply` node — the binder
//!   pushes the `: x` relation-valued binding, under which `FROM x`
//!   resolves to a `GroupScan` (including inside the per-group query's
//!   own subqueries);
//! * scalar subqueries and `EXISTS` lower to `Apply` per the subquery
//!   model of [12]: the subquery is bound in a child scope, references
//!   that escape to an enclosing scope become `Expr::Correlated`;
//! * comma-joins are folded into the left-deep annotated join trees the
//!   paper's §4 assumes, WHERE conjuncts are distributed onto the
//!   deepest join that covers their columns, and each join is annotated
//!   as a foreign-key join when the catalog metadata proves it — the
//!   precondition of the invariant-grouping rule.

use crate::ast::{AstExpr, GApplyClause, OrderItem, Query, Select, SelectItem, SetExpr, TableRef};
use xmlpub_algebra::{ApplyMode, Catalog, LogicalPlan, ProjectItem, SortKey};
use xmlpub_common::{Error, Result, Schema, Value};
use xmlpub_expr::{conjunction, AggExpr, AggFunc, BinOp, Expr, UnaryOp};

/// The binder. Create per catalog; `bind_query` may be called repeatedly.
pub struct Binder<'a> {
    catalog: &'a Catalog,
    /// Stack of `: x` relation-valued bindings (name, group schema).
    group_bindings: Vec<(String, Schema)>,
}

impl<'a> Binder<'a> {
    /// A binder over a catalog.
    pub fn new(catalog: &'a Catalog) -> Self {
        Binder { catalog, group_bindings: Vec::new() }
    }

    /// Bind a top-level query.
    pub fn bind_query(&mut self, query: &Query) -> Result<LogicalPlan> {
        self.bind_query_scoped(query, &[])
    }

    fn bind_query_scoped(&mut self, query: &Query, outer: &[Schema]) -> Result<LogicalPlan> {
        let plan = self.bind_set(&query.body, outer)?;
        if query.order_by.is_empty() {
            return Ok(plan);
        }
        let schema = plan.schema();
        let keys = query
            .order_by
            .iter()
            .map(|item| self.bind_order_item(item, &schema, outer))
            .collect::<Result<Vec<_>>>()?;
        Ok(plan.order_by(keys))
    }

    fn bind_order_item(
        &mut self,
        item: &OrderItem,
        schema: &Schema,
        outer: &[Schema],
    ) -> Result<SortKey> {
        // `ORDER BY 2` means output position 2.
        if let AstExpr::Literal(Value::Int(pos)) = &item.expr {
            let idx = *pos - 1;
            if idx < 0 || idx as usize >= schema.len() {
                return Err(Error::bind(format!(
                    "ORDER BY position {pos} out of range (1..={})",
                    schema.len()
                )));
            }
            return Ok(SortKey { expr: Expr::col(idx as usize), asc: item.asc });
        }
        let mut subplans = Vec::new();
        let expr = self.bind_expr(&item.expr, schema, outer, &mut subplans, None)?;
        if !subplans.is_empty() {
            return Err(Error::bind("subqueries are not supported in ORDER BY"));
        }
        Ok(SortKey { expr, asc: item.asc })
    }

    fn bind_set(&mut self, set: &SetExpr, outer: &[Schema]) -> Result<LogicalPlan> {
        match set {
            SetExpr::Select(s) => self.bind_select(s, outer),
            SetExpr::Union { left, right, all } => {
                let l = self.bind_set(left, outer)?;
                let r = self.bind_set(right, outer)?;
                if !l.schema().union_compatible(&r.schema()) {
                    return Err(Error::bind(format!(
                        "UNION branches are not compatible: {} vs {}",
                        l.schema(),
                        r.schema()
                    )));
                }
                // Flatten chains of UNION ALL into one n-ary node.
                let mut branches = Vec::new();
                for side in [l, r] {
                    match side {
                        LogicalPlan::UnionAll { inputs } if *all => branches.extend(inputs),
                        other => branches.push(other),
                    }
                }
                let u = LogicalPlan::union_all(branches);
                Ok(if *all { u } else { u.distinct() })
            }
        }
    }

    // ---- SELECT ------------------------------------------------------

    fn bind_select(&mut self, select: &Select, outer: &[Schema]) -> Result<LogicalPlan> {
        if select.from.is_empty() {
            return Err(Error::bind("FROM clause is required"));
        }
        // FROM → left-deep join tree + alias→table map for FK detection.
        let (mut plan, aliases) = self.bind_from(&select.from, outer)?;

        // WHERE.
        if let Some(where_expr) = &select.selection {
            plan = self.apply_where(plan, where_expr, outer)?;
            // Conjuncts distributed onto comma-joins may have completed a
            // key/foreign-key equality; re-derive the FK annotations.
            plan = self.annotate_fk_joins(plan, &aliases);
        }

        // The gapply extension.
        if let Some(clause) = &select.gapply {
            return self.bind_gapply(plan, select, clause, outer);
        }

        // GROUP BY / aggregates / plain projection.
        let has_aggs = select.items.iter().any(|it| match it {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            _ => false,
        }) || select.having.as_ref().is_some_and(|h| h.contains_aggregate());

        let mut plan = if !select.group_by.is_empty() || has_aggs {
            self.bind_aggregate_select(plan, select, outer)?
        } else {
            if select.having.is_some() {
                return Err(Error::bind("HAVING requires GROUP BY or aggregates"));
            }
            self.bind_projection(plan, &select.items, outer)?
        };
        if select.distinct {
            plan = plan.distinct();
        }
        let _ = aliases;
        Ok(plan)
    }

    /// Plain (non-aggregate) SELECT list.
    fn bind_projection(
        &mut self,
        plan: LogicalPlan,
        items: &[SelectItem],
        outer: &[Schema],
    ) -> Result<LogicalPlan> {
        let schema = plan.schema();
        let mut proj = Vec::new();
        let mut subplans = Vec::new();
        for item in items {
            match item {
                SelectItem::Wildcard => {
                    proj.extend((0..schema.len()).map(ProjectItem::col));
                }
                SelectItem::QualifiedWildcard(q) => {
                    let mut any = false;
                    for (i, f) in schema.fields().iter().enumerate() {
                        if f.qualifier.as_deref().is_some_and(|fq| fq.eq_ignore_ascii_case(q)) {
                            proj.push(ProjectItem::col(i));
                            any = true;
                        }
                    }
                    if !any {
                        return Err(Error::bind(format!("unknown table alias '{q}' in {q}.*")));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let bound = self.bind_expr(expr, &schema, outer, &mut subplans, None)?;
                    proj.push(ProjectItem { expr: bound, alias: alias.clone() });
                }
            }
        }
        // Scalar subqueries in the select list: apply them, then project.
        let plan = subplans.into_iter().fold(plan, |p, (inner, mode)| p.apply(inner, mode));
        Ok(plan.project(proj))
    }

    /// SELECT with GROUP BY and/or aggregates.
    fn bind_aggregate_select(
        &mut self,
        plan: LogicalPlan,
        select: &Select,
        outer: &[Schema],
    ) -> Result<LogicalPlan> {
        let in_schema = plan.schema();
        // Keys must be column references.
        let mut keys = Vec::new();
        for g in &select.group_by {
            match g {
                AstExpr::Column { qualifier, name } => {
                    keys.push(in_schema.resolve(qualifier.as_deref(), name)?);
                }
                other => {
                    return Err(Error::bind(format!(
                        "GROUP BY supports column references only, found {other:?}"
                    )))
                }
            }
        }
        let mut aggs: Vec<AggExpr> = Vec::new();
        // Bind items against the future GroupBy output.
        let mut proj = Vec::new();
        for item in &select.items {
            match item {
                SelectItem::Expr { expr, alias } => {
                    let bound = self.bind_agg_expr(expr, &in_schema, &keys, &mut aggs, outer)?;
                    proj.push(ProjectItem { expr: bound, alias: alias.clone() });
                }
                _ => return Err(Error::bind("wildcards are not allowed in an aggregate SELECT")),
            }
        }
        let having = match &select.having {
            Some(h) => Some(self.bind_agg_expr(h, &in_schema, &keys, &mut aggs, outer)?),
            None => None,
        };
        let mut plan = if keys.is_empty() {
            plan.scalar_agg(aggs.clone())
        } else {
            plan.group_by(keys.clone(), aggs.clone())
        };
        // In the keyed case the GroupBy output is keys ++ aggs and the
        // bound expressions already target that layout. In the scalar
        // case the output is just aggs, so references (key_len = 0) are
        // already correct too.
        if let Some(h) = having {
            plan = plan.select(h);
        }
        Ok(plan.project(proj))
    }

    /// Bind an expression in aggregate context: column references must be
    /// grouping keys; aggregate calls bind their argument against the
    /// pre-aggregation schema and are collected into `aggs`.
    fn bind_agg_expr(
        &mut self,
        expr: &AstExpr,
        in_schema: &Schema,
        keys: &[usize],
        aggs: &mut Vec<AggExpr>,
        outer: &[Schema],
    ) -> Result<Expr> {
        match expr {
            AstExpr::Function { name, args, distinct, star } if is_aggregate_name(name) => {
                let agg =
                    self.bind_aggregate_call(name, args, *distinct, *star, in_schema, outer)?;
                let idx = aggs.len();
                aggs.push(agg);
                Ok(Expr::col(keys.len() + idx))
            }
            AstExpr::Column { qualifier, name } => {
                let idx = in_schema.resolve(qualifier.as_deref(), name)?;
                match keys.iter().position(|&k| k == idx) {
                    Some(pos) => Ok(Expr::col(pos)),
                    None => Err(Error::bind(format!(
                        "column '{name}' must appear in GROUP BY or inside an aggregate"
                    ))),
                }
            }
            AstExpr::Literal(v) => Ok(Expr::Literal(v.clone())),
            AstExpr::Binary { op, left, right } => Ok(Expr::binary(
                *op,
                self.bind_agg_expr(left, in_schema, keys, aggs, outer)?,
                self.bind_agg_expr(right, in_schema, keys, aggs, outer)?,
            )),
            AstExpr::Not(e) => Ok(self.bind_agg_expr(e, in_schema, keys, aggs, outer)?.not()),
            AstExpr::Neg(e) => Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(self.bind_agg_expr(e, in_schema, keys, aggs, outer)?),
            }),
            AstExpr::IsNull { expr, negated } => Ok(Expr::Unary {
                op: if *negated { UnaryOp::IsNotNull } else { UnaryOp::IsNull },
                expr: Box::new(self.bind_agg_expr(expr, in_schema, keys, aggs, outer)?),
            }),
            AstExpr::Case { branches, else_expr } => {
                let branches = branches
                    .iter()
                    .map(|(c, r)| {
                        Ok((
                            self.bind_agg_expr(c, in_schema, keys, aggs, outer)?,
                            self.bind_agg_expr(r, in_schema, keys, aggs, outer)?,
                        ))
                    })
                    .collect::<Result<Vec<_>>>()?;
                let else_expr = match else_expr {
                    Some(e) => Some(Box::new(self.bind_agg_expr(e, in_schema, keys, aggs, outer)?)),
                    None => None,
                };
                Ok(Expr::Case { branches, else_expr })
            }
            other => {
                Err(Error::bind(format!("unsupported expression in aggregate context: {other:?}")))
            }
        }
    }

    fn bind_aggregate_call(
        &mut self,
        name: &str,
        args: &[AstExpr],
        distinct: bool,
        star: bool,
        in_schema: &Schema,
        outer: &[Schema],
    ) -> Result<AggExpr> {
        let output_name = if star { format!("{name}(*)") } else { name.to_string() };
        if star {
            if name != "count" {
                return Err(Error::bind(format!("{name}(*) is not valid")));
            }
            return Ok(AggExpr::count_star(output_name));
        }
        if args.len() != 1 {
            return Err(Error::bind(format!(
                "{name} takes exactly one argument, got {}",
                args.len()
            )));
        }
        let mut subplans = Vec::new();
        let arg = self.bind_expr(&args[0], in_schema, outer, &mut subplans, None)?;
        if !subplans.is_empty() {
            return Err(Error::bind("subqueries are not allowed inside aggregates"));
        }
        let func = match (name, distinct) {
            ("count", true) => AggFunc::CountDistinct,
            ("count", false) => AggFunc::Count,
            ("sum", false) => AggFunc::Sum,
            ("avg", false) => AggFunc::Avg,
            ("min", false) => AggFunc::Min,
            ("max", false) => AggFunc::Max,
            (n, true) => {
                return Err(Error::bind(format!("DISTINCT is only supported for count, not {n}")))
            }
            (n, _) => return Err(Error::bind(format!("unknown aggregate '{n}'"))),
        };
        Ok(AggExpr::new(func, arg, output_name))
    }

    // ---- GApply --------------------------------------------------------

    fn bind_gapply(
        &mut self,
        plan: LogicalPlan,
        select: &Select,
        clause: &GApplyClause,
        outer: &[Schema],
    ) -> Result<LogicalPlan> {
        let binding =
            select.group_binding.as_ref().expect("parser guarantees a binding with gapply");
        if select.having.is_some() {
            return Err(Error::bind("HAVING cannot be combined with gapply"));
        }
        if select.distinct {
            return Err(Error::bind("SELECT DISTINCT cannot be combined with gapply"));
        }
        let in_schema = plan.schema();
        let mut group_cols = Vec::new();
        for g in &select.group_by {
            match g {
                AstExpr::Column { qualifier, name } => {
                    group_cols.push(in_schema.resolve(qualifier.as_deref(), name)?);
                }
                other => {
                    return Err(Error::bind(format!(
                        "gapply grouping columns must be column references, found {other:?}"
                    )))
                }
            }
        }
        // Bind the per-group query with the relation-valued variable in
        // scope: `FROM <binding>` resolves to a GroupScan over the outer
        // schema ("all columns in the joining tables are associated with
        // x", §3.1).
        self.group_bindings.push((binding.clone(), in_schema.clone()));
        let pgq = self.bind_query_scoped(&clause.query, outer);
        self.group_bindings.pop();
        let pgq = pgq?;

        let gapply = plan.gapply(group_cols.clone(), pgq);
        // Optional output renames: `as (c1, …)` names the per-group part.
        match &clause.columns {
            None => Ok(gapply),
            Some(names) => {
                let key_len = group_cols.len();
                let width = gapply.schema().len() - key_len;
                if names.len() != width {
                    return Err(Error::bind(format!(
                        "gapply AS lists {} columns but the per-group query returns {width}",
                        names.len()
                    )));
                }
                let items = (0..key_len)
                    .map(ProjectItem::col)
                    .chain(
                        names
                            .iter()
                            .enumerate()
                            .map(|(i, n)| ProjectItem::named(Expr::col(key_len + i), n.clone())),
                    )
                    .collect();
                Ok(gapply.project(items))
            }
        }
    }

    // ---- FROM ----------------------------------------------------------

    /// Bind the FROM clause into a left-deep join tree. Returns the plan
    /// and the (alias → table) pairs for FK detection.
    fn bind_from(
        &mut self,
        from: &[TableRef],
        outer: &[Schema],
    ) -> Result<(LogicalPlan, Vec<(String, String)>)> {
        let mut aliases: Vec<(String, String)> = Vec::new();
        let mut plan: Option<LogicalPlan> = None;
        for tref in from {
            let right = self.bind_table_ref(tref, outer, &mut aliases)?;
            plan = Some(match plan {
                None => right,
                Some(left) => self.make_join(left, right, Expr::lit(true), &aliases),
            });
        }
        Ok((plan.expect("FROM checked non-empty"), aliases))
    }

    fn bind_table_ref(
        &mut self,
        tref: &TableRef,
        outer: &[Schema],
        aliases: &mut Vec<(String, String)>,
    ) -> Result<LogicalPlan> {
        match tref {
            TableRef::Table { name, alias } => {
                // A `: x` relation-valued binding shadows catalog tables.
                if let Some((_, gschema)) =
                    self.group_bindings.iter().rev().find(|(b, _)| b.eq_ignore_ascii_case(name))
                {
                    return Ok(LogicalPlan::group_scan(gschema.clone()));
                }
                let def = self.catalog.table(name)?;
                let alias_name = alias.clone().unwrap_or_else(|| name.clone());
                self.check_alias_unique(&alias_name, aliases)?;
                aliases.push((alias_name.to_ascii_lowercase(), def.name.to_ascii_lowercase()));
                let schema = def.schema.with_qualifier(&alias_name);
                Ok(LogicalPlan::scan(def.name.clone(), schema))
            }
            TableRef::Derived { query, alias, columns } => {
                let plan = self.bind_query_scoped(query, outer)?;
                self.check_alias_unique(alias, aliases)?;
                // Derived tables have no catalog entry; record the alias
                // with an empty table name so FK detection skips them.
                aliases.push((alias.to_ascii_lowercase(), String::new()));
                let schema = plan.schema();
                if let Some(cols) = columns {
                    if cols.len() != schema.len() {
                        return Err(Error::bind(format!(
                            "derived table '{alias}' renames {} columns but the query \
                             returns {}",
                            cols.len(),
                            schema.len()
                        )));
                    }
                }
                // Re-qualify every output column under the FROM alias
                // (the `qualifier.name` alias form of ProjectItem).
                let items: Vec<ProjectItem> = (0..schema.len())
                    .map(|i| {
                        let name = match columns {
                            Some(cols) => cols[i].clone(),
                            None => schema.field(i).name.clone(),
                        };
                        ProjectItem::named(Expr::col(i), format!("{alias}.{name}"))
                    })
                    .collect();
                Ok(plan.project(items))
            }
            TableRef::Join { left, right, on } => {
                let l = self.bind_table_ref(left, outer, aliases)?;
                let r = self.bind_table_ref(right, outer, aliases)?;
                let combined = l.schema().join(&r.schema());
                let mut subplans = Vec::new();
                let pred = self.bind_expr(on, &combined, outer, &mut subplans, None)?;
                if !subplans.is_empty() {
                    return Err(Error::bind("subqueries are not allowed in JOIN ... ON"));
                }
                Ok(self.make_join(l, r, pred, aliases))
            }
        }
    }

    fn check_alias_unique(&self, alias: &str, aliases: &[(String, String)]) -> Result<()> {
        if aliases.iter().any(|(a, _)| a.eq_ignore_ascii_case(alias)) {
            return Err(Error::bind(format!("duplicate table alias '{alias}'")));
        }
        Ok(())
    }

    /// Build a join and annotate it as a foreign-key join when the
    /// predicate's equi-conjuncts match declared FK metadata.
    fn make_join(
        &self,
        left: LogicalPlan,
        right: LogicalPlan,
        predicate: Expr,
        aliases: &[(String, String)],
    ) -> LogicalPlan {
        let fk = self.is_fk_predicate(&left, &right, &predicate, aliases);
        LogicalPlan::Join {
            left: Box::new(left),
            right: Box::new(right),
            predicate,
            fk_left_to_right: fk,
        }
    }

    /// Recompute the FK annotation of every join in the (already bound)
    /// tree from its current predicate.
    fn annotate_fk_joins(&self, plan: LogicalPlan, aliases: &[(String, String)]) -> LogicalPlan {
        let plan = plan.map_children(&mut |c| self.annotate_fk_joins(c, aliases));
        match plan {
            LogicalPlan::Join { left, right, predicate, fk_left_to_right } => {
                let fk =
                    fk_left_to_right || self.is_fk_predicate(&left, &right, &predicate, aliases);
                LogicalPlan::Join { left, right, predicate, fk_left_to_right: fk }
            }
            other => other,
        }
    }

    fn is_fk_predicate(
        &self,
        left: &LogicalPlan,
        right: &LogicalPlan,
        predicate: &Expr,
        aliases: &[(String, String)],
    ) -> bool {
        let left_schema = left.schema();
        let right_schema = right.schema();
        let left_len = left_schema.len();
        // Collect equi pairs (left field, right field) grouped by the
        // pair of source aliases.
        let mut by_tables: std::collections::BTreeMap<
            (String, String),
            (Vec<String>, Vec<String>),
        > = std::collections::BTreeMap::new();
        for c in xmlpub_expr::conjuncts(predicate) {
            let Expr::Binary { op: BinOp::Eq, left: a, right: b } = &c else {
                continue;
            };
            let (la, rb) = match (&**a, &**b) {
                (Expr::Column(x), Expr::Column(y)) if *x < left_len && *y >= left_len => {
                    (*x, *y - left_len)
                }
                (Expr::Column(y), Expr::Column(x)) if *x < left_len && *y >= left_len => {
                    (*x, *y - left_len)
                }
                _ => continue,
            };
            let lf = left_schema.field(la);
            let rf = right_schema.field(rb);
            let (Some(lq), Some(rq)) = (&lf.qualifier, &rf.qualifier) else {
                continue;
            };
            let entry =
                by_tables.entry((lq.to_ascii_lowercase(), rq.to_ascii_lowercase())).or_default();
            entry.0.push(lf.name.clone());
            entry.1.push(rf.name.clone());
        }
        let table_of = |alias: &str| -> Option<&str> {
            aliases.iter().find(|(a, _)| a == alias).map(|(_, t)| t.as_str())
        };
        by_tables.iter().any(|((la, ra), (lcols, rcols))| {
            let (Some(lt), Some(rt)) = (table_of(la), table_of(ra)) else {
                return false;
            };
            let lrefs: Vec<&str> = lcols.iter().map(String::as_str).collect();
            let rrefs: Vec<&str> = rcols.iter().map(String::as_str).collect();
            self.catalog.is_foreign_key_join(lt, &lrefs, rt, &rrefs)
        })
    }

    // ---- WHERE ---------------------------------------------------------

    /// Apply a WHERE clause: distribute plain conjuncts onto the join
    /// tree first (so subqueries run over the joined, filtered stream,
    /// not a cross product), then turn subquery conjuncts into Applies.
    fn apply_where(
        &mut self,
        plan: LogicalPlan,
        where_expr: &AstExpr,
        outer: &[Schema],
    ) -> Result<LogicalPlan> {
        let conjs = split_ast_conjuncts(where_expr);
        let mut plain: Vec<Expr> = Vec::new();
        let mut subquery_conjs: Vec<AstExpr> = Vec::new();
        let base_schema = plan.schema();
        for c in conjs {
            if ast_contains_subquery(&c) {
                subquery_conjs.push(c);
            } else {
                let mut subplans = Vec::new();
                let bound = self.bind_expr(&c, &base_schema, outer, &mut subplans, None)?;
                debug_assert!(subplans.is_empty());
                plain.push(bound);
            }
        }
        // Phase 1: join predicates and filters sink onto the join tree.
        let mut plan = if plain.is_empty() { plan } else { distribute_conjuncts(plan, plain) };
        // Phase 2: subquery conjuncts become Applies over the joined,
        // filtered stream.
        let width = base_schema.len();
        for c in subquery_conjs {
            match c {
                AstExpr::Exists { query, negated } => {
                    let inner = self.bind_subquery(&query, &plan.schema(), outer)?;
                    let test = if negated { inner.not_exists() } else { inner.exists() };
                    plan = plan.apply(test, ApplyMode::Cross);
                }
                other => {
                    let schema = plan.schema();
                    let mut subplans = Vec::new();
                    let bound = self.bind_expr(&other, &schema, outer, &mut subplans, None)?;
                    let mut p = plan;
                    for (inner, mode) in subplans {
                        p = p.apply(inner, mode);
                    }
                    p = p.select(bound);
                    plan = p.project_cols(&(0..width).collect::<Vec<_>>());
                }
            }
        }
        Ok(plan)
    }

    /// Bind a subquery producing a plan, in a child scope whose enclosing
    /// scopes are `[outer…, schema]`.
    fn bind_subquery(
        &mut self,
        query: &Query,
        schema: &Schema,
        outer: &[Schema],
    ) -> Result<LogicalPlan> {
        let mut scopes: Vec<Schema> = outer.to_vec();
        scopes.push(schema.clone());
        self.bind_query_scoped(query, &scopes)
    }

    // ---- expressions ---------------------------------------------------

    /// Bind a scalar expression. Scalar subqueries are collected into
    /// `subplans`; the returned expression references their (future)
    /// appended output column.
    fn bind_expr(
        &mut self,
        expr: &AstExpr,
        schema: &Schema,
        outer: &[Schema],
        subplans: &mut Vec<(LogicalPlan, ApplyMode)>,
        agg_note: Option<()>,
    ) -> Result<Expr> {
        let _ = agg_note;
        match expr {
            AstExpr::Column { qualifier, name } => {
                if let Some(idx) = schema.try_resolve(qualifier.as_deref(), name)? {
                    return Ok(Expr::col(idx));
                }
                // Walk enclosing scopes: innermost first → level 0.
                for (level, s) in outer.iter().rev().enumerate() {
                    if let Some(idx) = s.try_resolve(qualifier.as_deref(), name)? {
                        return Ok(Expr::Correlated { level, index: idx });
                    }
                }
                Err(Error::bind(format!(
                    "no such column '{}{}'; in scope: {}",
                    qualifier.as_deref().map(|q| format!("{q}.")).unwrap_or_default(),
                    name,
                    schema
                )))
            }
            AstExpr::Literal(v) => Ok(Expr::Literal(v.clone())),
            AstExpr::Binary { op, left, right } => Ok(Expr::binary(
                *op,
                self.bind_expr(left, schema, outer, subplans, None)?,
                self.bind_expr(right, schema, outer, subplans, None)?,
            )),
            AstExpr::Not(e) => Ok(self.bind_expr(e, schema, outer, subplans, None)?.not()),
            AstExpr::Neg(e) => Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(self.bind_expr(e, schema, outer, subplans, None)?),
            }),
            AstExpr::IsNull { expr, negated } => Ok(Expr::Unary {
                op: if *negated { UnaryOp::IsNotNull } else { UnaryOp::IsNull },
                expr: Box::new(self.bind_expr(expr, schema, outer, subplans, None)?),
            }),
            AstExpr::Like { expr, pattern, negated } => Ok(Expr::Like {
                expr: Box::new(self.bind_expr(expr, schema, outer, subplans, None)?),
                pattern: pattern.clone(),
                negated: *negated,
            }),
            AstExpr::InList { expr, list, negated } => {
                let e = self.bind_expr(expr, schema, outer, subplans, None)?;
                let mut disj: Option<Expr> = None;
                for item in list {
                    let i = self.bind_expr(item, schema, outer, subplans, None)?;
                    let eq = e.clone().eq(i);
                    disj = Some(match disj {
                        None => eq,
                        Some(d) => d.or(eq),
                    });
                }
                let d = disj.ok_or_else(|| Error::bind("empty IN list"))?;
                Ok(if *negated { d.not() } else { d })
            }
            AstExpr::Case { branches, else_expr } => {
                let branches = branches
                    .iter()
                    .map(|(c, r)| {
                        Ok((
                            self.bind_expr(c, schema, outer, subplans, None)?,
                            self.bind_expr(r, schema, outer, subplans, None)?,
                        ))
                    })
                    .collect::<Result<Vec<_>>>()?;
                let else_expr = match else_expr {
                    Some(e) => Some(Box::new(self.bind_expr(e, schema, outer, subplans, None)?)),
                    None => None,
                };
                Ok(Expr::Case { branches, else_expr })
            }
            AstExpr::Function { name, .. } if is_aggregate_name(name) => Err(Error::bind(format!(
                "aggregate '{name}' is not allowed here (only in SELECT/HAVING of an \
                     aggregate query)"
            ))),
            AstExpr::Function { name, .. } => {
                Err(Error::bind(format!("unknown function '{name}'")))
            }
            AstExpr::Subquery(q) => {
                let inner = self.bind_subquery(q, schema, outer)?;
                let width = inner.schema().len();
                if width != 1 {
                    return Err(Error::bind(format!(
                        "scalar subquery must return one column, returns {width}"
                    )));
                }
                // The appended column's index: current schema width plus
                // one column for every previously collected subquery.
                let idx = schema.len() + subplans.len();
                subplans.push((inner, ApplyMode::Scalar));
                Ok(Expr::col(idx))
            }
            AstExpr::Exists { .. } => {
                Err(Error::bind("EXISTS is only supported as a top-level WHERE/HAVING conjunct"))
            }
        }
    }
}

/// Does the expression contain a subquery (scalar or EXISTS)?
fn ast_contains_subquery(expr: &AstExpr) -> bool {
    match expr {
        AstExpr::Subquery(_) | AstExpr::Exists { .. } => true,
        AstExpr::Binary { left, right, .. } => {
            ast_contains_subquery(left) || ast_contains_subquery(right)
        }
        AstExpr::Not(e) | AstExpr::Neg(e) => ast_contains_subquery(e),
        AstExpr::IsNull { expr, .. } | AstExpr::Like { expr, .. } => ast_contains_subquery(expr),
        AstExpr::InList { expr, list, .. } => {
            ast_contains_subquery(expr) || list.iter().any(ast_contains_subquery)
        }
        AstExpr::Case { branches, else_expr } => {
            branches.iter().any(|(c, r)| ast_contains_subquery(c) || ast_contains_subquery(r))
                || else_expr.as_deref().is_some_and(ast_contains_subquery)
        }
        _ => false,
    }
}

/// Split an AST expression on top-level ANDs.
fn split_ast_conjuncts(expr: &AstExpr) -> Vec<AstExpr> {
    match expr {
        AstExpr::Binary { op: BinOp::And, left, right } => {
            let mut out = split_ast_conjuncts(left);
            out.extend(split_ast_conjuncts(right));
            out
        }
        other => vec![other.clone()],
    }
}

/// Attach conjuncts to the deepest join whose combined schema covers
/// their columns; leftovers become a selection on top.
fn distribute_conjuncts(plan: LogicalPlan, conjs: Vec<Expr>) -> LogicalPlan {
    // Collect spine widths (top-down).
    fn widths(plan: &LogicalPlan, out: &mut Vec<usize>) {
        if let LogicalPlan::Join { left, right, .. } = plan {
            out.push(left.schema().len() + right.schema().len());
            widths(left, out);
        }
    }
    let mut spine_widths = Vec::new();
    widths(&plan, &mut spine_widths);
    if spine_widths.is_empty() {
        return if conjs.is_empty() { plan } else { plan.select(conjunction(conjs)) };
    }
    // For each conjunct pick the deepest spine join that covers it;
    // depth d counts joins from the top (0 = topmost).
    let mut per_depth: Vec<Vec<Expr>> = vec![Vec::new(); spine_widths.len()];
    let mut leftover = Vec::new();
    for c in conjs {
        if c.has_correlated() {
            leftover.push(c);
            continue;
        }
        let max_col = c.columns().iter().max();
        let Some(max_col) = max_col else {
            leftover.push(c);
            continue;
        };
        // Deepest join whose width covers max_col.
        let mut chosen = None;
        for (d, w) in spine_widths.iter().enumerate() {
            if *w > max_col {
                chosen = Some(d);
            } else {
                break;
            }
        }
        match chosen {
            Some(d) => per_depth[d].push(c),
            None => leftover.push(c),
        }
    }
    fn rebuild(plan: LogicalPlan, per_depth: &mut [Vec<Expr>], depth: usize) -> LogicalPlan {
        match plan {
            LogicalPlan::Join { left, right, predicate, fk_left_to_right }
                if depth < per_depth.len() =>
            {
                let new_left = rebuild(*left, per_depth, depth + 1);
                let extra = std::mem::take(&mut per_depth[depth]);
                let predicate = if extra.is_empty() {
                    predicate
                } else {
                    let mut all = vec![predicate];
                    all.extend(extra);
                    // Drop a leading literal-true placeholder.
                    let all: Vec<Expr> =
                        all.into_iter().filter(|e| *e != Expr::lit(true)).collect();
                    conjunction(all)
                };
                LogicalPlan::Join { left: Box::new(new_left), right, predicate, fk_left_to_right }
            }
            other => other,
        }
    }
    let plan = rebuild(plan, &mut per_depth, 0);
    if leftover.is_empty() {
        plan
    } else {
        plan.select(conjunction(leftover))
    }
}

fn is_aggregate_name(name: &str) -> bool {
    matches!(name, "count" | "sum" | "avg" | "min" | "max")
}
