//! Parser robustness: random input never panics; structured random
//! queries parse deterministically.

use proptest::prelude::*;
use xmlpub_sql::parse;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary strings may fail to parse, but must never panic.
    #[test]
    fn parser_never_panics_on_arbitrary_input(s in ".{0,120}") {
        let _ = parse(&s);
    }

    /// SQL-shaped token soup: still no panics.
    #[test]
    fn parser_never_panics_on_token_soup(
        toks in proptest::collection::vec(
            prop_oneof![
                Just("select"), Just("from"), Just("where"), Just("group"),
                Just("by"), Just("union"), Just("all"), Just("gapply"),
                Just("("), Just(")"), Just(","), Just(":"), Just("*"),
                Just("="), Just("<"), Just("and"), Just("or"), Just("not"),
                Just("t"), Just("x"), Just("a"), Just("1"), Just("'s'"),
                Just("avg"), Just("count"), Just("exists"), Just("null"),
            ],
            0..25,
        )
    ) {
        let joined = toks.join(" ");
        let _ = parse(&joined);
    }

    /// Deterministic: parsing twice gives identical ASTs.
    #[test]
    fn parsing_is_deterministic(
        col in "[a-c]", table in "[t-v]", n in 0i64..100, asc in any::<bool>()
    ) {
        let sql = format!(
            "select {col}, count(*) from {table} where {col} > {n} \
             group by {col} order by 1 {}",
            if asc { "asc" } else { "desc" }
        );
        let a = parse(&sql).unwrap();
        let b = parse(&sql).unwrap();
        prop_assert_eq!(a, b);
    }
}

#[test]
fn pathological_nesting_is_handled() {
    // Moderately nested expressions parse...
    let mut expr = String::from("1");
    for _ in 0..60 {
        expr = format!("({expr})");
    }
    assert!(parse(&format!("select {expr} from t")).is_ok());
    // ...while absurd nesting is rejected with an error instead of a
    // stack overflow.
    let mut deep = String::from("1");
    for _ in 0..5000 {
        deep = format!("({deep})");
    }
    let err = parse(&format!("select {deep} from t")).unwrap_err();
    assert!(err.to_string().contains("nested deeper"), "{err}");
    // Unbalanced versions fail cleanly.
    assert!(parse("select ((((1 from t").is_err());
}

#[test]
fn error_messages_name_the_offender() {
    for (sql, needle) in [
        ("select gapply(select * from g) from t group by k", "relation-valued"),
        ("select a from t where b like 5", "LIKE"),
        ("select case from t", "CASE"),
        ("select a from t order by", "expected"),
        ("select not from t", "keyword"),
    ] {
        let err = parse(sql).unwrap_err().to_string();
        assert!(err.to_lowercase().contains(&needle.to_lowercase()), "{sql}: {err}");
    }
}
