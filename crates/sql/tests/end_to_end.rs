//! End-to-end SQL tests: parse → bind → execute against a small
//! hand-built catalog and against generated TPC-H data, including the
//! paper's own Q1/Q2 in both the classic formulation (§2) and the
//! gapply formulation (§3.1).

use xmlpub_algebra::{Catalog, LogicalPlan, TableDef};
use xmlpub_common::{row, DataType, Field, Relation, Schema, Value};
use xmlpub_engine::execute;
use xmlpub_sql::compile;

fn mini_catalog() -> Catalog {
    let mut cat = Catalog::new();
    let supplier = TableDef::new(
        "supplier",
        Schema::new(vec![
            Field::new("s_suppkey", DataType::Int),
            Field::new("s_name", DataType::Str),
        ]),
    )
    .with_primary_key(&["s_suppkey"]);
    let supplier_data = Relation::new(
        supplier.schema.clone(),
        vec![row![1, "Acme"], row![2, "Globex"], row![3, "Initech"]],
    )
    .unwrap();
    cat.register(supplier, supplier_data).unwrap();

    let partsupp = TableDef::new(
        "partsupp",
        Schema::new(vec![
            Field::new("ps_suppkey", DataType::Int),
            Field::new("ps_partkey", DataType::Int),
        ]),
    )
    .with_primary_key(&["ps_suppkey", "ps_partkey"])
    .with_foreign_key(&["ps_suppkey"], "supplier", &["s_suppkey"])
    .with_foreign_key(&["ps_partkey"], "part", &["p_partkey"]);
    let partsupp_data = Relation::new(
        partsupp.schema.clone(),
        vec![row![1, 10], row![1, 11], row![2, 10], row![2, 12], row![3, 11]],
    )
    .unwrap();
    cat.register(partsupp, partsupp_data).unwrap();

    let part = TableDef::new(
        "part",
        Schema::new(vec![
            Field::new("p_partkey", DataType::Int),
            Field::new("p_name", DataType::Str),
            Field::new("p_retailprice", DataType::Float),
        ]),
    )
    .with_primary_key(&["p_partkey"]);
    let part_data = Relation::new(
        part.schema.clone(),
        vec![row![10, "bolt", 10.0], row![11, "nut", 30.0], row![12, "cam", 100.0]],
    )
    .unwrap();
    cat.register(part, part_data).unwrap();
    cat
}

fn run(cat: &Catalog, sql: &str) -> Relation {
    let plan = compile(sql, cat).unwrap_or_else(|e| panic!("compile failed: {e}\n{sql}"));
    execute(&plan, cat).unwrap_or_else(|e| panic!("execute failed: {e}\n{sql}"))
}

#[test]
fn simple_select_where() {
    let cat = mini_catalog();
    let r = run(&cat, "select p_name from part where p_retailprice > 20");
    let expected = Relation::new(r.schema().clone(), vec![row!["nut"], row!["cam"]]).unwrap();
    assert!(r.bag_eq(&expected), "{}", r.bag_diff(&expected));
}

#[test]
fn qualified_columns_and_aliases() {
    let cat = mini_catalog();
    let r = run(
        &cat,
        "select s.s_name, p.p_name from supplier s, partsupp ps, part p \
         where s.s_suppkey = ps.ps_suppkey and ps.ps_partkey = p.p_partkey \
         and p.p_retailprice >= 100",
    );
    let expected = Relation::new(r.schema().clone(), vec![row!["Globex", "cam"]]).unwrap();
    assert!(r.bag_eq(&expected), "{}", r.bag_diff(&expected));
}

#[test]
fn join_on_syntax_gets_fk_annotation() {
    let cat = mini_catalog();
    let plan = compile("select s_name from partsupp join supplier on ps_suppkey = s_suppkey", &cat)
        .unwrap();
    let mut found_fk = false;
    fn walk(p: &LogicalPlan, found: &mut bool) {
        if let LogicalPlan::Join { fk_left_to_right: true, .. } = p {
            *found = true;
        }
        for c in p.children() {
            walk(c, found);
        }
    }
    walk(&plan, &mut found_fk);
    assert!(found_fk, "{}", plan.explain());
}

#[test]
fn comma_join_distributes_where_onto_joins() {
    let cat = mini_catalog();
    let plan =
        compile("select p_name from partsupp, part where ps_partkey = p_partkey", &cat).unwrap();
    // The equi conjunct must live in the Join predicate, not a top Select.
    let mut join_pred_nontrivial = false;
    fn walk(p: &LogicalPlan, found: &mut bool) {
        if let LogicalPlan::Join { predicate, .. } = p {
            if !matches!(predicate, xmlpub_expr::Expr::Literal(_)) {
                *found = true;
            }
        }
        for c in p.children() {
            walk(c, found);
        }
    }
    walk(&plan, &mut join_pred_nontrivial);
    assert!(join_pred_nontrivial, "{}", plan.explain());
    // And the comma-join also detects the FK (partsupp → part).
    let mut fk = false;
    fn walk_fk(p: &LogicalPlan, found: &mut bool) {
        if let LogicalPlan::Join { fk_left_to_right: true, .. } = p {
            *found = true;
        }
        for c in p.children() {
            walk_fk(c, found);
        }
    }
    walk_fk(&plan, &mut fk);
    assert!(fk, "{}", plan.explain());
}

#[test]
fn group_by_aggregates_and_having() {
    let cat = mini_catalog();
    let r = run(
        &cat,
        "select ps_suppkey, count(*) as n, avg(p_retailprice) as ap \
         from partsupp, part where ps_partkey = p_partkey \
         group by ps_suppkey having count(*) > 1 order by ps_suppkey",
    );
    let expected =
        Relation::new(r.schema().clone(), vec![row![1, 2, 20.0], row![2, 2, 55.0]]).unwrap();
    assert!(r.bag_eq(&expected), "{}", r.bag_diff(&expected));
    // ORDER BY applied: first row is supplier 1.
    assert_eq!(r.rows()[0].value(0), &Value::Int(1));
}

#[test]
fn scalar_aggregate_without_group_by() {
    let cat = mini_catalog();
    let r = run(&cat, "select count(*), min(p_retailprice) from part");
    assert_eq!(r.rows(), &[row![3, 10.0]]);
}

#[test]
fn distinct_and_union() {
    let cat = mini_catalog();
    let r = run(&cat, "select distinct ps_suppkey from partsupp");
    assert_eq!(r.len(), 3);
    let r = run(
        &cat,
        "select p_name from part where p_retailprice > 50 \
         union all select s_name from supplier where s_suppkey = 1",
    );
    let expected = Relation::new(r.schema().clone(), vec![row!["cam"], row!["Acme"]]).unwrap();
    assert!(r.bag_eq(&expected), "{}", r.bag_diff(&expected));
    // Plain UNION deduplicates.
    let r = run(&cat, "select ps_suppkey from partsupp union select ps_suppkey from partsupp");
    assert_eq!(r.len(), 3);
}

#[test]
fn correlated_scalar_subquery() {
    // Parts priced above the average price of the parts their supplier
    // supplies — the classic correlated formulation from the paper's Q2.
    let cat = mini_catalog();
    let r = run(
        &cat,
        "select ps_suppkey, p_name from partsupp ps1, part \
         where p_partkey = ps_partkey and p_retailprice >= \
           (select avg(p_retailprice) from partsupp, part \
            where p_partkey = ps_partkey and ps_suppkey = ps1.ps_suppkey) \
         order by ps_suppkey",
    );
    // supplier 1: avg(10,30)=20 → nut; supplier 2: avg(10,100)=55 → cam;
    // supplier 3: avg(30)=30 → nut.
    let expected =
        Relation::new(r.schema().clone(), vec![row![1, "nut"], row![2, "cam"], row![3, "nut"]])
            .unwrap();
    assert!(r.bag_eq(&expected), "{}", r.bag_diff(&expected));
}

#[test]
fn exists_and_not_exists() {
    let cat = mini_catalog();
    let r = run(
        &cat,
        "select s_name from supplier where exists \
         (select 1 from partsupp, part where ps_partkey = p_partkey \
          and ps_suppkey = s_suppkey and p_retailprice > 50)",
    );
    assert_eq!(r.rows(), &[row!["Globex"]]);
    let r = run(
        &cat,
        "select s_name from supplier where not exists \
         (select 1 from partsupp, part where ps_partkey = p_partkey \
          and ps_suppkey = s_suppkey and p_retailprice > 50)",
    );
    let expected = Relation::new(r.schema().clone(), vec![row!["Acme"], row!["Initech"]]).unwrap();
    assert!(r.bag_eq(&expected), "{}", r.bag_diff(&expected));
}

#[test]
fn derived_tables_resolve_by_alias() {
    let cat = mini_catalog();
    let r = run(
        &cat,
        "select tmp.k, tmp.n from \
         (select ps_suppkey, count(*) from partsupp group by ps_suppkey) \
         as tmp(k, n) where tmp.n > 1 order by tmp.k",
    );
    let expected = Relation::new(r.schema().clone(), vec![row![1, 2], row![2, 2]]).unwrap();
    assert!(r.bag_eq(&expected), "{}", r.bag_diff(&expected));
}

#[test]
fn paper_q1_gapply_formulation() {
    let cat = mini_catalog();
    let r = run(
        &cat,
        "select gapply(
             select p_name, p_retailprice, null from tmpSupp
             union all
             select null, null, avg(p_retailprice) from tmpSupp
         ) as (p_name, p_retailprice, avgprice)
         from partsupp, part
         where ps_partkey = p_partkey
         group by ps_suppkey : tmpSupp",
    );
    let n = Value::Null;
    let expected = Relation::new(
        r.schema().clone(),
        vec![
            row![1, "bolt", 10.0, n.clone()],
            row![1, "nut", 30.0, n.clone()],
            row![1, n.clone(), n.clone(), 20.0],
            row![2, "bolt", 10.0, n.clone()],
            row![2, "cam", 100.0, n.clone()],
            row![2, n.clone(), n.clone(), 55.0],
            row![3, "nut", 30.0, n.clone()],
            row![3, n.clone(), n.clone(), 30.0],
        ],
    )
    .unwrap();
    assert!(r.bag_eq(&expected), "{}", r.bag_diff(&expected));
    // Output columns carry the AS names.
    assert_eq!(r.schema().field(1).name, "p_name");
    assert_eq!(r.schema().field(3).name, "avgprice");
}

#[test]
fn paper_q2_gapply_formulation() {
    let cat = mini_catalog();
    let r = run(
        &cat,
        "select gapply(
             select count(*), null from tmpSupp
             where p_retailprice >= (select avg(p_retailprice) from tmpSupp)
             union all
             select null, count(*) from tmpSupp
             where p_retailprice < (select avg(p_retailprice) from tmpSupp)
         ) as (above, below)
         from partsupp, part
         where ps_partkey = p_partkey
         group by ps_suppkey : tmpSupp",
    );
    let n = Value::Null;
    let expected = Relation::new(
        r.schema().clone(),
        vec![
            row![1, 1, n.clone()], // supplier 1: nut(30) >= 20
            row![1, n.clone(), 1], // bolt(10) < 20
            row![2, 1, n.clone()], // cam(100) >= 55
            row![2, n.clone(), 1], // bolt(10) < 55
            row![3, 1, n.clone()], // nut(30) >= 30
            row![3, n.clone(), 0],
        ],
    )
    .unwrap();
    assert!(r.bag_eq(&expected), "{}", r.bag_diff(&expected));
}

#[test]
fn classic_q1_and_gapply_q1_agree() {
    // The §2 sorted-outer-union formulation and the §3.1 gapply
    // formulation must produce the same bag of rows.
    let cat = mini_catalog();
    let classic = run(
        &cat,
        "(select ps_suppkey, p_name, p_retailprice, null from partsupp, part \
          where ps_partkey = p_partkey \
          union all \
          select ps_suppkey, null, null, avg(p_retailprice) \
          from partsupp, part where ps_partkey = p_partkey group by ps_suppkey) \
         order by ps_suppkey",
    );
    let gapply = run(
        &cat,
        "select gapply(
             select p_name, p_retailprice, null from g
             union all
             select null, null, avg(p_retailprice) from g
         ) from partsupp, part where ps_partkey = p_partkey \
         group by ps_suppkey : g",
    );
    assert!(classic.bag_eq(&gapply), "{}", classic.bag_diff(&gapply));
}

#[test]
fn gapply_group_selection_query() {
    // §4.2's exists-style query in gapply syntax: suppliers supplying
    // some expensive part, returning the whole group.
    let cat = mini_catalog();
    let r = run(
        &cat,
        "select gapply(select * from g where exists \
             (select 1 from g where p_retailprice > 50)) \
         from partsupp, part where ps_partkey = p_partkey \
         group by ps_suppkey : g",
    );
    // Only supplier 2 has a part > 50; its whole 2-row group returns.
    assert_eq!(r.len(), 2);
    assert!(r.rows().iter().all(|t| t.value(0) == &Value::Int(2)));
}

#[test]
fn bind_errors_are_informative() {
    let cat = mini_catalog();
    let err = compile("select nope from part", &cat).unwrap_err().to_string();
    assert!(err.contains("no such column 'nope'"), "{err}");
    let err = compile("select p_name from ghost", &cat).unwrap_err().to_string();
    assert!(err.contains("no such table"), "{err}");
    let err = compile("select p_name from part, part", &cat).unwrap_err().to_string();
    assert!(err.contains("duplicate table alias"), "{err}");
    let err = compile("select p_name from part group by p_partkey", &cat).unwrap_err().to_string();
    assert!(err.contains("must appear in GROUP BY"), "{err}");
    let err = compile("select avg(p_retailprice) from part where avg(p_retailprice) > 1", &cat)
        .unwrap_err()
        .to_string();
    assert!(err.contains("aggregate"), "{err}");
}

#[test]
fn order_by_position_and_desc() {
    let cat = mini_catalog();
    let r = run(&cat, "select p_name, p_retailprice from part order by 2 desc");
    assert_eq!(r.rows()[0].value(0), &Value::str("cam"));
    let err = compile("select p_name from part order by 9", &cat).unwrap_err();
    assert!(err.to_string().contains("out of range"), "{err}");
}

#[test]
fn case_and_like_and_in() {
    let cat = mini_catalog();
    let r = run(
        &cat,
        "select p_name, case when p_retailprice > 50 then 'expensive' \
         else 'cheap' end as bucket from part where p_name like '%t' \
         and p_partkey in (10, 11, 999)",
    );
    let expected =
        Relation::new(r.schema().clone(), vec![row!["bolt", "cheap"], row!["nut", "cheap"]])
            .unwrap();
    assert!(r.bag_eq(&expected), "{}", r.bag_diff(&expected));
}

#[test]
fn works_on_generated_tpch() {
    let cat = xmlpub_tpch::TpchGenerator::with_scale(0.001).core_catalog().unwrap();
    let r = run(
        &cat,
        "select gapply(select count(*), avg(p_retailprice) from g) as (n, ap) \
         from partsupp, part where ps_partkey = p_partkey \
         group by ps_suppkey : g",
    );
    // 10 suppliers at SF 0.001, each supplied ≥ 1 part.
    assert_eq!(r.len(), 10);
    for t in r.rows() {
        assert!(t.value(1).as_int().unwrap() > 0);
        assert!(t.value(2).as_f64().unwrap() > 0.0);
    }
}

#[test]
fn scalar_subquery_in_select_list() {
    let cat = mini_catalog();
    let r = run(
        &cat,
        "select s_name, (select count(*) from partsupp where ps_suppkey = s_suppkey) \
         as nparts from supplier order by s_name",
    );
    let expected = Relation::new(
        r.schema().clone(),
        vec![row!["Acme", 2], row!["Globex", 2], row!["Initech", 1]],
    )
    .unwrap();
    assert!(r.bag_eq(&expected), "{}", r.bag_diff(&expected));
}

#[test]
fn group_by_without_aggregates_deduplicates_keys() {
    let cat = mini_catalog();
    let r = run(&cat, "select ps_suppkey from partsupp group by ps_suppkey");
    assert_eq!(r.len(), 3);
}

#[test]
fn having_without_matching_groups_is_empty() {
    let cat = mini_catalog();
    let r = run(
        &cat,
        "select ps_suppkey, count(*) from partsupp group by ps_suppkey \
         having count(*) > 99",
    );
    assert!(r.is_empty());
}

#[test]
fn between_and_not_like() {
    let cat = mini_catalog();
    let r = run(
        &cat,
        "select p_name from part where p_retailprice between 10 and 50 \
         and p_name not like 'b%'",
    );
    assert_eq!(r.rows(), &[row!["nut"]]);
}

#[test]
fn union_all_inside_pgq_with_three_branches() {
    let cat = mini_catalog();
    let r = run(
        &cat,
        "select gapply(
             select min(p_retailprice), null, null from g
             union all
             select null, max(p_retailprice), null from g
             union all
             select null, null, avg(p_retailprice) from g
         ) as (lo, hi, mean)
         from partsupp, part where ps_partkey = p_partkey
         group by ps_suppkey : g",
    );
    // 3 rows per supplier.
    assert_eq!(r.len(), 9);
}

#[test]
fn gapply_rejects_having_and_distinct() {
    let cat = mini_catalog();
    let err = compile(
        "select gapply(select * from g) from partsupp group by ps_suppkey : g \
         having count(*) > 1",
        &cat,
    )
    .unwrap_err();
    assert!(err.to_string().contains("HAVING"), "{err}");
    let err = compile(
        "select distinct gapply(select * from g) from partsupp group by ps_suppkey : g",
        &cat,
    )
    .unwrap_err();
    assert!(err.to_string().contains("DISTINCT"), "{err}");
}

#[test]
fn gapply_as_rename_arity_checked() {
    let cat = mini_catalog();
    let err = compile(
        "select gapply(select p_name from g) as (a, b) \
         from partsupp, part where ps_partkey = p_partkey group by ps_suppkey : g",
        &cat,
    )
    .unwrap_err();
    assert!(err.to_string().contains("returns 1"), "{err}");
}

#[test]
fn binding_variable_shadows_catalog_tables() {
    // A `: part` binding makes `from part` inside the PGQ read the GROUP,
    // not the base table — the binding wins, as §3.1's semantics demand.
    let cat = mini_catalog();
    let r = run(
        &cat,
        "select gapply(select count(*) from part) as (n) \
         from partsupp group by ps_suppkey : part",
    );
    // Counts per supplier from partsupp (2, 2, 1), not 3 = |part| rows.
    let counts: Vec<i64> = r.rows().iter().map(|t| t.value(1).as_int().unwrap()).collect();
    let mut sorted = counts.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, vec![1, 2, 2]);
}
