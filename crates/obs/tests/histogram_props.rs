//! Property tests for the histogram fold: `merge` must behave exactly
//! like `ExecStats::merge` does for the engine — a commutative,
//! associative monoid with the empty snapshot as identity — and any
//! partitioning of a sample stream across recorders must fold back to
//! the serial result. This is what makes per-worker recording under
//! parallel GApply order-independent.

use proptest::prelude::*;
use xmlpub_obs::{Histogram, HistogramSnapshot};

/// Latencies spanning every interesting bucket: zero, the power-of-two
/// boundaries, and huge outliers that land in the clamp bucket.
fn sample_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        1u64..16,
        1u64..1_000_000,
        (0u32..63).prop_map(|i| 1u64 << i),
        (0u32..63).prop_map(|i| (1u64 << i).saturating_sub(1)),
        Just(u64::MAX),
    ]
}

fn record_all(samples: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &s in samples {
        h.record(s);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any split point: recording the two halves separately and merging
    /// equals recording the whole stream serially.
    #[test]
    fn merge_equals_serial_recording(
        samples in proptest::collection::vec(sample_strategy(), 0..64),
        split in 0usize..65,
    ) {
        let split = split.min(samples.len());
        let serial = record_all(&samples);
        let mut left = record_all(&samples[..split]);
        let right = record_all(&samples[split..]);
        left.merge(&right);
        prop_assert_eq!(left, serial);
    }

    /// Arbitrary interleaving: scatter the stream over k recorders by a
    /// per-sample assignment, fold the snapshots in assignment order —
    /// still identical to serial.
    #[test]
    fn scattered_recording_folds_to_serial(
        pairs in proptest::collection::vec((sample_strategy(), 0usize..8), 0..96),
    ) {
        let workers: Vec<Histogram> = (0..8).map(|_| Histogram::new()).collect();
        for &(s, w) in &pairs {
            workers[w].record(s);
        }
        let mut folded = HistogramSnapshot::empty();
        for w in &workers {
            folded.merge(&w.snapshot());
        }
        let serial = record_all(&pairs.iter().map(|&(s, _)| s).collect::<Vec<_>>());
        prop_assert_eq!(folded, serial);
    }

    #[test]
    fn merge_is_commutative(
        a in proptest::collection::vec(sample_strategy(), 0..32),
        b in proptest::collection::vec(sample_strategy(), 0..32),
    ) {
        let (sa, sb) = (record_all(&a), record_all(&b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(sample_strategy(), 0..32),
        b in proptest::collection::vec(sample_strategy(), 0..32),
        c in proptest::collection::vec(sample_strategy(), 0..32),
    ) {
        let (sa, sb, sc) = (record_all(&a), record_all(&b), record_all(&c));
        // (a ⊕ b) ⊕ c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        // a ⊕ (b ⊕ c)
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// The empty snapshot is the identity on both sides.
    #[test]
    fn empty_is_identity(a in proptest::collection::vec(sample_strategy(), 0..32)) {
        let sa = record_all(&a);
        let mut left = HistogramSnapshot::empty();
        left.merge(&sa);
        prop_assert_eq!(&left, &sa);
        let mut right = sa.clone();
        right.merge(&HistogramSnapshot::empty());
        prop_assert_eq!(&right, &sa);
    }

    /// Derived statistics survive the fold: count and sum of a merge
    /// equal the (saturating) sums, and percentiles stay ordered.
    #[test]
    fn derived_stats_are_consistent(
        a in proptest::collection::vec(sample_strategy(), 1..32),
        b in proptest::collection::vec(sample_strategy(), 1..32),
    ) {
        let (sa, sb) = (record_all(&a), record_all(&b));
        let mut m = sa.clone();
        m.merge(&sb);
        prop_assert_eq!(m.count, sa.count + sb.count);
        prop_assert_eq!(m.sum_us, sa.sum_us.saturating_add(sb.sum_us));
        let (p50, p95, p99) =
            (m.percentile_us(50.0), m.percentile_us(95.0), m.percentile_us(99.0));
        prop_assert!(p50 <= p95 && p95 <= p99, "p50={p50} p95={p95} p99={p99}");
    }
}
