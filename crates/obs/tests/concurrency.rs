//! Concurrency stress for the metrics registry: many threads hammering
//! the same counters, gauges and histograms must lose nothing. The
//! recording path is relaxed atomics, so these tests are the evidence
//! that "relaxed" is still exact for pure counting.

use std::sync::Arc;

use xmlpub_obs::{Histogram, HistogramSnapshot, MetricsHandle, Registry};

const THREADS: usize = 8;
const OPS: u64 = 10_000;

#[test]
fn concurrent_increments_are_never_lost() {
    let registry = Arc::new(Registry::new());
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let registry = Arc::clone(&registry);
            s.spawn(move || {
                // Half the threads resolve once and hammer the atomic
                // (the hot-path idiom); the other half resolve by name
                // every time (the worst case for the registration lock).
                if t % 2 == 0 {
                    let c = registry.counter("stress.ops");
                    let h = registry.histogram("stress.us");
                    for i in 0..OPS {
                        c.add(1);
                        h.record(i % 1024);
                    }
                } else {
                    for i in 0..OPS {
                        registry.counter("stress.ops").add(1);
                        registry.histogram("stress.us").record(i % 1024);
                    }
                }
                registry.gauge("stress.live").add(1);
                registry.gauge("stress.live").add(-1);
            });
        }
    });
    let snap = registry.snapshot();
    let total = THREADS as u64 * OPS;
    assert_eq!(snap.counter("stress.ops"), Some(total));
    let h = snap.histogram("stress.us").unwrap();
    assert_eq!(h.count, total);
    // Sum is exact: each thread contributes Σ(i % 1024) for i in 0..OPS.
    let per_thread: u64 = (0..OPS).map(|i| i % 1024).sum();
    assert_eq!(h.sum_us, per_thread * THREADS as u64);
    assert_eq!(snap.gauge("stress.live"), Some(0));
}

#[test]
fn concurrent_histogram_matches_serial_reference() {
    let h = Arc::new(Histogram::new());
    // Deterministic but bucket-diverse sample stream, partitioned round-
    // robin across threads.
    let samples: Vec<u64> = (0..(THREADS as u64 * 4_096)).map(|i| (i * 37) % 100_000).collect();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let h = Arc::clone(&h);
            let samples = &samples;
            s.spawn(move || {
                for &v in samples.iter().skip(t).step_by(THREADS) {
                    h.record(v);
                }
            });
        }
    });
    let mut serial = HistogramSnapshot::empty();
    for &v in &samples {
        serial.record(v);
    }
    assert_eq!(h.snapshot(), serial);
}

#[test]
fn handles_share_one_registry_across_threads() {
    let handle = MetricsHandle::new_registry();
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let handle = handle.clone();
            s.spawn(move || {
                for _ in 0..OPS {
                    handle.add("shared.count", 1);
                }
                handle.record_us("shared.us", 42);
            });
        }
    });
    let snap = handle.snapshot().unwrap();
    assert_eq!(snap.counter("shared.count"), Some(THREADS as u64 * OPS));
    assert_eq!(snap.histogram("shared.us").map(|h| h.count), Some(THREADS as u64));
}
