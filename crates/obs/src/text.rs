//! Text exposition for metrics snapshots: a line-oriented, versioned,
//! deterministic format that round-trips losslessly.
//!
//! ```text
//! # xmlpub metrics v1
//! counter server.queries_total 42
//! gauge server.sessions_active 3
//! histogram session.exec_us count=10 sum_us=1234 buckets=7:9,13:1
//! ```
//!
//! Lines are sorted by kind then name (the registry snapshot is
//! `BTreeMap`-backed), so the output is byte-stable for a given state —
//! the golden-report tests depend on that. Histograms carry their full
//! sparse bucket vector, so a consumer (`xmlpub-loadgen`) can
//! reconstruct a [`HistogramSnapshot`] and compute percentiles on the
//! *server's* recordings instead of re-timing client-side.

use crate::histogram::{HistogramSnapshot, BUCKETS};
use crate::registry::MetricsSnapshot;

/// Format version header; [`parse_text`] rejects anything else.
pub const HEADER: &str = "# xmlpub metrics v1";

/// One parsed exposition line.
#[derive(Debug, Clone, PartialEq)]
pub enum TextEntry {
    /// `counter <name> <value>`
    Counter {
        /// Metric name.
        name: String,
        /// Counter value.
        value: u64,
    },
    /// `gauge <name> <value>`
    Gauge {
        /// Metric name.
        name: String,
        /// Gauge value.
        value: i64,
    },
    /// `histogram <name> count=.. sum_us=.. buckets=..`
    Histogram {
        /// Metric name.
        name: String,
        /// Reconstructed histogram state (boxed: the bucket array
        /// dwarfs the other variants).
        snapshot: Box<HistogramSnapshot>,
    },
}

/// Render a snapshot in exposition format (trailing newline included).
pub fn render_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    for (name, value) in &snap.counters {
        out.push_str("counter ");
        out.push_str(name);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }
    for (name, value) in &snap.gauges {
        out.push_str("gauge ");
        out.push_str(name);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }
    for (name, h) in &snap.histograms {
        out.push_str("histogram ");
        out.push_str(name);
        out.push_str(" count=");
        out.push_str(&h.count.to_string());
        out.push_str(" sum_us=");
        out.push_str(&h.sum_us.to_string());
        out.push_str(" buckets=");
        let mut any = false;
        for (i, &c) in h.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if any {
                out.push(',');
            }
            out.push_str(&i.to_string());
            out.push(':');
            out.push_str(&c.to_string());
            any = true;
        }
        if !any {
            out.push('-');
        }
        out.push('\n');
    }
    out
}

/// Parse exposition text back into a snapshot. Strict: unknown line
/// kinds, malformed fields, or a missing/old header are errors, so
/// format drift fails loudly in CI instead of silently parsing to
/// nothing.
pub fn parse_text(text: &str) -> Result<MetricsSnapshot, String> {
    let mut lines = text.lines();
    match lines.next() {
        Some(h) if h == HEADER => {}
        Some(h) => return Err(format!("unexpected header: {h:?}")),
        None => return Err("empty metrics text".into()),
    }
    let mut snap = MetricsSnapshot::default();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(line)? {
            TextEntry::Counter { name, value } => {
                snap.counters.insert(name, value);
            }
            TextEntry::Gauge { name, value } => {
                snap.gauges.insert(name, value);
            }
            TextEntry::Histogram { name, snapshot } => {
                snap.histograms.insert(name, *snapshot);
            }
        }
    }
    Ok(snap)
}

/// Parse a single exposition line.
pub fn parse_line(line: &str) -> Result<TextEntry, String> {
    let mut parts = line.split_whitespace();
    let kind = parts.next().ok_or("empty line")?;
    let name = parts.next().ok_or_else(|| format!("missing name in {line:?}"))?.to_string();
    match kind {
        "counter" => {
            let value = parts
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| format!("bad counter value in {line:?}"))?;
            Ok(TextEntry::Counter { name, value })
        }
        "gauge" => {
            let value = parts
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| format!("bad gauge value in {line:?}"))?;
            Ok(TextEntry::Gauge { name, value })
        }
        "histogram" => {
            let mut snapshot = HistogramSnapshot::empty();
            for field in parts {
                let (key, value) =
                    field.split_once('=').ok_or_else(|| format!("bad field {field:?}"))?;
                match key {
                    "count" => {
                        snapshot.count =
                            value.parse().map_err(|_| format!("bad count in {line:?}"))?;
                    }
                    "sum_us" => {
                        snapshot.sum_us =
                            value.parse().map_err(|_| format!("bad sum_us in {line:?}"))?;
                    }
                    "buckets" => {
                        if value == "-" {
                            continue;
                        }
                        for pair in value.split(',') {
                            let (idx, cnt) = pair
                                .split_once(':')
                                .ok_or_else(|| format!("bad bucket {pair:?}"))?;
                            let idx: usize =
                                idx.parse().map_err(|_| format!("bad bucket index {pair:?}"))?;
                            if idx >= BUCKETS {
                                return Err(format!("bucket index {idx} out of range"));
                            }
                            snapshot.buckets[idx] =
                                cnt.parse().map_err(|_| format!("bad bucket count {pair:?}"))?;
                        }
                    }
                    other => return Err(format!("unknown histogram field {other:?}")),
                }
            }
            Ok(TextEntry::Histogram { name, snapshot: Box::new(snapshot) })
        }
        other => Err(format!("unknown line kind {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample() -> MetricsSnapshot {
        let r = Registry::new();
        r.counter("server.queries_total").add(42);
        r.counter("cache.hits").add(7);
        // The transport layer's names (dotted segments, a gauge that can
        // sit at zero) must survive the round trip like any others.
        r.counter("server.net.connections.opened").add(5);
        r.counter("server.net.bytes_out").add(123_456_789);
        let _ = r.gauge("server.net.connections.active");
        r.gauge("server.sessions_active").set(3);
        let h = r.histogram("session.exec_us");
        h.record(100);
        h.record(100);
        h.record(9_000);
        r.snapshot()
    }

    #[test]
    fn render_is_deterministic_and_sorted() {
        let text = render_text(&sample());
        assert_eq!(text, render_text(&sample()));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], HEADER);
        assert_eq!(lines[1], "counter cache.hits 7");
        assert_eq!(lines[2], "counter server.net.bytes_out 123456789");
        assert_eq!(lines[3], "counter server.net.connections.opened 5");
        assert_eq!(lines[4], "counter server.queries_total 42");
        assert_eq!(lines[5], "gauge server.net.connections.active 0");
        assert_eq!(lines[6], "gauge server.sessions_active 3");
        assert!(lines[7].starts_with("histogram session.exec_us count=3 sum_us=9200 buckets="));
    }

    #[test]
    fn round_trip_is_lossless() {
        let snap = sample();
        let parsed = parse_text(&render_text(&snap)).unwrap();
        assert_eq!(parsed, snap);
        // Percentiles computable on the parsed side.
        let h = parsed.histogram("session.exec_us").unwrap();
        assert_eq!(h.percentile_us(50.0), 127);
        // The net-layer names come back exactly, including the
        // zero-valued gauge (`xmlpub-loadgen --verify` reads these).
        assert_eq!(parsed.counter("server.net.connections.opened"), Some(5));
        assert_eq!(parsed.counter("server.net.bytes_out"), Some(123_456_789));
        assert_eq!(parsed.gauge("server.net.connections.active"), Some(0));
    }

    #[test]
    fn empty_histogram_round_trips() {
        let r = Registry::new();
        let _ = r.histogram("empty");
        let snap = r.snapshot();
        let text = render_text(&snap);
        assert!(text.contains("buckets=-"));
        assert_eq!(parse_text(&text).unwrap(), snap);
    }

    #[test]
    fn strict_parsing_rejects_drift() {
        assert!(parse_text("").is_err());
        assert!(parse_text("# xmlpub metrics v2\n").is_err());
        assert!(parse_text("# xmlpub metrics v1\nfrobnicator x 1\n").is_err());
        assert!(parse_text("# xmlpub metrics v1\ncounter x notanumber\n").is_err());
        assert!(
            parse_text("# xmlpub metrics v1\nhistogram h count=1 sum_us=2 buckets=99:1\n").is_err()
        );
    }
}
