//! A deliberately tiny JSON layer: enough to serialize span records as
//! JSON lines and to parse them back in tests and tools. The workspace
//! has no serde; spans are flat objects with string/number leaves, so a
//! ~hundred-line recursive-descent parser covers everything we emit
//! (and rejects what we don't, loudly, rather than guessing).

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (we only ever emit non-negative integers, but parse
    /// the general shape).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a u64, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Append `s` as a JSON string literal (quotes included) to `out`.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number '{text}' at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs never appear in our output;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\nd\u{1}é");
        let parsed = parse(&s).unwrap();
        assert_eq!(parsed.as_str(), Some("a\"b\\c\nd\u{1}é"));
    }

    #[test]
    fn parses_span_shaped_objects() {
        let v = parse(
            r#"{"id":3,"parent":1,"name":"optimize","start_us":12,"dur_us":40,"attrs":{"rule":"to_groupby"}}"#,
        )
        .unwrap();
        assert_eq!(v.get("id").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(v.get("name").and_then(JsonValue::as_str), Some("optimize"));
        assert_eq!(
            v.get("attrs").and_then(|a| a.get("rule")).and_then(JsonValue::as_str),
            Some("to_groupby")
        );
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("{\"a\":").is_err());
        assert!(parse("[1,2").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn parses_arrays_and_literals() {
        let v = parse(" [true, false, null, -2.5] ").unwrap();
        assert_eq!(
            v,
            JsonValue::Arr(vec![
                JsonValue::Bool(true),
                JsonValue::Bool(false),
                JsonValue::Null,
                JsonValue::Num(-2.5),
            ])
        );
    }
}
