//! Fixed-bucket latency histograms with order-independent merge.
//!
//! Buckets are powers of two over microseconds: bucket 0 holds the
//! value 0, bucket *i* (i ≥ 1) holds values in `[2^(i-1), 2^i)`, and the
//! last bucket absorbs everything larger. Fixed boundaries are the whole
//! point: merging two histograms is a field-wise saturating sum, which
//! makes merge **associative, commutative and exactly equivalent to
//! serial recording** for any interleaving of samples — the property the
//! proptest suite pins, and the reason per-worker recordings fold into
//! the same totals a single-threaded run would produce (mirroring
//! `ExecStats::merge` in the engine).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets. `2^38` µs ≈ 3.2 days; anything slower lands in
/// the overflow bucket.
pub const BUCKETS: usize = 40;

/// The bucket a microsecond value lands in.
#[inline]
fn bucket_of(us: u64) -> usize {
    ((u64::BITS - us.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of a bucket (used as the percentile estimate).
fn bucket_upper(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else if idx >= 63 {
        u64::MAX
    } else {
        (1u64 << idx) - 1
    }
}

/// A concurrently recordable histogram: every slot is a relaxed atomic,
/// so recording is lock-free and threads never serialize against each
/// other. Totals are exact (counts are adds, not samples); only the
/// percentile *estimates* are quantized to bucket boundaries.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one sample (microseconds).
    #[inline]
    pub fn record(&self, us: u64) {
        self.buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturating: fetch_update never loses the increment race and a
        // pathological sum pegs at MAX instead of wrapping.
        let _ = self
            .sum_us
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| Some(s.saturating_add(us)));
    }

    /// A point-in-time copy of the counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot::empty();
        for (i, b) in self.buckets.iter().enumerate() {
            snap.buckets[i] = b.load(Ordering::Relaxed);
        }
        snap.count = self.count.load(Ordering::Relaxed);
        snap.sum_us = self.sum_us.load(Ordering::Relaxed);
        snap
    }
}

/// A plain (non-atomic) copy of a histogram's state, closed under
/// [`merge`](Self::merge).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts.
    pub buckets: [u64; BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Saturating sum of all samples (µs).
    pub sum_us: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// The empty (identity) snapshot.
    pub fn empty() -> Self {
        HistogramSnapshot { buckets: [0; BUCKETS], count: 0, sum_us: 0 }
    }

    /// Record a sample serially (the reference semantics the atomic
    /// histogram and any merge order must reproduce).
    pub fn record(&mut self, us: u64) {
        self.buckets[bucket_of(us)] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
    }

    /// Fold `other` into `self`: field-wise saturating sum. Associative
    /// and commutative by construction, with [`empty`](Self::empty) as
    /// identity.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
    }

    /// Mean sample value, 0.0 when empty.
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Nearest-rank percentile estimate (`p` in 0–100), quantized to the
    /// containing bucket's upper bound. 0 when empty.
    pub fn percentile_us(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(BUCKETS - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
    }

    #[test]
    fn atomic_and_serial_agree() {
        let h = Histogram::new();
        let mut s = HistogramSnapshot::empty();
        for v in [0u64, 1, 7, 900, 1024, 1_000_000, u64::MAX] {
            h.record(v);
            s.record(v);
        }
        assert_eq!(h.snapshot(), s);
    }

    #[test]
    fn percentiles_quantize_to_bucket_upper_bounds() {
        let mut s = HistogramSnapshot::empty();
        for _ in 0..90 {
            s.record(100); // bucket [64,128) → upper 127
        }
        for _ in 0..10 {
            s.record(5_000); // bucket [4096,8192) → upper 8191
        }
        assert_eq!(s.percentile_us(50.0), 127);
        assert_eq!(s.percentile_us(95.0), 8191);
        assert_eq!(HistogramSnapshot::empty().percentile_us(99.0), 0);
    }

    #[test]
    fn merge_is_sum() {
        let mut a = HistogramSnapshot::empty();
        let mut b = HistogramSnapshot::empty();
        a.record(10);
        b.record(10);
        b.record(999);
        let mut merged = a.clone();
        merged.merge(&b);
        let mut serial = HistogramSnapshot::empty();
        for v in [10, 10, 999] {
            serial.record(v);
        }
        assert_eq!(merged, serial);
        // Identity.
        let mut with_id = serial.clone();
        with_id.merge(&HistogramSnapshot::empty());
        assert_eq!(with_id, serial);
    }

    #[test]
    fn sum_saturates_instead_of_wrapping() {
        let mut s = HistogramSnapshot::empty();
        s.record(u64::MAX);
        s.record(u64::MAX);
        assert_eq!(s.sum_us, u64::MAX);
        assert_eq!(s.count, 2);
    }
}
