//! Structured query-lifecycle spans, serialized as JSON lines.
//!
//! A span is `{id, parent, name, start_us, dur_us, attrs}`; the tracer
//! hands out [`SpanGuard`]s that emit on drop, so the common call-site
//! shape is `let _sp = tracer.span("optimize", parent, &[...]);` and the
//! duration is measured by scope. Spans that are reconstructed after the
//! fact (per-operator timings synthesized from `Profiled` slots) go
//! through [`TraceHandle::emit_span`] with explicit timestamps.
//!
//! Cost model: a **disabled** handle makes `span()` return an inert
//! guard after one branch — no allocation, no clock read. An **enabled**
//! handle formats the line locally and takes the sink lock only for the
//! final `write_all`, so concurrent workers' lines never interleave
//! mid-record.

use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::{self, escape_into, JsonValue};
use crate::time::saturating_us_since;

/// Span identifier. `0` means "no span" and is used as the root parent.
pub type SpanId = u64;

struct TraceInner {
    enabled: AtomicBool,
    epoch: Instant,
    next_id: AtomicU64,
    sink: Mutex<Box<dyn Write + Send>>,
}

/// Cheap, cloneable tracer capability. `Default` is disabled.
#[derive(Clone, Default)]
pub struct TraceHandle(Option<Arc<TraceInner>>);

impl TraceHandle {
    /// A disabled handle (the `Default`).
    pub fn disabled() -> Self {
        TraceHandle(None)
    }

    /// A live tracer writing JSON lines into `sink`.
    pub fn new(sink: Box<dyn Write + Send>) -> Self {
        TraceHandle(Some(Arc::new(TraceInner {
            enabled: AtomicBool::new(true),
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            sink: Mutex::new(sink),
        })))
    }

    /// Is the tracer currently emitting?
    #[inline]
    pub fn enabled(&self) -> bool {
        match &self.0 {
            Some(inner) => inner.enabled.load(Ordering::Relaxed),
            None => false,
        }
    }

    /// Toggle emission at runtime (`\trace on|off`). A handle built
    /// with [`disabled`](Self::disabled) has no sink and stays off.
    pub fn set_enabled(&self, on: bool) {
        if let Some(inner) = &self.0 {
            inner.enabled.store(on, Ordering::Relaxed);
        }
    }

    /// Microseconds since this tracer's epoch (0 when disabled).
    pub fn now_us(&self) -> u64 {
        match &self.0 {
            Some(inner) => saturating_us_since(inner.epoch),
            None => 0,
        }
    }

    /// Start a span. The returned guard emits when dropped; its
    /// [`id`](SpanGuard::id) parents child spans. Inert when disabled.
    pub fn span(&self, name: &str, parent: SpanId, attrs: &[(&str, &str)]) -> SpanGuard {
        if !self.enabled() {
            return SpanGuard {
                handle: TraceHandle::disabled(),
                id: 0,
                parent: 0,
                name: String::new(),
                attrs: Vec::new(),
                start: None,
            };
        }
        let inner = self.0.as_ref().unwrap();
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        SpanGuard {
            handle: self.clone(),
            id,
            parent,
            name: name.to_string(),
            attrs: attrs.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
            start: Some(Instant::now()),
        }
    }

    /// Emit a complete span with explicit timestamps (µs relative to
    /// this tracer's epoch). Used to synthesize spans from measurements
    /// taken elsewhere, e.g. per-operator times out of `Profiled` slots.
    /// Returns the allocated id (0 when disabled).
    pub fn emit_span(
        &self,
        name: &str,
        parent: SpanId,
        start_us: u64,
        dur_us: u64,
        attrs: &[(&str, &str)],
    ) -> SpanId {
        if !self.enabled() {
            return 0;
        }
        let inner = self.0.as_ref().unwrap();
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        self.write_record(id, parent, name, start_us, dur_us, attrs);
        id
    }

    fn write_record(
        &self,
        id: SpanId,
        parent: SpanId,
        name: &str,
        start_us: u64,
        dur_us: u64,
        attrs: &[(&str, &str)],
    ) {
        let inner = match &self.0 {
            Some(inner) => inner,
            None => return,
        };
        let mut line = String::with_capacity(96);
        line.push_str("{\"id\":");
        line.push_str(&id.to_string());
        line.push_str(",\"parent\":");
        line.push_str(&parent.to_string());
        line.push_str(",\"name\":");
        escape_into(&mut line, name);
        line.push_str(",\"start_us\":");
        line.push_str(&start_us.to_string());
        line.push_str(",\"dur_us\":");
        line.push_str(&dur_us.to_string());
        line.push_str(",\"attrs\":{");
        for (i, (k, v)) in attrs.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            escape_into(&mut line, k);
            line.push(':');
            escape_into(&mut line, v);
        }
        line.push_str("}}\n");
        let mut sink = inner.sink.lock().unwrap();
        let _ = sink.write_all(line.as_bytes());
    }
}

/// An in-flight span; emits its record when dropped.
pub struct SpanGuard {
    handle: TraceHandle,
    id: SpanId,
    parent: SpanId,
    name: String,
    attrs: Vec<(String, String)>,
    start: Option<Instant>,
}

impl SpanGuard {
    /// This span's id, for parenting children (0 when inert).
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// Attach an attribute discovered mid-span (e.g. row counts known
    /// only at the end). No-op on an inert guard.
    pub fn annotate(&mut self, key: &str, value: &str) {
        if self.start.is_some() {
            self.attrs.push((key.to_string(), value.to_string()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let start = match self.start {
            Some(s) => s,
            None => return,
        };
        let dur_us = saturating_us_since(start);
        // start relative to the tracer epoch = now - dur (saturating).
        let start_us = self.handle.now_us().saturating_sub(dur_us);
        let attrs: Vec<(&str, &str)> =
            self.attrs.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        self.handle.write_record(self.id, self.parent, &self.name, start_us, dur_us, &attrs);
    }
}

/// A cloneable in-memory sink for tests: pass `Box::new(sink.clone())`
/// to [`TraceHandle::new`] and read back with
/// [`contents`](Self::contents).
#[derive(Clone, Default)]
pub struct BufferSink(Arc<Mutex<Vec<u8>>>);

impl BufferSink {
    /// An empty sink.
    pub fn new() -> Self {
        BufferSink::default()
    }

    /// Everything written so far, as UTF-8.
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&self.0.lock().unwrap()).into_owned()
    }
}

impl Write for BufferSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// A parsed span record.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span id.
    pub id: SpanId,
    /// Parent span id (0 = root).
    pub parent: SpanId,
    /// Span name.
    pub name: String,
    /// Start, µs since tracer epoch.
    pub start_us: u64,
    /// Duration, µs.
    pub dur_us: u64,
    /// Attributes in emission order.
    pub attrs: Vec<(String, String)>,
}

impl SpanRecord {
    /// Parse one JSON line.
    pub fn parse_line(line: &str) -> Result<SpanRecord, String> {
        let v = json::parse(line)?;
        let field = |k: &str| {
            v.get(k).and_then(JsonValue::as_u64).ok_or_else(|| format!("missing/bad '{k}'"))
        };
        let name =
            v.get("name").and_then(JsonValue::as_str).ok_or("missing/bad 'name'")?.to_string();
        let attrs = match v.get("attrs") {
            Some(JsonValue::Obj(members)) => members
                .iter()
                .map(|(k, val)| {
                    val.as_str()
                        .map(|s| (k.clone(), s.to_string()))
                        .ok_or_else(|| format!("non-string attr '{k}'"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
            Some(_) => return Err("'attrs' is not an object".into()),
        };
        Ok(SpanRecord {
            id: field("id")?,
            parent: field("parent")?,
            name,
            start_us: field("start_us")?,
            dur_us: field("dur_us")?,
            attrs,
        })
    }

    /// Parse a whole JSONL buffer, ignoring blank lines.
    pub fn parse_all(text: &str) -> Result<Vec<SpanRecord>, String> {
        text.lines().filter(|l| !l.trim().is_empty()).map(SpanRecord::parse_line).collect()
    }
}

/// Render the spans as a normalized tree: ids and timings are dropped,
/// spans named in `drop_names` are elided (children re-parented to the
/// elided span's parent), attributes named in `drop_attrs` are removed,
/// and siblings are sorted by `(name, attrs)`. Two runs that differ only
/// in scheduling — e.g. dop 1 vs dop 4, where worker spans and ids vary
/// — normalize to identical strings.
pub fn normalized_tree(records: &[SpanRecord], drop_names: &[&str], drop_attrs: &[&str]) -> String {
    use std::collections::BTreeMap;

    // Effective parent: hop over dropped spans.
    let by_id: BTreeMap<SpanId, &SpanRecord> = records.iter().map(|r| (r.id, r)).collect();
    let dropped = |r: &SpanRecord| drop_names.contains(&r.name.as_str());
    let effective_parent = |r: &SpanRecord| {
        let mut p = r.parent;
        while let Some(pr) = by_id.get(&p) {
            if dropped(pr) {
                p = pr.parent;
            } else {
                break;
            }
        }
        p
    };

    let mut children: BTreeMap<SpanId, Vec<&SpanRecord>> = BTreeMap::new();
    let mut roots: Vec<&SpanRecord> = Vec::new();
    for r in records {
        if dropped(r) {
            continue;
        }
        let p = effective_parent(r);
        if by_id.contains_key(&p) && p != r.id {
            children.entry(p).or_default().push(r);
        } else {
            roots.push(r);
        }
    }

    fn label(r: &SpanRecord, drop_attrs: &[&str]) -> String {
        let mut attrs: Vec<&(String, String)> =
            r.attrs.iter().filter(|(k, _)| !drop_attrs.contains(&k.as_str())).collect();
        attrs.sort();
        let mut s = r.name.clone();
        for (k, v) in attrs {
            s.push(' ');
            s.push_str(k);
            s.push('=');
            s.push_str(v);
        }
        s
    }

    fn render(
        out: &mut String,
        node: &SpanRecord,
        depth: usize,
        children: &std::collections::BTreeMap<SpanId, Vec<&SpanRecord>>,
        drop_attrs: &[&str],
    ) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&label(node, drop_attrs));
        out.push('\n');
        if let Some(kids) = children.get(&node.id) {
            let mut kids: Vec<&&SpanRecord> = kids.iter().collect();
            kids.sort_by_key(|r| label(r, drop_attrs));
            for kid in kids {
                render(out, kid, depth + 1, children, drop_attrs);
            }
        }
    }

    roots.sort_by_key(|r| label(r, drop_attrs));
    let mut out = String::new();
    for root in roots {
        render(&mut out, root, 0, &children, drop_attrs);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_emits_on_drop_and_round_trips() {
        let sink = BufferSink::new();
        let tracer = TraceHandle::new(Box::new(sink.clone()));
        let parent_id;
        {
            let mut root = tracer.span("query", 0, &[("sql", "select \"x\"")]);
            root.annotate("rows", "3");
            parent_id = root.id();
            let _child = tracer.span("parse", root.id(), &[]);
        }
        let records = SpanRecord::parse_all(&sink.contents()).unwrap();
        // Children drop before parents, so "parse" is emitted first.
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].name, "parse");
        assert_eq!(records[0].parent, parent_id);
        assert_eq!(records[1].name, "query");
        assert_eq!(
            records[1].attrs,
            vec![
                ("sql".to_string(), "select \"x\"".to_string()),
                ("rows".to_string(), "3".to_string())
            ]
        );
    }

    #[test]
    fn disabled_tracer_emits_nothing() {
        let tracer = TraceHandle::disabled();
        assert!(!tracer.enabled());
        let g = tracer.span("x", 0, &[("a", "b")]);
        assert_eq!(g.id(), 0);
        drop(g);
        assert_eq!(tracer.emit_span("y", 0, 1, 2, &[]), 0);
    }

    #[test]
    fn set_enabled_toggles_emission() {
        let sink = BufferSink::new();
        let tracer = TraceHandle::new(Box::new(sink.clone()));
        tracer.set_enabled(false);
        drop(tracer.span("hidden", 0, &[]));
        tracer.set_enabled(true);
        drop(tracer.span("visible", 0, &[]));
        let records = SpanRecord::parse_all(&sink.contents()).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].name, "visible");
    }

    #[test]
    fn emit_span_uses_explicit_times() {
        let sink = BufferSink::new();
        let tracer = TraceHandle::new(Box::new(sink.clone()));
        let id = tracer.emit_span("op:Scan", 0, 5, 17, &[("rows", "100")]);
        assert!(id > 0);
        let records = SpanRecord::parse_all(&sink.contents()).unwrap();
        assert_eq!(records[0].start_us, 5);
        assert_eq!(records[0].dur_us, 17);
    }

    #[test]
    fn normalization_drops_workers_and_ignores_ids() {
        // Run A (dop 1): query -> execute -> op. Run B (dop 4): same
        // logical tree, different ids, plus worker spans under execute.
        let a = vec![
            SpanRecord {
                id: 1,
                parent: 0,
                name: "query".into(),
                start_us: 0,
                dur_us: 9,
                attrs: vec![],
            },
            SpanRecord {
                id: 2,
                parent: 1,
                name: "execute".into(),
                start_us: 1,
                dur_us: 8,
                attrs: vec![("dop".into(), "1".into())],
            },
            SpanRecord {
                id: 3,
                parent: 2,
                name: "op:Scan".into(),
                start_us: 2,
                dur_us: 3,
                attrs: vec![],
            },
        ];
        let b = vec![
            SpanRecord {
                id: 10,
                parent: 0,
                name: "query".into(),
                start_us: 0,
                dur_us: 5,
                attrs: vec![],
            },
            SpanRecord {
                id: 20,
                parent: 10,
                name: "execute".into(),
                start_us: 1,
                dur_us: 4,
                attrs: vec![("dop".into(), "4".into())],
            },
            SpanRecord {
                id: 31,
                parent: 20,
                name: "gapply.worker".into(),
                start_us: 1,
                dur_us: 2,
                attrs: vec![("worker".into(), "0".into())],
            },
            SpanRecord {
                id: 32,
                parent: 20,
                name: "gapply.worker".into(),
                start_us: 1,
                dur_us: 2,
                attrs: vec![("worker".into(), "1".into())],
            },
            SpanRecord {
                id: 33,
                parent: 31,
                name: "op:Scan".into(),
                start_us: 2,
                dur_us: 1,
                attrs: vec![],
            },
        ];
        let norm_a = normalized_tree(&a, &["gapply.worker"], &["dop"]);
        let norm_b = normalized_tree(&b, &["gapply.worker"], &["dop"]);
        assert_eq!(norm_a, norm_b);
        assert_eq!(norm_a, "query\n  execute\n    op:Scan\n");
    }

    #[test]
    fn sink_lines_are_complete_under_concurrency() {
        let sink = BufferSink::new();
        let tracer = TraceHandle::new(Box::new(sink.clone()));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let tracer = tracer.clone();
                scope.spawn(move || {
                    for i in 0..50 {
                        let n = format!("t{t}.{i}");
                        drop(tracer.span(&n, 0, &[("k", "v")]));
                    }
                });
            }
        });
        let records = SpanRecord::parse_all(&sink.contents()).unwrap();
        assert_eq!(records.len(), 200);
    }
}
