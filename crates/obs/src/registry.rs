//! The metrics registry: named counters, gauges and latency histograms.
//!
//! Cost model, in order of importance:
//!
//! 1. **Disabled is free.** [`MetricsHandle::disabled`] holds no
//!    registry; every recording call is one branch on an `Option`.
//! 2. **Recording is lock-free.** A resolved [`Counter`] / [`Gauge`] /
//!    [`Histogram`] handle is an `Arc` around atomics; recording is a
//!    relaxed atomic op. Hot paths (per-batch operator accounting)
//!    resolve once and cache the `Arc`.
//! 3. **Registration is locked, and that's fine.** Name→handle
//!    resolution takes a `Mutex` around a `BTreeMap`; it happens once
//!    per metric per call-site, not per sample.
//!
//! `BTreeMap` (not `HashMap`) keeps snapshots and the text exposition
//! deterministically ordered, which the golden-report tests rely on.
//!
//! # Memory ordering
//!
//! Every atomic in this module uses `Ordering::Relaxed`, and that is a
//! deliberate contract, not an oversight:
//!
//! * each metric is a **single atomic location with no cross-location
//!   invariant** — nothing is ever published *through* a counter, and no
//!   reader dereferences anything based on a metric's value, so there is
//!   no release/acquire edge to establish;
//! * relaxed RMWs (`fetch_add`) are still atomic and still participate
//!   in the location's total modification order, so **no increment is
//!   ever lost**, regardless of thread count;
//! * readers ([`Registry::snapshot`]) therefore see, per metric, some
//!   value that genuinely occurred; the snapshot is explicitly *not* a
//!   globally consistent cut across metrics (see `snapshot`'s doc).
//!
//! Cross-thread visibility of the handles themselves is carried by the
//! `Mutex`-guarded registration maps and the `Arc` clones, both of which
//! provide their own synchronization.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::histogram::{Histogram, HistogramSnapshot};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `n` to the counter. Relaxed: the RMW's atomicity alone
    /// guarantees no increment is lost, and counters order nothing else
    /// (see the module-level memory-ordering notes).
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value (some value from the counter's modification order;
    /// concurrent adds may or may not be visible yet).
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move in both directions
/// (e.g. active sessions, queue depth).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Overwrite the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust the gauge by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The registry proper: three namespaces of named metrics. Handles
/// returned by the getters stay valid (and keep recording into the same
/// slots) for the registry's lifetime.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or register the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap();
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::default());
        map.insert(name.to_string(), Arc::clone(&c));
        c
    }

    /// Get or register the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap();
        if let Some(g) = map.get(name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::default());
        map.insert(name.to_string(), Arc::clone(&g));
        g
    }

    /// Get or register the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap();
        if let Some(h) = map.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::default());
        map.insert(name.to_string(), Arc::clone(&h));
        h
    }

    /// A consistent-enough point-in-time copy of everything. (Each
    /// metric is read atomically; the set is not a global snapshot, which
    /// is the standard trade for lock-free recording.)
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters =
            self.counters.lock().unwrap().iter().map(|(k, v)| (k.clone(), v.get())).collect();
        let gauges =
            self.gauges.lock().unwrap().iter().map(|(k, v)| (k.clone(), v.get())).collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        MetricsSnapshot { counters, gauges, histograms }
    }
}

/// A plain-data snapshot of a [`Registry`], ordered by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter value, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Gauge value, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Histogram snapshot, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Fold `other` into `self`: counters and histogram slots sum
    /// (order-independently, like `ExecStats::merge`); gauges take the
    /// other side's value when present (last write wins — summing two
    /// point-in-time levels is meaningless).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            let slot = self.counters.entry(k.clone()).or_insert(0);
            *slot = slot.saturating_add(*v);
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, v) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(v);
        }
    }
}

/// The cheap, cloneable capability to record metrics. `None` inside
/// means disabled: every operation is a no-op after one branch.
#[derive(Clone, Default)]
pub struct MetricsHandle(Option<Arc<Registry>>);

impl MetricsHandle {
    /// A disabled handle (the `Default`).
    pub fn disabled() -> Self {
        MetricsHandle(None)
    }

    /// A handle over a fresh registry.
    pub fn new_registry() -> Self {
        MetricsHandle(Some(Arc::new(Registry::new())))
    }

    /// A handle over an existing (e.g. server-wide shared) registry.
    pub fn from_registry(registry: Arc<Registry>) -> Self {
        MetricsHandle(Some(registry))
    }

    /// Is recording live?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The backing registry, if enabled.
    pub fn registry(&self) -> Option<&Arc<Registry>> {
        self.0.as_ref()
    }

    /// Add `n` to the counter `name`. Convenience for cold paths; hot
    /// paths should cache [`counter`](Self::counter) instead.
    #[inline]
    pub fn add(&self, name: &str, n: u64) {
        if let Some(r) = &self.0 {
            r.counter(name).add(n);
        }
    }

    /// Adjust the gauge `name` by `delta`.
    #[inline]
    pub fn gauge_add(&self, name: &str, delta: i64) {
        if let Some(r) = &self.0 {
            r.gauge(name).add(delta);
        }
    }

    /// Overwrite the gauge `name`.
    #[inline]
    pub fn gauge_set(&self, name: &str, v: i64) {
        if let Some(r) = &self.0 {
            r.gauge(name).set(v);
        }
    }

    /// Record a latency sample (µs) into the histogram `name`.
    #[inline]
    pub fn record_us(&self, name: &str, us: u64) {
        if let Some(r) = &self.0 {
            r.histogram(name).record(us);
        }
    }

    /// Resolve a counter handle for hot-path caching.
    pub fn counter(&self, name: &str) -> Option<Arc<Counter>> {
        self.0.as_ref().map(|r| r.counter(name))
    }

    /// Resolve a histogram handle for hot-path caching.
    pub fn histogram(&self, name: &str) -> Option<Arc<Histogram>> {
        self.0.as_ref().map(|r| r.histogram(name))
    }

    /// Snapshot the backing registry, if enabled.
    pub fn snapshot(&self) -> Option<MetricsSnapshot> {
        self.0.as_ref().map(|r| r.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let r = Registry::new();
        let a = r.counter("queries");
        let b = r.counter("queries");
        a.add(1);
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(r.snapshot().counter("queries"), Some(3));
    }

    #[test]
    fn gauges_move_both_ways() {
        let r = Registry::new();
        let g = r.gauge("sessions.active");
        g.add(3);
        g.add(-1);
        assert_eq!(g.get(), 2);
        g.set(10);
        assert_eq!(r.snapshot().gauge("sessions.active"), Some(10));
    }

    #[test]
    fn snapshot_is_name_ordered() {
        let r = Registry::new();
        r.counter("zeta").add(1);
        r.counter("alpha").add(1);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.counters.keys().map(|s| s.as_str()).collect();
        assert_eq!(names, ["alpha", "zeta"]);
    }

    #[test]
    fn disabled_handle_is_inert() {
        let h = MetricsHandle::disabled();
        h.add("x", 1);
        h.gauge_set("g", 5);
        h.record_us("h", 100);
        assert!(!h.enabled());
        assert!(h.snapshot().is_none());
        assert!(h.counter("x").is_none());
    }

    #[test]
    fn shared_registry_sees_all_handles() {
        let reg = Arc::new(Registry::new());
        let h1 = MetricsHandle::from_registry(Arc::clone(&reg));
        let h2 = MetricsHandle::from_registry(Arc::clone(&reg));
        h1.add("n", 1);
        h2.add("n", 1);
        assert_eq!(reg.snapshot().counter("n"), Some(2));
    }

    #[test]
    fn snapshot_merge_folds_counters_and_histograms() {
        let a = {
            let r = Registry::new();
            r.counter("q").add(2);
            r.histogram("lat").record(100);
            r.gauge("g").set(1);
            r.snapshot()
        };
        let b = {
            let r = Registry::new();
            r.counter("q").add(3);
            r.histogram("lat").record(200);
            r.gauge("g").set(7);
            r.snapshot()
        };
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.counter("q"), Some(5));
        assert_eq!(m.histogram("lat").unwrap().count, 2);
        assert_eq!(m.gauge("g"), Some(7));
    }
}
