//! `xmlpub-obs` — query-lifecycle observability for the publishing
//! stack.
//!
//! The paper's §6 evaluation hinges on knowing *where* time goes in a
//! GApply plan (partition vs per-group execution vs tagging), and the
//! serving layer cannot be tuned for heavy concurrent traffic without
//! first-class measurement of its hot path. This crate is that layer,
//! split into two halves with very different cost budgets:
//!
//! * **Metrics** ([`registry`], [`histogram`]) — an always-on,
//!   cheap-when-enabled, zero-cost-when-disabled registry of atomic
//!   counters, gauges and fixed-bucket latency histograms. Recording
//!   through a resolved handle is lock-free (a relaxed atomic add);
//!   only name→handle resolution takes a lock, and callers on hot
//!   paths cache the resolved handles. Histogram [`merge`] is a
//!   field-wise sum, so per-worker recordings fold order-independently
//!   into exactly the totals a serial recording would produce — the
//!   metric analogue of `ExecStats::merge`.
//! * **Tracing** ([`trace`]) — opt-in structured spans for the query
//!   lifecycle (parse → optimize → execute → tag/stream), serialized
//!   as JSON lines into a pluggable sink. A disabled tracer is a
//!   no-op handle: starting a span costs one relaxed atomic load.
//!
//! Everything downstream (engine, optimizer, core, server) receives
//! observability as an [`ObsContext`] value: a pair of handles plus the
//! current parent span id. Handles are cheap to clone (`Arc` bumps) and
//! a `Default`-constructed context is fully disabled.
//!
//! [`merge`]: histogram::HistogramSnapshot::merge

pub mod histogram;
pub mod json;
pub mod registry;
pub mod text;
pub mod time;
pub mod trace;

pub use histogram::{Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{Counter, Gauge, MetricsHandle, MetricsSnapshot, Registry};
pub use text::{parse_text, render_text, TextEntry};
pub use time::{saturating_ns_since, saturating_us_since};
pub use trace::{normalized_tree, BufferSink, SpanGuard, SpanId, SpanRecord, TraceHandle};

/// The observability handles a component carries: metrics plus tracing.
/// `Default` is fully disabled — every operation on a disabled handle is
/// a no-op costing at most one branch.
#[derive(Clone, Default)]
pub struct Observability {
    /// The metrics registry handle (possibly disabled).
    pub metrics: MetricsHandle,
    /// The span tracer handle (possibly disabled).
    pub tracer: TraceHandle,
}

impl Observability {
    /// Fully disabled observability.
    pub fn disabled() -> Self {
        Observability::default()
    }

    /// Metrics enabled (fresh registry), tracing disabled.
    pub fn with_metrics() -> Self {
        Observability { metrics: MetricsHandle::new_registry(), tracer: TraceHandle::disabled() }
    }

    /// Honour the process environment: `XMLPUB_TRACE=1` enables the
    /// tracer (into the file named by `XMLPUB_TRACE_FILE`, or a
    /// discarding sink when unset — the serialization path still runs,
    /// which is what the CI observability job measures), and
    /// `XMLPUB_METRICS=1` enables a fresh metrics registry. Flags are
    /// read once per process.
    pub fn from_env() -> Self {
        let (trace, metrics) = *env_flags();
        let tracer = if trace {
            match std::env::var("XMLPUB_TRACE_FILE") {
                Ok(path) if !path.is_empty() => {
                    match std::fs::OpenOptions::new().create(true).append(true).open(&path) {
                        Ok(f) => TraceHandle::new(Box::new(f)),
                        Err(_) => TraceHandle::new(Box::new(std::io::sink())),
                    }
                }
                _ => TraceHandle::new(Box::new(std::io::sink())),
            }
        } else {
            TraceHandle::disabled()
        };
        let metrics =
            if metrics { MetricsHandle::new_registry() } else { MetricsHandle::disabled() };
        Observability { metrics, tracer }
    }

    /// Is either half enabled?
    pub fn enabled(&self) -> bool {
        self.metrics.enabled() || self.tracer.enabled()
    }

    /// An [`ObsContext`] rooted at `parent` carrying these handles.
    pub fn context(&self, parent: SpanId) -> ObsContext {
        ObsContext {
            metrics: self.metrics.clone(),
            tracer: self.tracer.clone(),
            parent_span: parent,
        }
    }
}

fn env_flags() -> &'static (bool, bool) {
    static FLAGS: std::sync::OnceLock<(bool, bool)> = std::sync::OnceLock::new();
    FLAGS.get_or_init(|| {
        let on = |k: &str| std::env::var(k).map(|v| v == "1" || v == "true").unwrap_or(false);
        (on("XMLPUB_TRACE"), on("XMLPUB_METRICS"))
    })
}

/// Observability threaded through an executing component: the handles
/// plus the span the component's own spans should parent under.
#[derive(Clone, Default)]
pub struct ObsContext {
    /// Metrics registry handle.
    pub metrics: MetricsHandle,
    /// Span tracer handle.
    pub tracer: TraceHandle,
    /// Parent span id for spans emitted at this level (0 = root).
    pub parent_span: SpanId,
}

impl ObsContext {
    /// A disabled context.
    pub fn disabled() -> Self {
        ObsContext::default()
    }

    /// The same handles re-parented under `span`.
    pub fn under(&self, span: SpanId) -> ObsContext {
        ObsContext { metrics: self.metrics.clone(), tracer: self.tracer.clone(), parent_span: span }
    }

    /// Is either half enabled?
    pub fn enabled(&self) -> bool {
        self.metrics.enabled() || self.tracer.enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_are_noops() {
        let obs = Observability::disabled();
        assert!(!obs.enabled());
        obs.metrics.add("x", 1);
        obs.metrics.record_us("h", 10);
        let span = obs.tracer.span("nothing", 0, &[]);
        drop(span);
        assert!(obs.metrics.snapshot().is_none());
    }

    #[test]
    fn with_metrics_enables_only_metrics() {
        let obs = Observability::with_metrics();
        assert!(obs.metrics.enabled());
        assert!(!obs.tracer.enabled());
        obs.metrics.add("queries", 2);
        let snap = obs.metrics.snapshot().unwrap();
        assert_eq!(snap.counter("queries"), Some(2));
    }

    #[test]
    fn context_reparenting_keeps_handles() {
        let obs = Observability::with_metrics();
        let ctx = obs.context(7);
        assert_eq!(ctx.parent_span, 7);
        let nested = ctx.under(9);
        assert_eq!(nested.parent_span, 9);
        assert!(nested.metrics.enabled());
    }
}
