//! Monotonic-safe time helpers.
//!
//! `Instant` is documented monotonic, but platform bugs (VM migrations,
//! broken TSC sync) have historically produced backwards steps, and
//! `Instant::duration_since` panics on them in older std versions. All
//! engine timers therefore go through these helpers: a clock anomaly
//! degrades to a zero-length measurement instead of a panic, and the
//! accumulators downstream use saturating arithmetic so no sequence of
//! recordings can overflow.

use std::time::Instant;

/// Nanoseconds elapsed since `start`, clamped to zero on clock
/// anomalies and to `u64::MAX` on (theoretical) overflow.
#[inline]
pub fn saturating_ns_since(start: Instant) -> u64 {
    Instant::now()
        .checked_duration_since(start)
        .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// Microseconds elapsed since `start`, with the same clamping.
#[inline]
pub fn saturating_us_since(start: Instant) -> u64 {
    Instant::now()
        .checked_duration_since(start)
        .map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_nonnegative_and_ordered() {
        let start = Instant::now();
        let a = saturating_ns_since(start);
        let b = saturating_ns_since(start);
        assert!(b >= a);
        assert!(saturating_us_since(start) <= saturating_ns_since(start));
    }

    #[test]
    fn future_instants_clamp_to_zero() {
        // A start point in the future is the shape of a clock anomaly:
        // `checked_duration_since` fails and we clamp to zero instead of
        // panicking.
        let future = Instant::now() + std::time::Duration::from_secs(3600);
        assert_eq!(saturating_ns_since(future), 0);
        assert_eq!(saturating_us_since(future), 0);
    }
}
