//! Property tests for the predicate normaliser: `normalize` must be
//! idempotent and must preserve three-valued-logic semantics — the §4.1
//! covering-range elimination trusts `equivalent` with real rewrites.

use proptest::prelude::*;
use xmlpub_common::{row, Tuple, Value};
use xmlpub_expr::predicate::{equivalent, normalize};
use xmlpub_expr::{BinOp, Expr};

/// Random boolean expressions over three int columns.
fn bool_expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        Just(Expr::lit(true)),
        Just(Expr::lit(false)),
        Just(Expr::Literal(Value::Null)),
        (
            0usize..3,
            -3i64..3,
            prop_oneof![
                Just(BinOp::Eq),
                Just(BinOp::NotEq),
                Just(BinOp::Lt),
                Just(BinOp::LtEq),
                Just(BinOp::Gt),
                Just(BinOp::GtEq),
            ]
        )
            .prop_map(|(c, v, op)| Expr::binary(op, Expr::col(c), Expr::lit(v))),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(|a| a.not()),
        ]
    })
    .boxed()
}

fn rows() -> Vec<Tuple> {
    let mut out = Vec::new();
    for a in -3..=3i64 {
        for b in -2..=2i64 {
            out.push(row![a, b, a - b]);
            out.push(row![a, Value::Null, b]);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn normalize_is_idempotent(e in bool_expr(3)) {
        let once = normalize(&e);
        let twice = normalize(&once);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn normalize_preserves_semantics(e in bool_expr(3)) {
        let n = normalize(&e);
        for r in rows() {
            let a = e.eval(&r, &[]).unwrap();
            let b = n.eval(&r, &[]).unwrap();
            prop_assert_eq!(a, b, "row {} expr {:?}", r, e);
        }
    }

    #[test]
    fn equivalent_is_reflexive_and_commutation_safe(e in bool_expr(2), f in bool_expr(2)) {
        prop_assert!(equivalent(&e, &e));
        // AND/OR commutation is always recognised.
        prop_assert!(equivalent(&e.clone().and(f.clone()), &f.clone().and(e.clone())));
        prop_assert!(equivalent(&e.clone().or(f.clone()), &f.or(e)));
    }

    #[test]
    fn equivalent_implies_same_results(e in bool_expr(2), f in bool_expr(2)) {
        if equivalent(&e, &f) {
            for r in rows() {
                prop_assert_eq!(e.eval(&r, &[]).unwrap(), f.eval(&r, &[]).unwrap());
            }
        }
    }
}
