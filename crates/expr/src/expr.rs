//! The scalar expression AST and its evaluator.
//!
//! Expressions reference input columns **positionally** (the binder turns
//! names into indices), which keeps the optimizer's column remapping
//! explicit and testable. Correlated references into an enclosing `Apply`
//! are a separate variant carrying a nesting *level*: level 0 is the
//! nearest enclosing apply's current outer row, level 1 the next one out.
//!
//! Comparison and boolean evaluation follow SQL three-valued logic: any
//! comparison with NULL yields NULL, and `AND`/`OR` are Kleene operators.
//! Selection predicates keep a row only when the predicate is *true*
//! (NULL and false both reject) — the evaluator exposes
//! [`Expr::eval_predicate`] for that.

use crate::like::like_match;
use std::fmt;
use xmlpub_common::{DataType, Error, Result, Schema, Tuple, Value};

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (float division; integer inputs widen)
    Div,
    /// `%` (modulo on integers)
    Mod,
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// Kleene AND
    And,
    /// Kleene OR
    Or,
}

impl BinOp {
    /// Whether this operator is a comparison producing a boolean.
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq)
    }

    /// Whether this operator is `AND`/`OR`.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    /// The mirrored comparison (`a < b` ⇔ `b > a`); identity for
    /// non-comparisons.
    pub fn flip(self) -> BinOp {
        match self {
            BinOp::Lt => BinOp::Gt,
            BinOp::LtEq => BinOp::GtEq,
            BinOp::Gt => BinOp::Lt,
            BinOp::GtEq => BinOp::LtEq,
            other => other,
        }
    }

    /// SQL token for display.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "and",
            BinOp::Or => "or",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Boolean NOT (Kleene: NOT NULL = NULL).
    Not,
    /// Numeric negation.
    Neg,
    /// `IS NULL` — never returns NULL.
    IsNull,
    /// `IS NOT NULL` — never returns NULL.
    IsNotNull,
}

/// A scalar expression over one input row (plus the correlated outer rows
/// of enclosing applies).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Input column by position.
    Column(usize),
    /// Correlated reference: column `index` of the outer row of the
    /// `level`-th enclosing `Apply` (0 = innermost).
    Correlated { level: usize, index: usize },
    /// A literal value.
    Literal(Value),
    /// Unary operator application.
    Unary { op: UnaryOp, expr: Box<Expr> },
    /// Binary operator application.
    Binary { op: BinOp, left: Box<Expr>, right: Box<Expr> },
    /// Searched CASE: the first branch whose condition is true wins.
    Case { branches: Vec<(Expr, Expr)>, else_expr: Option<Box<Expr>> },
    /// `expr LIKE pattern` with `%` and `_` wildcards.
    Like { expr: Box<Expr>, pattern: String, negated: bool },
}

impl Expr {
    /// Column reference shorthand.
    pub fn col(index: usize) -> Expr {
        Expr::Column(index)
    }

    /// Literal shorthand.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Binary application shorthand.
    pub fn binary(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary { op, left: Box::new(left), right: Box::new(right) }
    }

    /// `self = other`
    pub fn eq(self, other: Expr) -> Expr {
        Expr::binary(BinOp::Eq, self, other)
    }

    /// `self <> other`
    pub fn neq(self, other: Expr) -> Expr {
        Expr::binary(BinOp::NotEq, self, other)
    }

    /// `self < other`
    pub fn lt(self, other: Expr) -> Expr {
        Expr::binary(BinOp::Lt, self, other)
    }

    /// `self <= other`
    pub fn lt_eq(self, other: Expr) -> Expr {
        Expr::binary(BinOp::LtEq, self, other)
    }

    /// `self > other`
    pub fn gt(self, other: Expr) -> Expr {
        Expr::binary(BinOp::Gt, self, other)
    }

    /// `self >= other`
    pub fn gt_eq(self, other: Expr) -> Expr {
        Expr::binary(BinOp::GtEq, self, other)
    }

    /// `self AND other`
    pub fn and(self, other: Expr) -> Expr {
        Expr::binary(BinOp::And, self, other)
    }

    /// `self OR other`
    pub fn or(self, other: Expr) -> Expr {
        Expr::binary(BinOp::Or, self, other)
    }

    /// `NOT self`
    #[allow(clippy::should_implement_trait)] // builder symmetry with and/or
    pub fn not(self) -> Expr {
        Expr::Unary { op: UnaryOp::Not, expr: Box::new(self) }
    }

    /// Evaluate against a row, with `outer` as the stack of enclosing
    /// apply outer rows (innermost last).
    pub fn eval(&self, row: &Tuple, outer: &[Tuple]) -> Result<Value> {
        match self {
            Expr::Column(i) => row.values().get(*i).cloned().ok_or_else(|| {
                Error::exec(format!("column #{i} out of range for {}-wide row", row.len()))
            }),
            Expr::Correlated { level, index } => {
                let pos = outer
                    .len()
                    .checked_sub(1 + level)
                    .ok_or_else(|| Error::exec(format!("no outer binding at level {level}")))?;
                outer[pos].values().get(*index).cloned().ok_or_else(|| {
                    Error::exec(format!("correlated column #{index} out of range at level {level}"))
                })
            }
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Unary { op, expr } => {
                let v = expr.eval(row, outer)?;
                eval_unary(*op, v)
            }
            Expr::Binary { op, left, right } => {
                // Short-circuit AND/OR need Kleene handling of NULL, so we
                // evaluate both sides (no side effects exist) and combine.
                let l = left.eval(row, outer)?;
                let r = right.eval(row, outer)?;
                eval_binary(*op, l, r)
            }
            Expr::Case { branches, else_expr } => {
                for (cond, result) in branches {
                    if cond.eval(row, outer)?.as_bool() == Some(true) {
                        return result.eval(row, outer);
                    }
                }
                match else_expr {
                    Some(e) => e.eval(row, outer),
                    None => Ok(Value::Null),
                }
            }
            Expr::Like { expr, pattern, negated } => {
                let v = expr.eval(row, outer)?;
                match v {
                    Value::Null => Ok(Value::Null),
                    Value::Str(s) => {
                        let m = like_match(&s, pattern);
                        Ok(Value::Bool(if *negated { !m } else { m }))
                    }
                    other => Err(Error::exec(format!("LIKE applied to non-string value {other}"))),
                }
            }
        }
    }

    /// Evaluate as a selection predicate: true keeps the row; false and
    /// NULL reject it (SQL WHERE semantics).
    pub fn eval_predicate(&self, row: &Tuple, outer: &[Tuple]) -> Result<bool> {
        Ok(self.eval(row, outer)?.as_bool() == Some(true))
    }

    /// Evaluate over a batch of rows, producing one value column — the
    /// vectorized counterpart of [`Expr::eval`]. One AST dispatch covers
    /// the whole batch: leaves resolve once (literals and correlated
    /// references replicate their value), inner nodes recurse into value
    /// columns and combine element-wise. `CASE` falls back to row-at-a-time
    /// evaluation to keep its branch short-circuiting (eagerly evaluating
    /// an untaken branch could raise a spurious error).
    ///
    /// For any error-free input this computes exactly the values row-wise
    /// evaluation would; when several rows would error, which error
    /// surfaces first may differ (columns are evaluated operand-major, not
    /// row-major), but some error is raised either way.
    pub fn eval_batch(&self, rows: &[Tuple], outer: &[Tuple]) -> Result<Vec<Value>> {
        match self {
            Expr::Column(i) => rows
                .iter()
                .map(|row| {
                    row.values().get(*i).cloned().ok_or_else(|| {
                        Error::exec(format!("column #{i} out of range for {}-wide row", row.len()))
                    })
                })
                .collect(),
            Expr::Correlated { level, index } => {
                let pos = outer
                    .len()
                    .checked_sub(1 + level)
                    .ok_or_else(|| Error::exec(format!("no outer binding at level {level}")))?;
                let v = outer[pos].values().get(*index).cloned().ok_or_else(|| {
                    Error::exec(format!("correlated column #{index} out of range at level {level}"))
                })?;
                Ok(vec![v; rows.len()])
            }
            Expr::Literal(v) => Ok(vec![v.clone(); rows.len()]),
            Expr::Unary { op, expr } => {
                let vals = expr.eval_batch(rows, outer)?;
                vals.into_iter().map(|v| eval_unary(*op, v)).collect()
            }
            Expr::Binary { op, left, right } => {
                let l = left.eval_batch(rows, outer)?;
                let r = right.eval_batch(rows, outer)?;
                l.into_iter().zip(r).map(|(a, b)| eval_binary(*op, a, b)).collect()
            }
            Expr::Case { .. } => rows.iter().map(|row| self.eval(row, outer)).collect(),
            Expr::Like { expr, pattern, negated } => {
                let vals = expr.eval_batch(rows, outer)?;
                vals.into_iter()
                    .map(|v| match v {
                        Value::Null => Ok(Value::Null),
                        Value::Str(s) => {
                            let m = like_match(&s, pattern);
                            Ok(Value::Bool(if *negated { !m } else { m }))
                        }
                        other => {
                            Err(Error::exec(format!("LIKE applied to non-string value {other}")))
                        }
                    })
                    .collect()
            }
        }
    }

    /// Evaluate as a selection predicate over a batch, producing a
    /// selection mask: `mask[i]` is true iff row `i` survives (SQL WHERE
    /// semantics — false and NULL reject).
    pub fn eval_batch_predicate(&self, rows: &[Tuple], outer: &[Tuple]) -> Result<Vec<bool>> {
        Ok(self.eval_batch(rows, outer)?.into_iter().map(|v| v.as_bool() == Some(true)).collect())
    }

    /// Static result type against an input schema. `None` for NULL
    /// literals whose type is context-dependent.
    pub fn data_type(&self, schema: &Schema) -> DataType {
        match self {
            Expr::Column(i) => {
                schema.fields().get(*i).map(|f| f.data_type).unwrap_or(DataType::Null)
            }
            // The binder validates correlated references against the outer
            // schema; locally we cannot see it, so report the widest type.
            Expr::Correlated { .. } => DataType::Null,
            Expr::Literal(v) => v.data_type(),
            Expr::Unary { op, expr } => match op {
                UnaryOp::Not | UnaryOp::IsNull | UnaryOp::IsNotNull => DataType::Bool,
                UnaryOp::Neg => expr.data_type(schema),
            },
            Expr::Binary { op, left, right } => {
                if op.is_comparison() || op.is_logical() {
                    DataType::Bool
                } else {
                    match (left.data_type(schema), right.data_type(schema)) {
                        (DataType::Int, DataType::Int) if *op != BinOp::Div => DataType::Int,
                        _ => DataType::Float,
                    }
                }
            }
            Expr::Case { branches, else_expr } => {
                let mut ty = DataType::Null;
                for (_, r) in branches {
                    ty = ty.unify(r.data_type(schema)).unwrap_or(DataType::Str);
                }
                if let Some(e) = else_expr {
                    ty = ty.unify(e.data_type(schema)).unwrap_or(DataType::Str);
                }
                ty
            }
            Expr::Like { .. } => DataType::Bool,
        }
    }

    /// Collect every local (non-correlated) column index referenced.
    pub fn collect_columns(&self, out: &mut xmlpub_common::ColumnSet) {
        self.visit(&mut |e| {
            if let Expr::Column(i) = e {
                out.insert(*i);
            }
        });
    }

    /// The set of local columns referenced.
    pub fn columns(&self) -> xmlpub_common::ColumnSet {
        let mut s = xmlpub_common::ColumnSet::new();
        self.collect_columns(&mut s);
        s
    }

    /// Whether the expression contains a correlated reference at exactly
    /// the given level.
    pub fn has_correlated_at(&self, level: usize) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if let Expr::Correlated { level: l, .. } = e {
                if *l == level {
                    found = true;
                }
            }
        });
        found
    }

    /// Whether the expression contains any correlated reference.
    pub fn has_correlated(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(e, Expr::Correlated { .. }) {
                found = true;
            }
        });
        found
    }

    /// Visit every node (pre-order).
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Unary { expr, .. } => expr.visit(f),
            Expr::Binary { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            Expr::Case { branches, else_expr } => {
                for (c, r) in branches {
                    c.visit(f);
                    r.visit(f);
                }
                if let Some(e) = else_expr {
                    e.visit(f);
                }
            }
            Expr::Like { expr, .. } => expr.visit(f),
            _ => {}
        }
    }

    /// Rewrite every node bottom-up through `f`.
    pub fn transform(self, f: &impl Fn(Expr) -> Expr) -> Expr {
        let rebuilt = match self {
            Expr::Unary { op, expr } => Expr::Unary { op, expr: Box::new(expr.transform(f)) },
            Expr::Binary { op, left, right } => Expr::Binary {
                op,
                left: Box::new(left.transform(f)),
                right: Box::new(right.transform(f)),
            },
            Expr::Case { branches, else_expr } => Expr::Case {
                branches: branches
                    .into_iter()
                    .map(|(c, r)| (c.transform(f), r.transform(f)))
                    .collect(),
                else_expr: else_expr.map(|e| Box::new(e.transform(f))),
            },
            Expr::Like { expr, pattern, negated } => {
                Expr::Like { expr: Box::new(expr.transform(f)), pattern, negated }
            }
            leaf => leaf,
        };
        f(rebuilt)
    }

    /// Remap local column indices through a function. Panics (via the
    /// caller's mapping) must be avoided: unmapped columns are a logic
    /// error in the optimizer, so this returns `None` when any referenced
    /// column has no image.
    pub fn remap_columns(&self, mapping: &impl Fn(usize) -> Option<usize>) -> Option<Expr> {
        let ok = std::cell::Cell::new(true);
        let out = self.clone().transform(&|e| match e {
            Expr::Column(i) => match mapping(i) {
                Some(j) => Expr::Column(j),
                None => {
                    ok.set(false);
                    Expr::Column(i)
                }
            },
            other => other,
        });
        ok.get().then_some(out)
    }

    /// Render against a schema (for EXPLAIN output).
    pub fn display(&self, schema: &Schema) -> String {
        match self {
            Expr::Column(i) => schema
                .fields()
                .get(*i)
                .map(|f| f.qualified_name())
                .unwrap_or_else(|| format!("#{i}")),
            Expr::Correlated { level, index } => format!("outer[{level}]#{index}"),
            Expr::Literal(v) => match v {
                Value::Str(s) => format!("'{s}'"),
                other => other.to_string(),
            },
            Expr::Unary { op, expr } => match op {
                UnaryOp::Not => format!("not ({})", expr.display(schema)),
                UnaryOp::Neg => format!("-({})", expr.display(schema)),
                UnaryOp::IsNull => format!("({}) is null", expr.display(schema)),
                UnaryOp::IsNotNull => format!("({}) is not null", expr.display(schema)),
            },
            Expr::Binary { op, left, right } => {
                format!("({} {} {})", left.display(schema), op.symbol(), right.display(schema))
            }
            Expr::Case { branches, else_expr } => {
                let mut s = String::from("case");
                for (c, r) in branches {
                    s.push_str(&format!(" when {} then {}", c.display(schema), r.display(schema)));
                }
                if let Some(e) = else_expr {
                    s.push_str(&format!(" else {}", e.display(schema)));
                }
                s.push_str(" end");
                s
            }
            Expr::Like { expr, pattern, negated } => {
                format!(
                    "{} {}like '{}'",
                    expr.display(schema),
                    if *negated { "not " } else { "" },
                    pattern
                )
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display(&Schema::empty()))
    }
}

pub(crate) fn eval_unary(op: UnaryOp, v: Value) -> Result<Value> {
    Ok(match op {
        UnaryOp::Not => match v {
            Value::Null => Value::Null,
            Value::Bool(b) => Value::Bool(!b),
            other => return Err(Error::exec(format!("NOT applied to non-boolean {other}"))),
        },
        UnaryOp::Neg => match v {
            Value::Null => Value::Null,
            Value::Int(i) => Value::Int(-i),
            Value::Float(f) => Value::Float(-f),
            other => return Err(Error::exec(format!("negation of non-number {other}"))),
        },
        UnaryOp::IsNull => Value::Bool(v.is_null()),
        UnaryOp::IsNotNull => Value::Bool(!v.is_null()),
    })
}

pub(crate) fn eval_binary(op: BinOp, l: Value, r: Value) -> Result<Value> {
    use BinOp::*;
    match op {
        And => Ok(kleene_and(l, r)?),
        Or => Ok(kleene_or(l, r)?),
        Eq | NotEq | Lt | LtEq | Gt | GtEq => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            let ord = compare_sql(&l, &r)?;
            let b = match op {
                Eq => ord == std::cmp::Ordering::Equal,
                NotEq => ord != std::cmp::Ordering::Equal,
                Lt => ord == std::cmp::Ordering::Less,
                LtEq => ord != std::cmp::Ordering::Greater,
                Gt => ord == std::cmp::Ordering::Greater,
                GtEq => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Value::Bool(b))
        }
        Add | Sub | Mul | Div | Mod => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            arith(op, l, r)
        }
    }
}

/// SQL comparison: numbers compare numerically across Int/Float; strings
/// with strings; booleans with booleans. Cross-class comparison is a type
/// error (the binder prevents it; execution double-checks).
fn compare_sql(l: &Value, r: &Value) -> Result<std::cmp::Ordering> {
    match (l, r) {
        (Value::Int(_), Value::Int(_))
        | (Value::Float(_), Value::Float(_))
        | (Value::Int(_), Value::Float(_))
        | (Value::Float(_), Value::Int(_))
        | (Value::Str(_), Value::Str(_))
        | (Value::Bool(_), Value::Bool(_)) => Ok(l.total_cmp(r)),
        _ => Err(Error::exec(format!("cannot compare {l} with {r}"))),
    }
}

fn arith(op: BinOp, l: Value, r: Value) -> Result<Value> {
    // Integer arithmetic stays integral except division, which widens.
    if let (Value::Int(a), Value::Int(b)) = (&l, &r) {
        match op {
            BinOp::Add => return Ok(Value::Int(a.wrapping_add(*b))),
            BinOp::Sub => return Ok(Value::Int(a.wrapping_sub(*b))),
            BinOp::Mul => return Ok(Value::Int(a.wrapping_mul(*b))),
            BinOp::Mod => {
                if *b == 0 {
                    return Ok(Value::Null);
                }
                return Ok(Value::Int(a.wrapping_rem(*b)));
            }
            BinOp::Div => {
                if *b == 0 {
                    return Ok(Value::Null);
                }
                return Ok(Value::Float(*a as f64 / *b as f64));
            }
            _ => {}
        }
    }
    let (a, b) = match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => (a, b),
        _ => return Err(Error::exec(format!("arithmetic on non-numbers {l}, {r}"))),
    };
    let v = match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => {
            if b == 0.0 {
                return Ok(Value::Null);
            }
            a / b
        }
        BinOp::Mod => {
            if b == 0.0 {
                return Ok(Value::Null);
            }
            a % b
        }
        _ => unreachable!(),
    };
    // Normalise -0.0 so grouping keys derived from arithmetic stay canonical.
    Ok(Value::Float(if v == 0.0 { 0.0 } else { v }))
}

fn kleene_and(l: Value, r: Value) -> Result<Value> {
    Ok(match (to3(l)?, to3(r)?) {
        (Some(false), _) | (_, Some(false)) => Value::Bool(false),
        (Some(true), Some(true)) => Value::Bool(true),
        _ => Value::Null,
    })
}

fn kleene_or(l: Value, r: Value) -> Result<Value> {
    Ok(match (to3(l)?, to3(r)?) {
        (Some(true), _) | (_, Some(true)) => Value::Bool(true),
        (Some(false), Some(false)) => Value::Bool(false),
        _ => Value::Null,
    })
}

fn to3(v: Value) -> Result<Option<bool>> {
    match v {
        Value::Null => Ok(None),
        Value::Bool(b) => Ok(Some(b)),
        other => Err(Error::exec(format!("boolean operator applied to {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlpub_common::row;

    fn ev(e: &Expr) -> Value {
        e.eval(&row![10, 2.5, "abc"], &[]).unwrap()
    }

    #[test]
    fn columns_and_literals() {
        assert_eq!(ev(&Expr::col(0)), Value::Int(10));
        assert_eq!(ev(&Expr::col(1)), Value::Float(2.5));
        assert_eq!(ev(&Expr::lit(7)), Value::Int(7));
        assert!(Expr::col(9).eval(&row![1], &[]).is_err());
    }

    #[test]
    fn arithmetic_typing() {
        assert_eq!(ev(&Expr::binary(BinOp::Add, Expr::lit(1), Expr::lit(2))), Value::Int(3));
        assert_eq!(ev(&Expr::binary(BinOp::Div, Expr::lit(7), Expr::lit(2))), Value::Float(3.5));
        assert_eq!(ev(&Expr::binary(BinOp::Mod, Expr::lit(7), Expr::lit(4))), Value::Int(3));
        assert_eq!(ev(&Expr::binary(BinOp::Mul, Expr::lit(2.0), Expr::lit(3))), Value::Float(6.0));
        // Division by zero yields NULL (permissive SQL mode).
        assert_eq!(ev(&Expr::binary(BinOp::Div, Expr::lit(1), Expr::lit(0))), Value::Null);
        assert_eq!(ev(&Expr::binary(BinOp::Mod, Expr::lit(1), Expr::lit(0))), Value::Null);
    }

    #[test]
    fn null_propagates_through_arithmetic_and_comparison() {
        let null = Expr::lit(Value::Null);
        assert_eq!(ev(&Expr::binary(BinOp::Add, null.clone(), Expr::lit(1))), Value::Null);
        assert_eq!(ev(&null.clone().eq(Expr::lit(1))), Value::Null);
        assert_eq!(ev(&null.clone().lt(null.clone())), Value::Null);
    }

    #[test]
    fn three_valued_logic() {
        let t = Expr::lit(true);
        let f = Expr::lit(false);
        let n = Expr::lit(Value::Null);
        assert_eq!(ev(&f.clone().and(n.clone())), Value::Bool(false));
        assert_eq!(ev(&n.clone().and(t.clone())), Value::Null);
        assert_eq!(ev(&t.clone().or(n.clone())), Value::Bool(true));
        assert_eq!(ev(&f.clone().or(n.clone())), Value::Null);
        assert_eq!(ev(&n.clone().not()), Value::Null);
        assert_eq!(ev(&t.clone().not()), Value::Bool(false));
    }

    #[test]
    fn predicate_semantics_reject_null() {
        let n = Expr::lit(Value::Null);
        assert!(!n.eval_predicate(&row![1], &[]).unwrap());
        assert!(Expr::lit(true).eval_predicate(&row![1], &[]).unwrap());
        assert!(!Expr::lit(false).eval_predicate(&row![1], &[]).unwrap());
    }

    #[test]
    fn eval_batch_matches_per_row_eval() {
        let rows = vec![row![1, "ab"], row![5, Value::Null], row![9, "xy"]];
        let outer = vec![row![100]];
        let exprs = vec![
            Expr::col(0),
            Expr::lit(7),
            Expr::Correlated { level: 0, index: 0 },
            Expr::col(0).gt(Expr::lit(3)).and(Expr::col(0).lt(Expr::lit(9))),
            Expr::binary(BinOp::Add, Expr::col(0), Expr::Correlated { level: 0, index: 0 }),
            Expr::col(0).eq(Expr::lit(5)).not(),
            Expr::Like { expr: Box::new(Expr::col(1)), pattern: "a%".into(), negated: false },
            Expr::Case {
                branches: vec![(Expr::col(0).gt(Expr::lit(4)), Expr::lit("big"))],
                else_expr: Some(Box::new(Expr::lit("small"))),
            },
        ];
        for e in &exprs {
            let batch = e.eval_batch(&rows, &outer).unwrap();
            let per_row: Vec<Value> = rows.iter().map(|r| e.eval(r, &outer).unwrap()).collect();
            assert_eq!(batch, per_row, "{e:?}");
        }
    }

    #[test]
    fn eval_batch_predicate_builds_selection_mask() {
        let rows = vec![row![1], row![5], row![Value::Null]];
        // x > 2: false, true, NULL → mask keeps only the middle row.
        let mask = Expr::col(0).gt(Expr::lit(2)).eval_batch_predicate(&rows, &[]).unwrap();
        assert_eq!(mask, vec![false, true, false]);
        assert!(Expr::col(3).eval_batch(&rows, &[]).is_err());
    }

    #[test]
    fn comparisons() {
        assert_eq!(ev(&Expr::col(0).gt(Expr::lit(5))), Value::Bool(true));
        assert_eq!(ev(&Expr::col(0).lt_eq(Expr::lit(5))), Value::Bool(false));
        assert_eq!(ev(&Expr::col(2).eq(Expr::lit("abc"))), Value::Bool(true));
        assert_eq!(ev(&Expr::lit(1).neq(Expr::lit(1.0))), Value::Bool(false));
        assert_eq!(ev(&Expr::lit(1).gt_eq(Expr::lit(1))), Value::Bool(true));
        // Cross-class comparison errors.
        assert!(Expr::lit("x").lt(Expr::lit(1)).eval(&row![1], &[]).is_err());
    }

    #[test]
    fn is_null_family() {
        let n = Expr::lit(Value::Null);
        let isnull = Expr::Unary { op: UnaryOp::IsNull, expr: Box::new(n.clone()) };
        assert_eq!(ev(&isnull), Value::Bool(true));
        let notnull = Expr::Unary { op: UnaryOp::IsNotNull, expr: Box::new(Expr::lit(3)) };
        assert_eq!(ev(&notnull), Value::Bool(true));
    }

    #[test]
    fn case_expression() {
        let e = Expr::Case {
            branches: vec![
                (Expr::col(0).gt(Expr::lit(100)), Expr::lit("big")),
                (Expr::col(0).gt(Expr::lit(5)), Expr::lit("mid")),
            ],
            else_expr: Some(Box::new(Expr::lit("small"))),
        };
        assert_eq!(ev(&e), Value::str("mid"));
        let no_else =
            Expr::Case { branches: vec![(Expr::lit(false), Expr::lit(1))], else_expr: None };
        assert_eq!(ev(&no_else), Value::Null);
    }

    #[test]
    fn like_evaluation() {
        let like = |pat: &str, neg: bool| Expr::Like {
            expr: Box::new(Expr::col(2)),
            pattern: pat.to_string(),
            negated: neg,
        };
        assert_eq!(ev(&like("a%", false)), Value::Bool(true));
        assert_eq!(ev(&like("a%", true)), Value::Bool(false));
        assert_eq!(ev(&like("_bc", false)), Value::Bool(true));
        assert_eq!(ev(&like("x%", false)), Value::Bool(false));
        let null_like = Expr::Like {
            expr: Box::new(Expr::lit(Value::Null)),
            pattern: "a%".into(),
            negated: false,
        };
        assert_eq!(ev(&null_like), Value::Null);
    }

    #[test]
    fn correlated_references() {
        let e = Expr::Correlated { level: 0, index: 1 };
        let outer = [row![7, 8], row![100, 200]];
        assert_eq!(e.eval(&row![0], &outer).unwrap(), Value::Int(200));
        let e1 = Expr::Correlated { level: 1, index: 0 };
        assert_eq!(e1.eval(&row![0], &outer).unwrap(), Value::Int(7));
        assert!(e1.eval(&row![0], &outer[1..]).is_err());
        assert!(e.has_correlated());
        assert!(e.has_correlated_at(0));
        assert!(!e.has_correlated_at(1));
        assert!(!Expr::col(0).has_correlated());
    }

    #[test]
    fn column_collection_and_remap() {
        let e = Expr::col(2).gt(Expr::col(0)).and(Expr::col(2).eq(Expr::lit(1)));
        assert_eq!(e.columns().as_slice(), &[0, 2]);
        let remapped = e.remap_columns(&|c| if c == 2 { Some(0) } else { Some(5) }).unwrap();
        assert_eq!(remapped.columns().as_slice(), &[0, 5]);
        assert!(e.remap_columns(&|c| (c == 2).then_some(0)).is_none());
    }

    #[test]
    fn data_types() {
        let schema = Schema::new(vec![
            xmlpub_common::Field::new("a", DataType::Int),
            xmlpub_common::Field::new("b", DataType::Float),
        ]);
        assert_eq!(Expr::col(0).data_type(&schema), DataType::Int);
        assert_eq!(
            Expr::binary(BinOp::Add, Expr::col(0), Expr::col(0)).data_type(&schema),
            DataType::Int
        );
        assert_eq!(
            Expr::binary(BinOp::Div, Expr::col(0), Expr::col(0)).data_type(&schema),
            DataType::Float
        );
        assert_eq!(
            Expr::binary(BinOp::Add, Expr::col(0), Expr::col(1)).data_type(&schema),
            DataType::Float
        );
        assert_eq!(Expr::col(0).gt(Expr::col(1)).data_type(&schema), DataType::Bool);
    }

    #[test]
    fn display_renders_names() {
        let schema = Schema::new(vec![xmlpub_common::Field::qualified(
            "p",
            "p_retailprice",
            DataType::Float,
        )]);
        let e = Expr::col(0).gt_eq(Expr::lit(100));
        assert_eq!(e.display(&schema), "(p.p_retailprice >= 100)");
        assert_eq!(Expr::lit("x").to_string(), "'x'");
    }

    #[test]
    fn flip_and_classify() {
        assert_eq!(BinOp::Lt.flip(), BinOp::Gt);
        assert_eq!(BinOp::GtEq.flip(), BinOp::LtEq);
        assert_eq!(BinOp::Eq.flip(), BinOp::Eq);
        assert!(BinOp::Eq.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::And.is_logical());
    }

    #[test]
    fn negation() {
        assert_eq!(
            Expr::Unary { op: UnaryOp::Neg, expr: Box::new(Expr::lit(3)) }
                .eval(&row![0], &[])
                .unwrap(),
            Value::Int(-3)
        );
        assert_eq!(
            Expr::Unary { op: UnaryOp::Neg, expr: Box::new(Expr::lit(2.5)) }
                .eval(&row![0], &[])
                .unwrap(),
            Value::Float(-2.5)
        );
    }
}
