//! Predicate manipulation utilities.
//!
//! The optimizer rules constantly take predicates apart and put them back
//! together: selection pushdown splits conjunctions, the covering-range
//! analysis builds disjunctions over union branches, and the §4.1 rule
//! eliminates a selection inside the per-group query when it is *logically
//! equivalent* to the covering range pushed outside. Full logical
//! equivalence is undecidable in general; [`normalize`] implements the
//! conservative, sound structural check the paper's rule needs —
//! flattening and canonically ordering AND/OR trees, orienting
//! comparisons, and folding boolean literals.

use crate::expr::{BinOp, Expr};
use std::cmp::Ordering;
use xmlpub_common::Value;

/// Split a predicate into its top-level conjuncts. `a AND (b AND c)`
/// yields `[a, b, c]`; a non-AND expression yields itself.
pub fn conjuncts(expr: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    collect_conjuncts(expr, &mut out);
    out
}

fn collect_conjuncts(expr: &Expr, out: &mut Vec<Expr>) {
    match expr {
        Expr::Binary { op: BinOp::And, left, right } => {
            collect_conjuncts(left, out);
            collect_conjuncts(right, out);
        }
        other => out.push(other.clone()),
    }
}

/// AND a list of predicates back together. The empty list is `true`.
pub fn conjunction(mut preds: Vec<Expr>) -> Expr {
    match preds.len() {
        0 => Expr::lit(true),
        1 => preds.pop().unwrap(),
        _ => {
            let mut it = preds.into_iter();
            let first = it.next().unwrap();
            it.fold(first, |acc, p| acc.and(p))
        }
    }
}

/// OR a list of predicates together. The empty list is `false`.
pub fn disjunction(mut preds: Vec<Expr>) -> Expr {
    match preds.len() {
        0 => Expr::lit(false),
        1 => preds.pop().unwrap(),
        _ => {
            let mut it = preds.into_iter();
            let first = it.next().unwrap();
            it.fold(first, |acc, p| acc.or(p))
        }
    }
}

/// Canonical ordering on expressions used to sort AND/OR operand lists.
fn expr_order(a: &Expr, b: &Expr) -> Ordering {
    // Debug formatting is a stable total order for our AST and avoids
    // writing a bespoke 60-line comparator; these lists are tiny.
    format!("{a:?}").cmp(&format!("{b:?}"))
}

/// Normalise a predicate to a canonical structural form:
///
/// * flatten nested `AND`/`OR` chains and sort + dedup their operands;
/// * orient comparisons so the structurally smaller operand is on the
///   left (`5 < x` becomes `x > 5`);
/// * fold `true`/`false` identity/absorbing elements;
/// * drop double negation.
///
/// Two predicates with equal normal forms are logically equivalent (the
/// converse need not hold — the check is conservative).
pub fn normalize(expr: &Expr) -> Expr {
    match expr {
        Expr::Binary { op: op @ (BinOp::And | BinOp::Or), .. } => {
            let mut operands = Vec::new();
            flatten(expr, *op, &mut operands);
            let mut normed: Vec<Expr> = operands.iter().map(normalize).collect();
            // Fold boolean literals.
            let (identity, absorber) = match op {
                BinOp::And => (true, false),
                _ => (false, true),
            };
            if normed.iter().any(|e| *e == Expr::lit(absorber)) {
                return Expr::lit(absorber);
            }
            normed.retain(|e| *e != Expr::lit(identity));
            normed.sort_by(expr_order);
            normed.dedup();
            match op {
                BinOp::And => conjunction(normed),
                _ => disjunction(normed),
            }
        }
        Expr::Binary { op, left, right } if op.is_comparison() => {
            let l = normalize(left);
            let r = normalize(right);
            if expr_order(&l, &r) == Ordering::Greater {
                Expr::binary(op.flip(), r, l)
            } else {
                Expr::binary(*op, l, r)
            }
        }
        Expr::Binary { op, left, right } => Expr::binary(*op, normalize(left), normalize(right)),
        Expr::Unary { op: crate::expr::UnaryOp::Not, expr: inner } => {
            let n = normalize(inner);
            match n {
                // NOT NOT e = e (sound in 3VL).
                Expr::Unary { op: crate::expr::UnaryOp::Not, expr: e } => *e,
                Expr::Literal(Value::Bool(b)) => Expr::lit(!b),
                other => other.not(),
            }
        }
        Expr::Unary { op, expr: inner } => {
            Expr::Unary { op: *op, expr: Box::new(normalize(inner)) }
        }
        Expr::Case { branches, else_expr } => Expr::Case {
            branches: branches.iter().map(|(c, r)| (normalize(c), normalize(r))).collect(),
            else_expr: else_expr.as_ref().map(|e| Box::new(normalize(e))),
        },
        Expr::Like { expr: inner, pattern, negated } => Expr::Like {
            expr: Box::new(normalize(inner)),
            pattern: pattern.clone(),
            negated: *negated,
        },
        leaf => leaf.clone(),
    }
}

fn flatten(expr: &Expr, op: BinOp, out: &mut Vec<Expr>) {
    match expr {
        Expr::Binary { op: o, left, right } if *o == op => {
            flatten(left, op, out);
            flatten(right, op, out);
        }
        other => out.push(other.clone()),
    }
}

/// Conservative logical-equivalence check: equal normal forms.
pub fn equivalent(a: &Expr, b: &Expr) -> bool {
    normalize(a) == normalize(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: usize) -> Expr {
        Expr::col(i)
    }

    #[test]
    fn conjunct_splitting() {
        let p = c(0).eq(Expr::lit(1)).and(c(1).gt(Expr::lit(2)).and(c(2).lt(Expr::lit(3))));
        let cs = conjuncts(&p);
        assert_eq!(cs.len(), 3);
        assert_eq!(conjuncts(&c(0).eq(Expr::lit(1))).len(), 1);
    }

    #[test]
    fn conjunction_roundtrip() {
        let parts = vec![c(0).eq(Expr::lit(1)), c(1).gt(Expr::lit(2))];
        let joined = conjunction(parts.clone());
        assert_eq!(conjuncts(&joined), parts);
        assert_eq!(conjunction(vec![]), Expr::lit(true));
        assert_eq!(disjunction(vec![]), Expr::lit(false));
        assert_eq!(conjunction(vec![c(0)]), c(0));
    }

    #[test]
    fn normalize_sorts_and_dedups_conjuncts() {
        let a = c(1).gt(Expr::lit(2)).and(c(0).eq(Expr::lit(1)));
        let b = c(0).eq(Expr::lit(1)).and(c(1).gt(Expr::lit(2)));
        assert!(equivalent(&a, &b));
        let dup = c(0).eq(Expr::lit(1)).and(c(0).eq(Expr::lit(1)));
        assert!(equivalent(&dup, &c(0).eq(Expr::lit(1))));
    }

    #[test]
    fn normalize_orients_comparisons() {
        let a = Expr::lit(5).lt(c(0));
        let b = c(0).gt(Expr::lit(5));
        assert!(equivalent(&a, &b));
        let a = Expr::lit(5).eq(c(0));
        let b = c(0).eq(Expr::lit(5));
        assert!(equivalent(&a, &b));
    }

    #[test]
    fn normalize_folds_literals() {
        let p = c(0).gt(Expr::lit(1));
        assert!(equivalent(&p.clone().and(Expr::lit(true)), &p));
        assert!(equivalent(&p.clone().and(Expr::lit(false)), &Expr::lit(false)));
        assert!(equivalent(&p.clone().or(Expr::lit(false)), &p));
        assert!(equivalent(&p.clone().or(Expr::lit(true)), &Expr::lit(true)));
    }

    #[test]
    fn double_negation() {
        let p = c(0).gt(Expr::lit(1));
        assert!(equivalent(&p.clone().not().not(), &p));
        assert!(equivalent(&Expr::lit(true).not(), &Expr::lit(false)));
    }

    #[test]
    fn or_flattening() {
        let a = c(0).eq(Expr::lit(1)).or(c(1).eq(Expr::lit(2)).or(c(2).eq(Expr::lit(3))));
        let b = c(2).eq(Expr::lit(3)).or(c(0).eq(Expr::lit(1))).or(c(1).eq(Expr::lit(2)));
        assert!(equivalent(&a, &b));
    }

    #[test]
    fn inequivalent_predicates_stay_distinct() {
        assert!(!equivalent(&c(0).gt(Expr::lit(1)), &c(0).gt_eq(Expr::lit(1))));
        assert!(!equivalent(
            &c(0).eq(Expr::lit(1)).and(c(1).eq(Expr::lit(2))),
            &c(0).eq(Expr::lit(1)).or(c(1).eq(Expr::lit(2)))
        ));
    }

    #[test]
    fn covering_range_style_equivalence() {
        // The shape produced by the §4.1 analysis: a disjunction of the
        // two union branches' selection conditions, in either order.
        let brand_a = c(3).eq(Expr::lit("Brand#A"));
        let brand_b = c(3).eq(Expr::lit("Brand#B"));
        let range1 = brand_a.clone().or(brand_b.clone());
        let range2 = brand_b.or(brand_a);
        assert!(equivalent(&range1, &range2));
    }
}
