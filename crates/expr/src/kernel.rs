//! Column-at-a-time expression kernels over the columnar batch layout.
//!
//! [`Expr::eval_column`] is the columnar counterpart of
//! [`Expr::eval_batch`]: one AST dispatch per *batch*, with typed inner
//! loops over unboxed column data wherever both operands specialise to a
//! compatible class (integer/float arithmetic and comparisons, Kleene
//! logic over booleans, null tests straight off the bitmap). Every
//! combination a typed kernel does not cover routes through the same
//! scalar `eval_binary`/`eval_unary` the row path uses, value by value
//! in row order — so results, error messages, *and* which error
//! surfaces first are identical to `eval_batch` on every input:
//!
//! * typed kernels engage only for operand classes whose combination
//!   cannot error (division by zero yields NULL, not an error);
//! * operand columns are still evaluated operand-major (left subtree
//!   fully, then right), exactly like `eval_batch`;
//! * the generic fallback combines values in row order, exactly like
//!   `eval_batch`'s zip loop.
//!
//! Exact-value discipline: `Int` and `Float` never coerce into each
//! other's columns (they render differently), integer ops wrap, the
//! float path normalises `-0.0` to `0.0` while integer division does
//! not — all mirrored from the scalar `arith`.

use crate::expr::{eval_binary, eval_unary, BinOp, Expr, UnaryOp};
use std::cmp::Ordering;
use std::sync::Arc;
use xmlpub_common::{ColumnVec, Error, NullBitmap, Result, Tuple, TupleBatch, Value};

impl Expr {
    /// Evaluate over a columnar batch, producing one output column — the
    /// column-at-a-time counterpart of [`Expr::eval_batch`]. `CASE` and
    /// `LIKE` fall back to the row path (short-circuiting branches and
    /// per-row pattern state don't vectorise profitably).
    pub fn eval_column(&self, batch: &TupleBatch, outer: &[Tuple]) -> Result<ColumnVec> {
        match self {
            Expr::Column(i) => batch.columns().get(*i).cloned().ok_or_else(|| {
                Error::exec(format!(
                    "column #{i} out of range for {}-wide row",
                    batch.schema().len()
                ))
            }),
            Expr::Correlated { level, index } => {
                let pos = outer
                    .len()
                    .checked_sub(1 + level)
                    .ok_or_else(|| Error::exec(format!("no outer binding at level {level}")))?;
                let v = outer[pos].values().get(*index).cloned().ok_or_else(|| {
                    Error::exec(format!("correlated column #{index} out of range at level {level}"))
                })?;
                Ok(ColumnVec::broadcast(v, batch.len()))
            }
            Expr::Literal(v) => Ok(ColumnVec::broadcast(v.clone(), batch.len())),
            Expr::Unary { op, expr } => {
                let v = expr.eval_column(batch, outer)?;
                unary_kernel(*op, v)
            }
            Expr::Binary { op, left, right } => {
                let l = left.eval_column(batch, outer)?;
                let r = right.eval_column(batch, outer)?;
                binary_kernel(*op, l, r)
            }
            Expr::Case { .. } | Expr::Like { .. } => {
                Ok(ColumnVec::from_values(self.eval_batch(batch.rows(), outer)?))
            }
        }
    }

    /// Evaluate as a selection predicate over a columnar batch, producing
    /// a selection mask (SQL WHERE semantics — false and NULL reject).
    pub fn eval_column_predicate(&self, batch: &TupleBatch, outer: &[Tuple]) -> Result<Vec<bool>> {
        let col = self.eval_column(batch, outer)?;
        Ok(match col {
            ColumnVec::Bool { data, nulls } => {
                data.iter().enumerate().map(|(i, b)| *b && !nulls.is_null(i)).collect()
            }
            ColumnVec::Null { len } => vec![false; len],
            other => (0..other.len()).map(|i| other.get(i).as_bool() == Some(true)).collect(),
        })
    }
}

fn unary_kernel(op: UnaryOp, v: ColumnVec) -> Result<ColumnVec> {
    let len = v.len();
    match op {
        UnaryOp::IsNull => Ok(ColumnVec::Bool {
            data: (0..len).map(|i| v.is_null(i)).collect(),
            nulls: NullBitmap::all_valid(len),
        }),
        UnaryOp::IsNotNull => Ok(ColumnVec::Bool {
            data: (0..len).map(|i| !v.is_null(i)).collect(),
            nulls: NullBitmap::all_valid(len),
        }),
        UnaryOp::Not => match v {
            ColumnVec::Bool { data, nulls } => {
                Ok(ColumnVec::Bool { data: data.iter().map(|b| !b).collect(), nulls })
            }
            ColumnVec::Null { len } => Ok(ColumnVec::Null { len }),
            other => fallback_unary(op, other),
        },
        UnaryOp::Neg => match v {
            ColumnVec::Int { data, nulls } => {
                Ok(ColumnVec::Int { data: data.iter().map(|i| -i).collect(), nulls })
            }
            ColumnVec::Float { data, nulls } => {
                Ok(ColumnVec::Float { data: data.iter().map(|f| -f).collect(), nulls })
            }
            ColumnVec::Null { len } => Ok(ColumnVec::Null { len }),
            other => fallback_unary(op, other),
        },
    }
}

fn binary_kernel(op: BinOp, l: ColumnVec, r: ColumnVec) -> Result<ColumnVec> {
    debug_assert_eq!(l.len(), r.len(), "operand column length mismatch");
    use BinOp::*;
    match op {
        Add | Sub | Mul | Div | Mod => arith_kernel(op, l, r),
        Eq | NotEq | Lt | LtEq | Gt | GtEq => cmp_kernel(op, l, r),
        And | Or => logic_kernel(op, l, r),
    }
}

/// Borrowed view of a numeric column's payload.
enum Num<'a> {
    I(&'a [i64]),
    F(&'a [f64]),
}

impl Num<'_> {
    fn get(&self, i: usize) -> f64 {
        match self {
            Num::I(d) => d[i] as f64,
            Num::F(d) => d[i],
        }
    }
}

fn num_parts(c: &ColumnVec) -> Option<(Num<'_>, &NullBitmap)> {
    match c {
        ColumnVec::Int { data, nulls } => Some((Num::I(data), nulls)),
        ColumnVec::Float { data, nulls } => Some((Num::F(data), nulls)),
        _ => None,
    }
}

fn arith_kernel(op: BinOp, l: ColumnVec, r: ColumnVec) -> Result<ColumnVec> {
    let len = l.len();
    // A wholly-NULL operand makes every row NULL: the scalar path checks
    // nullness before it type-checks, so this holds for any other side.
    if matches!(l, ColumnVec::Null { .. }) || matches!(r, ColumnVec::Null { .. }) {
        return Ok(ColumnVec::Null { len });
    }
    if let (ColumnVec::Int { data: a, nulls: na }, ColumnVec::Int { data: b, nulls: nb }) = (&l, &r)
    {
        return Ok(int_arith(op, a, b, na, nb));
    }
    if num_parts(&l).is_some() && num_parts(&r).is_some() {
        let (a, na) = num_parts(&l).expect("checked");
        let (b, nb) = num_parts(&r).expect("checked");
        return Ok(float_arith(op, &a, &b, na, nb));
    }
    fallback_binary(op, &l, &r)
}

/// Integer arithmetic stays integral except division, which widens to
/// float *without* `-0.0` normalisation — both mirrored from `arith`.
fn int_arith(op: BinOp, a: &[i64], b: &[i64], na: &NullBitmap, nb: &NullBitmap) -> ColumnVec {
    let len = a.len();
    let mut nulls = NullBitmap::new();
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul => {
            let mut data = Vec::with_capacity(len);
            for i in 0..len {
                nulls.push(na.is_null(i) || nb.is_null(i));
                data.push(match op {
                    BinOp::Add => a[i].wrapping_add(b[i]),
                    BinOp::Sub => a[i].wrapping_sub(b[i]),
                    _ => a[i].wrapping_mul(b[i]),
                });
            }
            ColumnVec::Int { data, nulls }
        }
        BinOp::Mod => {
            let mut data = Vec::with_capacity(len);
            for i in 0..len {
                let null = na.is_null(i) || nb.is_null(i) || b[i] == 0;
                nulls.push(null);
                data.push(if null { 0 } else { a[i].wrapping_rem(b[i]) });
            }
            ColumnVec::Int { data, nulls }
        }
        BinOp::Div => {
            let mut data = Vec::with_capacity(len);
            for i in 0..len {
                let null = na.is_null(i) || nb.is_null(i) || b[i] == 0;
                nulls.push(null);
                data.push(if null { 0.0 } else { a[i] as f64 / b[i] as f64 });
            }
            ColumnVec::Float { data, nulls }
        }
        _ => unreachable!("arith_kernel dispatches only arithmetic ops"),
    }
}

/// Mixed int/float arithmetic through f64, with the scalar path's
/// `-0.0 → 0.0` normalisation on every result.
fn float_arith(op: BinOp, a: &Num<'_>, b: &Num<'_>, na: &NullBitmap, nb: &NullBitmap) -> ColumnVec {
    let len = na.len();
    let mut data = Vec::with_capacity(len);
    let mut nulls = NullBitmap::new();
    for i in 0..len {
        let mut null = na.is_null(i) || nb.is_null(i);
        let mut v = 0.0;
        if !null {
            let (x, y) = (a.get(i), b.get(i));
            v = match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => {
                    if y == 0.0 {
                        null = true;
                        0.0
                    } else {
                        x / y
                    }
                }
                BinOp::Mod => {
                    if y == 0.0 {
                        null = true;
                        0.0
                    } else {
                        x % y
                    }
                }
                _ => unreachable!("arith_kernel dispatches only arithmetic ops"),
            };
            // Normalise -0.0 so grouping keys derived from arithmetic
            // stay canonical (mirrors `arith`).
            if v == 0.0 {
                v = 0.0;
            }
        }
        nulls.push(null);
        data.push(v);
    }
    ColumnVec::Float { data, nulls }
}

fn ord_to_bool(op: BinOp, ord: Ordering) -> bool {
    match op {
        BinOp::Eq => ord == Ordering::Equal,
        BinOp::NotEq => ord != Ordering::Equal,
        BinOp::Lt => ord == Ordering::Less,
        BinOp::LtEq => ord != Ordering::Greater,
        BinOp::Gt => ord == Ordering::Greater,
        BinOp::GtEq => ord != Ordering::Less,
        _ => unreachable!("cmp_kernel dispatches only comparisons"),
    }
}

fn cmp_kernel(op: BinOp, l: ColumnVec, r: ColumnVec) -> Result<ColumnVec> {
    let len = l.len();
    // Comparison with NULL is NULL before it is a type error.
    if matches!(l, ColumnVec::Null { .. }) || matches!(r, ColumnVec::Null { .. }) {
        return Ok(ColumnVec::Null { len });
    }
    // Numeric vs numeric: i64 order on pure-int pairs (exact beyond
    // 2^53), f64 total order once a float is involved — as `total_cmp`.
    if let (ColumnVec::Int { data: a, nulls: na }, ColumnVec::Int { data: b, nulls: nb }) = (&l, &r)
    {
        return Ok(bool_col(len, na, nb, |i| ord_to_bool(op, a[i].cmp(&b[i]))));
    }
    if let (Some((a, na)), Some((b, nb))) = (num_parts(&l), num_parts(&r)) {
        return Ok(bool_col(len, na, nb, |i| ord_to_bool(op, a.get(i).total_cmp(&b.get(i)))));
    }
    if let (
        ColumnVec::Str { dict: d1, codes: c1, nulls: n1 },
        ColumnVec::Str { dict: d2, codes: c2, nulls: n2 },
    ) = (&l, &r)
    {
        // Shared dictionary: code equality is string equality.
        if matches!(op, BinOp::Eq | BinOp::NotEq) && Arc::ptr_eq(d1, d2) {
            return Ok(bool_col(len, n1, n2, |i| {
                ord_to_bool(op, if c1[i] == c2[i] { Ordering::Equal } else { Ordering::Less })
            }));
        }
        return Ok(bool_col(len, n1, n2, |i| {
            ord_to_bool(op, d1.value(c1[i]).as_ref().cmp(d2.value(c2[i]).as_ref()))
        }));
    }
    if let (ColumnVec::Bool { data: a, nulls: na }, ColumnVec::Bool { data: b, nulls: nb }) =
        (&l, &r)
    {
        return Ok(bool_col(len, na, nb, |i| ord_to_bool(op, a[i].cmp(&b[i]))));
    }
    fallback_binary(op, &l, &r)
}

/// A boolean result column: NULL where either input is, `f(i)` elsewhere.
fn bool_col(len: usize, na: &NullBitmap, nb: &NullBitmap, f: impl Fn(usize) -> bool) -> ColumnVec {
    let mut data = Vec::with_capacity(len);
    let mut nulls = NullBitmap::new();
    for i in 0..len {
        let null = na.is_null(i) || nb.is_null(i);
        nulls.push(null);
        data.push(if null { false } else { f(i) });
    }
    ColumnVec::Bool { data, nulls }
}

/// Three-valued view of a boolean-compatible column slot.
fn tv(c: &ColumnVec, i: usize) -> Option<bool> {
    match c {
        ColumnVec::Bool { data, nulls } => (!nulls.is_null(i)).then(|| data[i]),
        ColumnVec::Null { .. } => None,
        _ => unreachable!("logic_kernel guards the operand classes"),
    }
}

fn logic_kernel(op: BinOp, l: ColumnVec, r: ColumnVec) -> Result<ColumnVec> {
    let boolish = |c: &ColumnVec| matches!(c, ColumnVec::Bool { .. } | ColumnVec::Null { .. });
    if !boolish(&l) || !boolish(&r) {
        // Non-boolean operands raise per-row type errors (even when the
        // other side would short-circuit) — keep the scalar semantics.
        return fallback_binary(op, &l, &r);
    }
    let len = l.len();
    let mut data = Vec::with_capacity(len);
    let mut nulls = NullBitmap::new();
    for i in 0..len {
        let out = match (op, tv(&l, i), tv(&r, i)) {
            (BinOp::And, Some(false), _) | (BinOp::And, _, Some(false)) => Some(false),
            (BinOp::And, Some(true), Some(true)) => Some(true),
            (BinOp::And, ..) => None,
            (BinOp::Or, Some(true), _) | (BinOp::Or, _, Some(true)) => Some(true),
            (BinOp::Or, Some(false), Some(false)) => Some(false),
            (BinOp::Or, ..) => None,
            _ => unreachable!("logic_kernel dispatches only And/Or"),
        };
        nulls.push(out.is_none());
        data.push(out.unwrap_or(false));
    }
    Ok(ColumnVec::Bool { data, nulls })
}

/// Row-order scalar fallback: identical values, identical errors,
/// identical first-error selection to `eval_batch`'s combine loop.
fn fallback_binary(op: BinOp, l: &ColumnVec, r: &ColumnVec) -> Result<ColumnVec> {
    let vals: Result<Vec<Value>> =
        (0..l.len()).map(|i| eval_binary(op, l.get(i), r.get(i))).collect();
    Ok(ColumnVec::from_values(vals?))
}

fn fallback_unary(op: UnaryOp, v: ColumnVec) -> Result<ColumnVec> {
    let vals: Result<Vec<Value>> = (0..v.len()).map(|i| eval_unary(op, v.get(i))).collect();
    Ok(ColumnVec::from_values(vals?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlpub_common::{row, DataType, Field, Schema};

    fn batch() -> TupleBatch {
        let schema = Schema::new(vec![
            Field::new("i", DataType::Int),
            Field::new("f", DataType::Float),
            Field::new("s", DataType::Str),
            Field::new("b", DataType::Bool),
        ]);
        TupleBatch::new(
            schema,
            vec![
                row![10, 2.5, "abc", true],
                row![Value::Null, -0.0, "zz", false],
                row![0, Value::Null, Value::Null, Value::Null],
                row![-3, 4.0, "abc", true],
            ],
        )
    }

    /// The oracle: every expression must produce exactly what the row
    /// path produces, value by value.
    fn assert_matches_row_path(e: &Expr) {
        let b = batch();
        let expected = e.eval_batch(b.rows(), &[]).unwrap();
        let col = e.eval_column(&b, &[]).unwrap();
        let got: Vec<Value> = (0..col.len()).map(|i| col.get(i)).collect();
        assert_eq!(got, expected, "column kernel diverged for {e}");
        let mask = e.eval_column_predicate(&b, &[]).unwrap();
        let row_mask = e.eval_batch_predicate(b.rows(), &[]).unwrap();
        assert_eq!(mask, row_mask, "predicate mask diverged for {e}");
    }

    #[test]
    fn kernels_match_row_semantics() {
        use BinOp::*;
        let exprs = vec![
            Expr::col(0),
            Expr::lit(7),
            Expr::binary(Add, Expr::col(0), Expr::lit(1)),
            Expr::binary(Mul, Expr::col(0), Expr::col(0)),
            Expr::binary(Div, Expr::col(0), Expr::lit(0)),
            Expr::binary(Div, Expr::col(0), Expr::lit(-4)),
            Expr::binary(Mod, Expr::col(0), Expr::lit(3)),
            Expr::binary(Add, Expr::col(0), Expr::col(1)),
            Expr::binary(Div, Expr::col(1), Expr::lit(0.0)),
            Expr::binary(Lt, Expr::col(0), Expr::lit(5)),
            Expr::binary(GtEq, Expr::col(1), Expr::lit(2.5)),
            Expr::binary(Eq, Expr::col(2), Expr::lit("abc")),
            Expr::binary(NotEq, Expr::col(2), Expr::lit("zz")),
            Expr::binary(Eq, Expr::col(3), Expr::lit(true)),
            Expr::binary(Lt, Expr::col(0), Expr::col(1)),
            Expr::binary(
                And,
                Expr::binary(Gt, Expr::col(0), Expr::lit(0)),
                Expr::binary(Eq, Expr::col(2), Expr::lit("abc")),
            ),
            Expr::binary(Or, Expr::col(3), Expr::binary(Lt, Expr::col(1), Expr::lit(0.0))),
            Expr::Unary { op: UnaryOp::IsNull, expr: Box::new(Expr::col(0)) },
            Expr::Unary { op: UnaryOp::IsNotNull, expr: Box::new(Expr::col(2)) },
            Expr::col(3).not(),
            Expr::Unary { op: UnaryOp::Neg, expr: Box::new(Expr::col(1)) },
            Expr::Unary { op: UnaryOp::Neg, expr: Box::new(Expr::col(0)) },
            Expr::Literal(Value::Null),
            Expr::binary(Add, Expr::col(0), Expr::Literal(Value::Null)),
            Expr::binary(Eq, Expr::Literal(Value::Null), Expr::col(0)),
        ];
        for e in &exprs {
            assert_matches_row_path(e);
        }
    }

    #[test]
    fn minus_zero_discipline_matches_scalar_path() {
        // Int/Int division does NOT normalise -0.0; the float path does.
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Int),
            Field::new("x", DataType::Float),
        ]);
        let b = TupleBatch::new(schema, vec![row![0, -5, -0.5]]);
        for e in [
            Expr::binary(BinOp::Div, Expr::col(0), Expr::col(1)),
            Expr::binary(BinOp::Mul, Expr::col(2), Expr::lit(0.0)),
        ] {
            let expected = e.eval_batch(b.rows(), &[]).unwrap();
            let col = e.eval_column(&b, &[]).unwrap();
            let got: Vec<Value> = (0..col.len()).map(|i| col.get(i)).collect();
            // Bit-exact comparison (render distinguishes -0.0 from 0.0).
            assert_eq!(got[0].render(), expected[0].render(), "for {e}");
        }
    }

    #[test]
    fn errors_match_row_path() {
        let b = batch();
        let bad = Expr::binary(BinOp::Add, Expr::col(2), Expr::lit(1));
        let row_err = bad.eval_batch(b.rows(), &[]).unwrap_err().to_string();
        let col_err = bad.eval_column(&b, &[]).unwrap_err().to_string();
        assert_eq!(row_err, col_err);
        let cmp = Expr::binary(BinOp::Lt, Expr::col(0), Expr::col(3));
        assert_eq!(
            cmp.eval_batch(b.rows(), &[]).unwrap_err().to_string(),
            cmp.eval_column(&b, &[]).unwrap_err().to_string()
        );
        let oob = Expr::col(9);
        assert!(oob.eval_column(&b, &[]).is_err());
    }

    #[test]
    fn correlated_references_broadcast() {
        let b = batch();
        let e = Expr::binary(BinOp::Add, Expr::col(0), Expr::Correlated { level: 0, index: 0 });
        let outer = vec![row![100]];
        let expected = e.eval_batch(b.rows(), &outer).unwrap();
        let col = e.eval_column(&b, &outer).unwrap();
        let got: Vec<Value> = (0..col.len()).map(|i| col.get(i)).collect();
        assert_eq!(got, expected);
        assert!(e.eval_column(&b, &[]).is_err());
    }
}
