//! Aggregate functions and their incremental accumulators.
//!
//! The paper's `aggregate` and `groupby` operators carry a list of
//! [`AggExpr`]s. Each evaluates its argument expression per input row and
//! folds the value into an [`Accumulator`]. Empty-input behaviour is the
//! crux of the paper's *emptyOnEmpty* analysis (§4.1): a scalar aggregate
//! over the empty relation is **not** empty — `count` returns 0 and the
//! others return NULL — which is exactly why selections can only be pushed
//! out of a per-group query when `PGQ(∅) = ∅`.

use crate::expr::Expr;
use std::collections::BTreeSet;
use std::fmt;
use xmlpub_common::{DataType, Error, Result, Schema, Tuple, Value};

/// The supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `count(*)` — counts rows, never NULL.
    CountStar,
    /// `count(e)` — counts non-NULL values of `e`.
    Count,
    /// `count(distinct e)` — counts distinct non-NULL values.
    CountDistinct,
    /// `sum(e)`; NULL on empty/all-NULL input.
    Sum,
    /// `avg(e)`; NULL on empty/all-NULL input.
    Avg,
    /// `min(e)`.
    Min,
    /// `max(e)`.
    Max,
}

impl AggFunc {
    /// SQL name.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::CountStar => "count(*)",
            AggFunc::Count => "count",
            AggFunc::CountDistinct => "count(distinct)",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }
}

/// An aggregate call: function plus argument (absent for `count(*)`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AggExpr {
    /// Which aggregate.
    pub func: AggFunc,
    /// Argument expression; `None` only for `count(*)`.
    pub arg: Option<Expr>,
    /// Output column name.
    pub output_name: String,
}

impl AggExpr {
    /// `count(*) as name`
    pub fn count_star(name: impl Into<String>) -> Self {
        AggExpr { func: AggFunc::CountStar, arg: None, output_name: name.into() }
    }

    /// A unary aggregate call.
    pub fn new(func: AggFunc, arg: Expr, name: impl Into<String>) -> Self {
        debug_assert!(func != AggFunc::CountStar);
        AggExpr { func, arg: Some(arg), output_name: name.into() }
    }

    /// `avg(e) as name`
    pub fn avg(arg: Expr, name: impl Into<String>) -> Self {
        AggExpr::new(AggFunc::Avg, arg, name)
    }

    /// `sum(e) as name`
    pub fn sum(arg: Expr, name: impl Into<String>) -> Self {
        AggExpr::new(AggFunc::Sum, arg, name)
    }

    /// `min(e) as name`
    pub fn min(arg: Expr, name: impl Into<String>) -> Self {
        AggExpr::new(AggFunc::Min, arg, name)
    }

    /// `max(e) as name`
    pub fn max(arg: Expr, name: impl Into<String>) -> Self {
        AggExpr::new(AggFunc::Max, arg, name)
    }

    /// `count(e) as name`
    pub fn count(arg: Expr, name: impl Into<String>) -> Self {
        AggExpr::new(AggFunc::Count, arg, name)
    }

    /// The static output type against an input schema.
    pub fn data_type(&self, schema: &Schema) -> DataType {
        match self.func {
            AggFunc::CountStar | AggFunc::Count | AggFunc::CountDistinct => DataType::Int,
            AggFunc::Avg => DataType::Float,
            AggFunc::Sum => match self.arg.as_ref().map(|a| a.data_type(schema)) {
                Some(DataType::Int) => DataType::Int,
                _ => DataType::Float,
            },
            AggFunc::Min | AggFunc::Max => {
                self.arg.as_ref().map(|a| a.data_type(schema)).unwrap_or(DataType::Null)
            }
        }
    }

    /// The local input columns this aggregate reads.
    pub fn columns(&self) -> xmlpub_common::ColumnSet {
        self.arg.as_ref().map(|a| a.columns()).unwrap_or_default()
    }

    /// Build a fresh accumulator for one group.
    pub fn accumulator(&self) -> Accumulator {
        Accumulator::new(self.func)
    }

    /// Fold one input row into an accumulator.
    pub fn update(&self, acc: &mut Accumulator, row: &Tuple, outer: &[Tuple]) -> Result<()> {
        let v = match &self.arg {
            Some(e) => e.eval(row, outer)?,
            None => Value::Int(1), // count(*) ignores the value
        };
        acc.update(v)
    }

    /// Fold a batch of input rows into an accumulator — the vectorized
    /// counterpart of [`AggExpr::update`]: the argument expression is
    /// evaluated once per batch instead of once per row.
    pub fn update_batch(
        &self,
        acc: &mut Accumulator,
        rows: &[Tuple],
        outer: &[Tuple],
    ) -> Result<()> {
        match &self.arg {
            Some(e) => {
                for v in e.eval_batch(rows, outer)? {
                    acc.update(v)?;
                }
            }
            None => {
                for _ in rows {
                    acc.update(Value::Int(1))?;
                }
            }
        }
        Ok(())
    }

    /// Remap input column indices (see [`Expr::remap_columns`]).
    pub fn remap_columns(&self, mapping: &impl Fn(usize) -> Option<usize>) -> Option<AggExpr> {
        let arg = match &self.arg {
            Some(a) => Some(a.remap_columns(mapping)?),
            None => None,
        };
        Some(AggExpr { func: self.func, arg, output_name: self.output_name.clone() })
    }

    /// Render against a schema.
    pub fn display(&self, schema: &Schema) -> String {
        match (&self.func, &self.arg) {
            (AggFunc::CountStar, _) => "count(*)".to_string(),
            (AggFunc::CountDistinct, Some(a)) => {
                format!("count(distinct {})", a.display(schema))
            }
            (f, Some(a)) => format!("{}({})", f.name(), a.display(schema)),
            (f, None) => format!("{}(?)", f.name()),
        }
    }
}

impl fmt::Display for AggExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display(&Schema::empty()))
    }
}

/// Incremental state for one aggregate over one group.
#[derive(Debug, Clone)]
pub enum Accumulator {
    /// Row counter (`count(*)` / `count(e)`).
    Count { n: i64, count_nulls: bool },
    /// Distinct-value counter.
    CountDistinct { seen: BTreeSet<Value> },
    /// Running sum; `int_overflowed` keeps integer sums integral until a
    /// float shows up.
    Sum { sum_f: f64, sum_i: i64, any: bool, all_int: bool },
    /// Running sum + count for the mean.
    Avg { sum: f64, n: i64 },
    /// Running minimum.
    Min { v: Option<Value> },
    /// Running maximum.
    Max { v: Option<Value> },
}

impl Accumulator {
    /// Fresh state for the given function.
    pub fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::CountStar => Accumulator::Count { n: 0, count_nulls: true },
            AggFunc::Count => Accumulator::Count { n: 0, count_nulls: false },
            AggFunc::CountDistinct => Accumulator::CountDistinct { seen: BTreeSet::new() },
            AggFunc::Sum => Accumulator::Sum { sum_f: 0.0, sum_i: 0, any: false, all_int: true },
            AggFunc::Avg => Accumulator::Avg { sum: 0.0, n: 0 },
            AggFunc::Min => Accumulator::Min { v: None },
            AggFunc::Max => Accumulator::Max { v: None },
        }
    }

    /// Fold one value.
    pub fn update(&mut self, v: Value) -> Result<()> {
        match self {
            Accumulator::Count { n, count_nulls } => {
                if *count_nulls || !v.is_null() {
                    *n += 1;
                }
            }
            Accumulator::CountDistinct { seen } => {
                if !v.is_null() {
                    seen.insert(v);
                }
            }
            Accumulator::Sum { sum_f, sum_i, any, all_int } => match v {
                Value::Null => {}
                Value::Int(i) => {
                    *any = true;
                    *sum_i = sum_i.wrapping_add(i);
                    *sum_f += i as f64;
                }
                Value::Float(f) => {
                    *any = true;
                    *all_int = false;
                    *sum_f += f;
                }
                other => return Err(Error::exec(format!("sum of non-number {other}"))),
            },
            Accumulator::Avg { sum, n } => match v {
                Value::Null => {}
                other => {
                    let f = other
                        .as_f64()
                        .ok_or_else(|| Error::exec(format!("avg of non-number {other}")))?;
                    *sum += f;
                    *n += 1;
                }
            },
            Accumulator::Min { v: cur } => {
                if !v.is_null() && cur.as_ref().map(|c| v < *c).unwrap_or(true) {
                    *cur = Some(v);
                }
            }
            Accumulator::Max { v: cur } => {
                if !v.is_null() && cur.as_ref().map(|c| v > *c).unwrap_or(true) {
                    *cur = Some(v);
                }
            }
        }
        Ok(())
    }

    /// Produce the aggregate result. Note the empty-input cases: counts
    /// give 0, everything else gives NULL — this is what makes a scalar
    /// aggregate *not* emptyOnEmpty in the paper's analysis.
    pub fn finish(&self) -> Value {
        match self {
            Accumulator::Count { n, .. } => Value::Int(*n),
            Accumulator::CountDistinct { seen } => Value::Int(seen.len() as i64),
            Accumulator::Sum { sum_f, sum_i, any, all_int } => {
                if !*any {
                    Value::Null
                } else if *all_int {
                    Value::Int(*sum_i)
                } else {
                    Value::Float(*sum_f)
                }
            }
            Accumulator::Avg { sum, n } => {
                if *n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / *n as f64)
                }
            }
            Accumulator::Min { v } | Accumulator::Max { v } => v.clone().unwrap_or(Value::Null),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlpub_common::row;

    fn run(agg: &AggExpr, rows: &[Tuple]) -> Value {
        let mut acc = agg.accumulator();
        for r in rows {
            agg.update(&mut acc, r, &[]).unwrap();
        }
        acc.finish()
    }

    #[test]
    fn count_star_vs_count() {
        let rows = vec![row![1], row![Value::Null], row![3]];
        assert_eq!(run(&AggExpr::count_star("c"), &rows), Value::Int(3));
        assert_eq!(run(&AggExpr::count(Expr::col(0), "c"), &rows), Value::Int(2));
    }

    #[test]
    fn count_distinct() {
        let rows = vec![row![1], row![1], row![2], row![Value::Null]];
        let agg = AggExpr::new(AggFunc::CountDistinct, Expr::col(0), "cd");
        assert_eq!(run(&agg, &rows), Value::Int(2));
    }

    #[test]
    fn sum_stays_integer_until_float() {
        let rows = vec![row![1], row![2]];
        assert_eq!(run(&AggExpr::sum(Expr::col(0), "s"), &rows), Value::Int(3));
        let rows = vec![row![1], row![2.5]];
        assert_eq!(run(&AggExpr::sum(Expr::col(0), "s"), &rows), Value::Float(3.5));
    }

    #[test]
    fn avg_ignores_nulls() {
        let rows = vec![row![2], row![Value::Null], row![4]];
        assert_eq!(run(&AggExpr::avg(Expr::col(0), "a"), &rows), Value::Float(3.0));
    }

    #[test]
    fn min_max() {
        let rows = vec![row![3], row![1], row![2], row![Value::Null]];
        assert_eq!(run(&AggExpr::min(Expr::col(0), "m"), &rows), Value::Int(1));
        assert_eq!(run(&AggExpr::max(Expr::col(0), "m"), &rows), Value::Int(3));
        let srows = vec![row!["b"], row!["a"]];
        assert_eq!(run(&AggExpr::min(Expr::col(0), "m"), &srows), Value::str("a"));
    }

    #[test]
    fn empty_input_results() {
        // The paper's §4.1 point: count(∅)=0 (a row!), others NULL.
        assert_eq!(run(&AggExpr::count_star("c"), &[]), Value::Int(0));
        assert_eq!(run(&AggExpr::count(Expr::col(0), "c"), &[]), Value::Int(0));
        assert_eq!(run(&AggExpr::sum(Expr::col(0), "s"), &[]), Value::Null);
        assert_eq!(run(&AggExpr::avg(Expr::col(0), "a"), &[]), Value::Null);
        assert_eq!(run(&AggExpr::min(Expr::col(0), "m"), &[]), Value::Null);
        assert_eq!(
            run(&AggExpr::new(AggFunc::CountDistinct, Expr::col(0), "cd"), &[]),
            Value::Int(0)
        );
    }

    #[test]
    fn update_batch_matches_per_row_update() {
        let rows = vec![row![1], row![Value::Null], row![3]];
        for agg in [
            AggExpr::count_star("c"),
            AggExpr::count(Expr::col(0), "c"),
            AggExpr::sum(Expr::col(0), "s"),
            AggExpr::avg(Expr::col(0), "a"),
            AggExpr::min(Expr::col(0), "m"),
            AggExpr::max(Expr::col(0), "m"),
        ] {
            let mut acc = agg.accumulator();
            agg.update_batch(&mut acc, &rows, &[]).unwrap();
            assert_eq!(acc.finish(), run(&agg, &rows), "{agg}");
        }
    }

    #[test]
    fn type_errors_surface() {
        let rows = [row!["oops"]];
        let mut acc = Accumulator::new(AggFunc::Sum);
        assert!(AggExpr::sum(Expr::col(0), "s").update(&mut acc, &rows[0], &[]).is_err());
        let mut acc = Accumulator::new(AggFunc::Avg);
        assert!(AggExpr::avg(Expr::col(0), "a").update(&mut acc, &rows[0], &[]).is_err());
    }

    #[test]
    fn output_types() {
        let schema = Schema::new(vec![
            xmlpub_common::Field::new("i", DataType::Int),
            xmlpub_common::Field::new("f", DataType::Float),
        ]);
        assert_eq!(AggExpr::count_star("c").data_type(&schema), DataType::Int);
        assert_eq!(AggExpr::sum(Expr::col(0), "s").data_type(&schema), DataType::Int);
        assert_eq!(AggExpr::sum(Expr::col(1), "s").data_type(&schema), DataType::Float);
        assert_eq!(AggExpr::avg(Expr::col(0), "a").data_type(&schema), DataType::Float);
        assert_eq!(AggExpr::min(Expr::col(1), "m").data_type(&schema), DataType::Float);
    }

    #[test]
    fn display_and_columns() {
        let schema = Schema::new(vec![xmlpub_common::Field::new("x", DataType::Int)]);
        let agg = AggExpr::avg(Expr::col(0), "a");
        assert_eq!(agg.display(&schema), "avg(x)");
        assert_eq!(AggExpr::count_star("c").display(&schema), "count(*)");
        assert_eq!(agg.columns().as_slice(), &[0]);
        assert!(AggExpr::count_star("c").columns().is_empty());
        let cd = AggExpr::new(AggFunc::CountDistinct, Expr::col(0), "cd");
        assert_eq!(cd.display(&schema), "count(distinct x)");
    }

    #[test]
    fn remap() {
        let agg = AggExpr::avg(Expr::col(1), "a");
        let r = agg.remap_columns(&|c| Some(c + 3)).unwrap();
        assert_eq!(r.columns().as_slice(), &[4]);
        assert!(agg.remap_columns(&|_| None).is_none());
        let cs = AggExpr::count_star("c");
        assert!(cs.remap_columns(&|_| None).is_some());
    }
}
