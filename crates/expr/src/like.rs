//! SQL `LIKE` pattern matching.
//!
//! Supports `%` (any run of characters, including empty) and `_` (exactly
//! one character). Matching is over Unicode scalar values, iterative with
//! the classic two-pointer backtracking algorithm so pathological patterns
//! stay linear-ish instead of exponential.

/// Does `s` match the LIKE `pattern`?
pub fn like_match(s: &str, pattern: &str) -> bool {
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut si, mut pi) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None; // (pattern idx after %, text idx)
    while si < s.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some((pi + 1, si));
            pi += 1;
        } else if let Some((sp, st)) = star {
            // Backtrack: let the last % swallow one more character.
            pi = sp;
            si = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::like_match;

    #[test]
    fn literal_match() {
        assert!(like_match("abc", "abc"));
        assert!(!like_match("abc", "abd"));
        assert!(!like_match("abc", "ab"));
        assert!(!like_match("ab", "abc"));
        assert!(like_match("", ""));
    }

    #[test]
    fn underscore() {
        assert!(like_match("abc", "a_c"));
        assert!(like_match("abc", "___"));
        assert!(!like_match("abc", "__"));
        assert!(!like_match("", "_"));
    }

    #[test]
    fn percent() {
        assert!(like_match("abc", "%"));
        assert!(like_match("", "%"));
        assert!(like_match("abc", "a%"));
        assert!(like_match("abc", "%c"));
        assert!(like_match("abc", "%b%"));
        assert!(like_match("abc", "a%c"));
        assert!(!like_match("abc", "a%d"));
        assert!(like_match("aXbXc", "a%b%c"));
    }

    #[test]
    fn tpch_style_patterns() {
        assert!(like_match("Brand#13", "Brand#1%"));
        assert!(!like_match("Brand#23", "Brand#1%"));
        assert!(like_match("lavender chartreuse peru", "%chartreuse%"));
    }

    #[test]
    fn backtracking_heavy() {
        // Repeated % and runs that force backtracking.
        assert!(like_match(&"a".repeat(50), "%a%a%a%a%a%"));
        assert!(!like_match(&"a".repeat(50), &format!("%{}b", "a".repeat(10))));
        assert!(like_match("mississippi", "m%iss%ippi"));
        assert!(!like_match("mississippi", "m%iss%ippix"));
    }

    #[test]
    fn unicode() {
        assert!(like_match("héllo", "h_llo"));
        assert!(like_match("héllo", "%él%"));
    }
}
