//! Scalar expressions and aggregate functions.
//!
//! The paper's algebra annotates operators with scalar predicates and
//! aggregate lists; this crate supplies both:
//!
//! * [`Expr`] — column references (including *correlated* references into
//!   an enclosing `Apply`'s outer row, the subquery model of
//!   Galindo-Legaria & Joshi), literals, arithmetic, comparisons with SQL
//!   three-valued logic, `CASE`, `LIKE`, `IS NULL`;
//! * [`AggExpr`]/[`AggFunc`] — `count(*)`, `count`, `count(distinct)`,
//!   `sum`, `avg`, `min`, `max` with incremental [`Accumulator`]s;
//! * predicate utilities — conjunct splitting/joining, column extraction
//!   and remapping, and the normalised structural equivalence used when a
//!   selection inside a per-group query is "logically equivalent to the
//!   covering range" and can be eliminated (§4.1).

pub mod agg;
pub mod expr;
pub mod kernel;
pub mod like;
pub mod predicate;

pub use agg::{Accumulator, AggExpr, AggFunc};
pub use expr::{BinOp, Expr, UnaryOp};
pub use predicate::{conjunction, conjuncts, normalize};
