//! Schema preservation across rewrites.
//!
//! Every optimizer rule replaces a subtree with an equivalent one, so
//! the replacement must produce the same relation shape: same arity,
//! same column names, compatible column types. Qualifiers are
//! deliberately ignored — several rules (invariant grouping's restore
//! projection, pull-above's per-group re-emission) rebuild columns under
//! their bare names — and types are compared up to `DataType::unify`,
//! because NULL-typed placeholders legitimately acquire concrete types.

use crate::context::Ambient;
use crate::diagnostic::{Diagnostic, PlanPath};
use crate::registry::LintPass;
use xmlpub_algebra::LogicalPlan;

/// Compares the subtree schema before and after a rewrite.
pub struct SchemaPreservation;

impl LintPass for SchemaPreservation {
    fn name(&self) -> &'static str {
        "schema-preservation"
    }

    fn check_rewrite(
        &self,
        rule: &str,
        before: &LogicalPlan,
        after: &LogicalPlan,
        _ambient: &Ambient,
        out: &mut Vec<Diagnostic>,
    ) {
        let old = before.schema();
        let new = after.schema();
        if old.len() != new.len() {
            out.push(Diagnostic::error(
                self.name(),
                PlanPath::root(),
                format!(
                    "rewrite `{rule}` changed the arity: {} column(s) {old} became {} {new}",
                    old.len(),
                    new.len()
                ),
            ));
            return;
        }
        for (i, (o, n)) in old.fields().iter().zip(new.fields()).enumerate() {
            if !o.name.eq_ignore_ascii_case(&n.name) {
                out.push(Diagnostic::error(
                    self.name(),
                    PlanPath::root(),
                    format!(
                        "rewrite `{rule}` renamed output column #{i} from `{}` to `{}`",
                        o.name, n.name
                    ),
                ));
            }
            if o.data_type.unify(n.data_type).is_none() {
                out.push(Diagnostic::error(
                    self.name(),
                    PlanPath::root(),
                    format!(
                        "rewrite `{rule}` changed the type of output column #{i} (`{}`) from \
                         {} to {}",
                        o.name, o.data_type, n.data_type
                    ),
                ));
            }
        }
    }
}
