//! Column provenance across rewrites.
//!
//! [`origins`] traces each output column of a plan back to a base-table
//! column where that trace is unambiguous: a pass-through chain of
//! projections, selections, joins, group-by keys and GApply key/direct
//! columns (the per-group side composes through
//! [`xmlpub_algebra::analysis::direct_map`]). Aggregates and computed
//! expressions have no single origin and trace to `None`.
//!
//! The rewrite check then demands that wherever *both* the old and the
//! new subtree have a provable origin for an output position, the
//! origins agree. A rewrite that silently swaps two same-typed columns —
//! the classic sorting-and-tagging bug the paper's outer-union plans are
//! prone to — passes the schema check but fails this one.

use crate::context::Ambient;
use crate::diagnostic::{Diagnostic, PlanPath};
use crate::registry::LintPass;
use xmlpub_algebra::analysis::direct_map;
use xmlpub_algebra::LogicalPlan;
use xmlpub_expr::Expr;

/// A provable source of a column: base table (or `$group` temporary
/// relation) name plus column position within it.
pub type Origin = (String, usize);

/// Best-effort origin of every output column of `plan`.
pub fn origins(plan: &LogicalPlan) -> Vec<Option<Origin>> {
    match plan {
        LogicalPlan::Scan { table, schema } => {
            (0..schema.len()).map(|i| Some((table.clone(), i))).collect()
        }
        LogicalPlan::GroupScan { schema } => {
            (0..schema.len()).map(|i| Some(("$group".to_string(), i))).collect()
        }
        LogicalPlan::Select { input, .. }
        | LogicalPlan::Distinct { input }
        | LogicalPlan::OrderBy { input, .. } => origins(input),
        LogicalPlan::Project { input, items } => {
            let inner = origins(input);
            items
                .iter()
                .map(|it| match &it.expr {
                    Expr::Column(i) => inner.get(*i).cloned().flatten(),
                    _ => None,
                })
                .collect()
        }
        LogicalPlan::Join { left, right, .. } | LogicalPlan::LeftOuterJoin { left, right, .. } => {
            let mut out = origins(left);
            out.extend(origins(right));
            out
        }
        LogicalPlan::GApply { input, group_cols, pgq } => {
            let inner = origins(input);
            let mut out: Vec<Option<Origin>> =
                group_cols.iter().map(|&c| inner.get(c).cloned().flatten()).collect();
            // Per-group outputs that are direct pass-throughs of group
            // columns inherit the grouped input's origins; everything
            // else (aggregates, computed columns) is untraceable.
            for slot in direct_map(pgq) {
                out.push(slot.and_then(|g| inner.get(g).cloned().flatten()));
            }
            out
        }
        LogicalPlan::GroupBy { input, keys, aggs } => {
            let inner = origins(input);
            let mut out: Vec<Option<Origin>> =
                keys.iter().map(|&k| inner.get(k).cloned().flatten()).collect();
            out.extend(std::iter::repeat_with(|| None).take(aggs.len()));
            out
        }
        LogicalPlan::ScalarAgg { aggs, .. } => vec![None; aggs.len()],
        LogicalPlan::UnionAll { inputs } => {
            let width = plan.schema().len();
            let branch_origins: Vec<Vec<Option<Origin>>> = inputs.iter().map(origins).collect();
            (0..width)
                .map(|i| {
                    let first = branch_origins.first().and_then(|b| b.get(i).cloned().flatten());
                    let all_agree =
                        branch_origins.iter().all(|b| b.get(i).cloned().flatten() == first);
                    if all_agree {
                        first
                    } else {
                        None
                    }
                })
                .collect()
        }
        LogicalPlan::Apply { outer, inner, .. } => {
            let mut out = origins(outer);
            out.extend(origins(inner));
            out
        }
        LogicalPlan::Exists { .. } => Vec::new(),
    }
}

/// Demands origin agreement between the two sides of a rewrite.
pub struct ColumnProvenance;

impl LintPass for ColumnProvenance {
    fn name(&self) -> &'static str {
        "column-provenance"
    }

    fn check_rewrite(
        &self,
        rule: &str,
        before: &LogicalPlan,
        after: &LogicalPlan,
        _ambient: &Ambient,
        out: &mut Vec<Diagnostic>,
    ) {
        let old = origins(before);
        let new = origins(after);
        for (i, (o, n)) in old.iter().zip(new.iter()).enumerate() {
            if let (Some((ot, oc)), Some((nt, nc))) = (o, n) {
                if (ot, oc) != (nt, nc) {
                    out.push(Diagnostic::error(
                        self.name(),
                        PlanPath::root(),
                        format!(
                            "rewrite `{rule}` rerouted output column #{i}: it traced to \
                             {ot}.#{oc} before but {nt}.#{nc} after"
                        ),
                    ));
                }
            }
        }
    }
}
