//! Parallel-safety audit for per-group queries.
//!
//! The engine's parallel GApply runs each group's per-group query on a
//! worker thread, against a cloned plan (`PhysicalOp::clone_op`), a
//! snapshot of the enclosing outer/group bindings, and the shared
//! read-only catalog. That is sound only while every operator that can
//! appear in a PGQ is *deterministic and self-contained*: no operator
//! order-dependence beyond the group's own row order, no hidden shared
//! mutable state, no source of nondeterminism (time, randomness, I/O).
//!
//! The §3 whitelist that [`PgqOperators`](crate::passes::PgqOperators)
//! enforces happens to contain only such operators today, so this pass
//! reports nothing for a structurally valid plan. Its job is defense in
//! depth: the match below is an explicit audit list, and any operator
//! that ever shows up inside a PGQ without having been added here — a
//! new algebra variant, or a structurally illegal node the optimizer
//! produced — is flagged as *unaudited for parallel execution* rather
//! than silently scheduled onto worker threads.

use crate::context::Ambient;
use crate::diagnostic::{Diagnostic, PlanPath};
use crate::registry::LintPass;
use xmlpub_algebra::LogicalPlan;

/// Audits every node inside a per-group query against the list of
/// operators cleared for multi-threaded per-group execution.
pub struct ParallelSafety;

impl LintPass for ParallelSafety {
    fn name(&self) -> &'static str {
        "parallel-safety"
    }

    fn check_node(
        &self,
        node: &LogicalPlan,
        ambient: &Ambient,
        path: &PlanPath,
        out: &mut Vec<Diagnostic>,
    ) {
        if ambient.group_schema.is_none() {
            return;
        }
        match node {
            // Cleared: reads only the group binding the worker owns.
            LogicalPlan::GroupScan { .. } => {}
            // Cleared: pure row-at-a-time expression evaluation over
            // deterministic expressions (the expression language has no
            // time/random/IO primitives).
            LogicalPlan::Select { .. } | LogicalPlan::Project { .. } => {}
            // Cleared: build state is worker-local (fresh clone per
            // worker) and results are order-canonicalised downstream.
            LogicalPlan::GroupBy { .. }
            | LogicalPlan::ScalarAgg { .. }
            | LogicalPlan::Distinct { .. } => {}
            // Cleared: stable sort over deterministic keys.
            LogicalPlan::OrderBy { .. } => {}
            // Cleared: branch order is fixed by the plan.
            LogicalPlan::UnionAll { .. } => {}
            // Cleared: the inner plan re-binds per outer row within the
            // worker; its uncorrelated-result cache is plan-local and
            // each worker owns a cloned plan.
            LogicalPlan::Apply { .. } | LogicalPlan::Exists { .. } => {}
            // Everything else is either structurally illegal in a PGQ
            // (base scans, joins, nested GApply — pgq-operators reports
            // those) or new since this audit; both must not reach a
            // worker thread unreviewed.
            other => out.push(Diagnostic::error(
                self.name(),
                path.clone(),
                format!(
                    "`{}` inside a per-group query is not audited for parallel execution; \
                     a parallel GApply would run it on a worker thread",
                    other.label()
                ),
            )),
        }
    }
}
