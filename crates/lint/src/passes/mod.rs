//! The built-in lint passes.

mod correlation;
mod parallel;
mod properties;
mod provenance;
mod schema_preservation;
mod side_conditions;
mod structure;

pub use correlation::CorrelationDepth;
pub use parallel::ParallelSafety;
pub use properties::{check_tagger_safety, Properties};
pub use provenance::{origins, ColumnProvenance, Origin};
pub use schema_preservation::SchemaPreservation;
pub use side_conditions::SideConditions;
pub use structure::{ColumnBounds, PgqOperators};
