//! The `properties` pass: independent re-derivation of the analyzer
//! facts an optimizer rewrite relied on.
//!
//! Rules consult `xmlpub-analysis` for their side conditions and record
//! a [`Claim`] per consumed property. This pass re-derives every claim
//! from scratch against the same catalog facts and attributes any
//! mismatch to the claiming rule — a broken transfer function, or a
//! rule inventing a property, surfaces here as an error naming the
//! guilty rule. It also cross-checks the whole rewrite: the cardinality
//! intervals derived for the before/after plans must overlap (both
//! contain the true row count, so disjointness proves one derivation —
//! or the rewrite — wrong), and a derived root sort order must not be
//! silently destroyed.

use crate::context::Ambient;
use crate::diagnostic::{Diagnostic, PlanPath};
use crate::registry::LintPass;
use xmlpub_algebra::LogicalPlan;
use xmlpub_analysis::{derive, CatalogProperties, Claim, OrderKey};

/// The properties pass. Carries the catalog facts derivations are
/// seeded from; a pass built over [`CatalogProperties::empty`] still
/// checks rewrite-level consistency, just with weaker facts.
#[derive(Default)]
pub struct Properties {
    catalog: CatalogProperties,
}

impl Properties {
    /// A pass seeded with catalog constraint facts.
    pub fn new(catalog: CatalogProperties) -> Self {
        Properties { catalog }
    }
}

impl LintPass for Properties {
    fn name(&self) -> &'static str {
        "properties"
    }

    fn check_rewrite(
        &self,
        rule: &str,
        before: &LogicalPlan,
        after: &LogicalPlan,
        _ambient: &Ambient,
        out: &mut Vec<Diagnostic>,
    ) {
        // Derivations at a rewrite site run without the enclosing group
        // binding (GroupScan derives bottom), which is conservative on
        // both sides and therefore cannot produce false alarms.
        let b = derive(before, &self.catalog);
        let a = derive(after, &self.catalog);
        if !b.cardinality.intersects(&a.cardinality) {
            out.push(Diagnostic::error(
                "properties",
                PlanPath::root(),
                format!(
                    "property-unsound: rule `{rule}` rewrote a plan with derived \
                     cardinality {} into one with {} — the intervals are disjoint, \
                     so a derivation (or the rewrite) is wrong",
                    b.cardinality, a.cardinality
                ),
            ));
        }
        if !b.order.is_empty() && !a.order_satisfies(&b.order) {
            out.push(Diagnostic::error(
                "properties",
                PlanPath::root(),
                format!(
                    "property-unsound: rule `{rule}` destroyed the derived sort order \
                     [{}] (after: [{}])",
                    order_display(&b.order),
                    order_display(&a.order)
                ),
            ));
        }
    }

    fn check_claims(
        &self,
        rule: &str,
        before: &LogicalPlan,
        after: &LogicalPlan,
        claims: &[Claim],
        out: &mut Vec<Diagnostic>,
    ) {
        for claim in claims {
            if let Err(msg) = claim.check(before, after, &self.catalog) {
                out.push(Diagnostic::error(
                    "properties",
                    PlanPath(claim.at.clone()),
                    format!("property-unsound: rule `{rule}` {msg}"),
                ));
            }
        }
    }
}

/// Tagger safety: the plan feeding the `StreamingTagger` must provably
/// deliver rows sorted ascending on the whole key/ordinal prefix
/// `0..lvl_col` — "the result tuples must be clustered by the element to
/// which they correspond" (§2). Returns a diagnostic when the derived
/// root order does not subsume that prefix.
pub fn check_tagger_safety(
    plan: &LogicalPlan,
    lvl_col: usize,
    catalog: &CatalogProperties,
) -> Option<Diagnostic> {
    let props = derive(plan, catalog);
    let required: Vec<OrderKey> = (0..lvl_col).map(OrderKey::asc).collect();
    if props.order_satisfies(&required) {
        None
    } else {
        Some(Diagnostic::error(
            "tagger-safety",
            PlanPath::root(),
            format!(
                "plan root does not provably satisfy the tagger's sort order: \
                 required ascending prefix on columns 0..{lvl_col}, derived order [{}]",
                order_display(&props.order)
            ),
        ))
    }
}

fn order_display(order: &[OrderKey]) -> String {
    order.iter().map(|o| o.to_string()).collect::<Vec<_>>().join(", ")
}
