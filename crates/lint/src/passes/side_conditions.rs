//! Per-rule side-condition audits.
//!
//! The §4 rewrite theorems only hold under side conditions, and the
//! rules *compute* those conditions before firing. This pass re-derives
//! each condition independently from the before/after pair of a firing,
//! so a bug in a rule's guard (or a guard silently weakened in a later
//! refactor) surfaces as a diagnostic on the exact firing:
//!
//! * `select-before-gapply` (§4.1, Theorem 1): the pushed predicate must
//!   be the per-group query's covering range, and the PGQ must be
//!   empty-on-empty;
//! * `invariant-grouping` (§4.3, Theorem 2 / Definition 2): the node the
//!   GApply lands on must still expose every grouping and gp-eval
//!   column, and every skipped join must be a foreign-key join whose
//!   join columns on the group side are grouping columns;
//! * `gapply-to-groupby`: the per-group query must be a pure
//!   uncorrelated aggregation over the group scan, and the introduced
//!   GroupBy must key on the grouping columns.

use crate::context::Ambient;
use crate::diagnostic::{Diagnostic, PlanPath};
use crate::registry::LintPass;
use xmlpub_algebra::analysis::{covering_range, empty_on_empty, gp_eval_columns};
use xmlpub_algebra::LogicalPlan;
use xmlpub_expr::predicate::equivalent;
use xmlpub_expr::Expr;

/// Re-derives the firing conditions of the theorem-backed rules.
pub struct SideConditions;

impl LintPass for SideConditions {
    fn name(&self) -> &'static str {
        "side-conditions"
    }

    fn check_rewrite(
        &self,
        rule: &str,
        before: &LogicalPlan,
        after: &LogicalPlan,
        _ambient: &Ambient,
        out: &mut Vec<Diagnostic>,
    ) {
        match rule {
            "select-before-gapply" => audit_select_before(before, after, out),
            "invariant-grouping" => audit_invariant_grouping(before, after, out),
            "gapply-to-groupby" => audit_to_groupby(before, after, out),
            _ => {}
        }
    }
}

const SELECT_BEFORE: &str = "audit-select-before-gapply";
const INVARIANT: &str = "audit-invariant-grouping";
const TO_GROUPBY: &str = "audit-gapply-to-groupby";

fn err(rule: &'static str, msg: impl Into<String>) -> Diagnostic {
    Diagnostic::error(rule, PlanPath::root(), msg)
}

/// §4.1 Theorem 1: `GApply(T, C, PGQ)` → `GApply(σ_range(T), C, PGQ')`
/// is sound iff `range` is the covering range of PGQ and PGQ is
/// empty-on-empty (groups the selection removes would have produced no
/// rows anyway).
fn audit_select_before(before: &LogicalPlan, after: &LogicalPlan, out: &mut Vec<Diagnostic>) {
    let LogicalPlan::GApply { input, group_cols, pgq } = before else {
        out.push(err(SELECT_BEFORE, "rule fired on a non-GApply node"));
        return;
    };
    let LogicalPlan::GApply { input: new_input, group_cols: new_cols, pgq: _ } = after else {
        out.push(err(SELECT_BEFORE, "rewrite did not produce a GApply"));
        return;
    };
    let LogicalPlan::Select { input: sel_input, predicate } = new_input.as_ref() else {
        out.push(err(SELECT_BEFORE, "rewritten GApply input is not a Select"));
        return;
    };
    if sel_input.as_ref() != input.as_ref() {
        out.push(err(SELECT_BEFORE, "pushed selection does not sit on the original input"));
    }
    if new_cols != group_cols {
        out.push(err(SELECT_BEFORE, "rewrite changed the grouping columns"));
    }
    if !empty_on_empty(pgq) {
        out.push(err(
            SELECT_BEFORE,
            "per-group query is not empty-on-empty: discarding whole groups changes the \
             result (Theorem 1 precondition)",
        ));
    }
    let range = covering_range(pgq);
    if range == Expr::lit(true) {
        out.push(err(
            SELECT_BEFORE,
            "per-group query has no covering range: every group may contribute, so there \
             is nothing to push",
        ));
    } else if !equivalent(predicate, &range) {
        out.push(err(
            SELECT_BEFORE,
            format!(
                "pushed predicate {predicate:?} is not equivalent to the per-group query's \
                 covering range {range:?}"
            ),
        ));
    }
}

/// §4.3 Theorem 2 / Definition 2: the GApply may move onto a spine node
/// `n` only when (1) the grouping and gp-eval columns all live at `n`,
/// (2) every skipped join's columns on the group side are grouping
/// columns, and (3) every skipped join is a foreign-key join.
fn audit_invariant_grouping(before: &LogicalPlan, after: &LogicalPlan, out: &mut Vec<Diagnostic>) {
    let LogicalPlan::GApply { input, group_cols, pgq } = before else {
        out.push(err(INVARIANT, "rule fired on a non-GApply node"));
        return;
    };
    // Locate the pushed-down GApply inside the rewritten subtree.
    let mut new_ga = None;
    find_gapply(after, &mut new_ga);
    let Some((new_input, new_cols)) = new_ga else {
        out.push(err(INVARIANT, "rewritten subtree contains no GApply"));
        return;
    };
    if new_cols != group_cols {
        out.push(err(INVARIANT, "rewrite changed the grouping columns"));
    }
    let prefix_len = new_input.schema().len();
    // Condition 1: grouping + gp-eval columns all live at the new node.
    let needed = group_cols
        .iter()
        .copied()
        .chain(gp_eval_columns(pgq).iter())
        .max()
        .map(|m| m + 1)
        .unwrap_or(0);
    if needed > prefix_len {
        out.push(err(
            INVARIANT,
            format!(
                "GApply was pushed below a node with only {prefix_len} column(s), but \
                 grouping/gp-eval columns require the first {needed} (Definition 2, \
                 condition 1)"
            ),
        ));
    }
    // Conditions 2 & 3 for every skipped spine join: a join was skipped
    // exactly when its left side is at least as wide as the new node.
    let mut cur: &LogicalPlan = input;
    while let LogicalPlan::Join { left, predicate, fk_left_to_right, .. } = cur {
        let left_len = left.schema().len();
        if left_len >= prefix_len {
            if !fk_left_to_right {
                out.push(err(
                    INVARIANT,
                    format!(
                        "skipped spine join {predicate:?} is not a foreign-key join \
                         (Definition 2, condition 3)"
                    ),
                ));
            }
            let bad: Vec<usize> = predicate
                .columns()
                .iter()
                .filter(|&c| c < prefix_len && !group_cols.contains(&c))
                .collect();
            if !bad.is_empty() {
                out.push(err(
                    INVARIANT,
                    format!(
                        "skipped spine join references non-grouping column(s) {bad:?} of \
                         the group side (Definition 2, condition 2)"
                    ),
                ));
            }
            if predicate.has_correlated() {
                out.push(err(INVARIANT, "skipped spine join predicate is correlated"));
            }
        }
        cur = left;
    }
}

fn find_gapply<'p>(plan: &'p LogicalPlan, out: &mut Option<(&'p LogicalPlan, &'p Vec<usize>)>) {
    if out.is_some() {
        return;
    }
    if let LogicalPlan::GApply { input, group_cols, .. } = plan {
        *out = Some((input.as_ref(), group_cols));
        return;
    }
    for child in plan.children() {
        find_gapply(child, out);
    }
}

/// GApply whose per-group query is a pure aggregation collapses to a
/// plain GroupBy — sound only when the aggregation reads the group scan
/// directly and nothing is correlated, and the replacement must key on
/// exactly the grouping columns (in order) before any extra keys.
fn audit_to_groupby(before: &LogicalPlan, after: &LogicalPlan, out: &mut Vec<Diagnostic>) {
    let LogicalPlan::GApply { input, group_cols, pgq } = before else {
        out.push(err(TO_GROUPBY, "rule fired on a non-GApply node"));
        return;
    };
    let (pgq_input, pgq_aggs) = match pgq.as_ref() {
        LogicalPlan::ScalarAgg { input, aggs } => (input, aggs),
        LogicalPlan::GroupBy { input, aggs, .. } => (input, aggs),
        other => {
            out.push(err(
                TO_GROUPBY,
                format!("per-group query is not a pure aggregation (found {})", other.label()),
            ));
            return;
        }
    };
    if !matches!(pgq_input.as_ref(), LogicalPlan::GroupScan { .. }) {
        out.push(err(TO_GROUPBY, "per-group aggregation does not read the group scan directly"));
    }
    if pgq_aggs.iter().any(|a| a.arg.as_ref().is_some_and(|e| e.has_correlated())) {
        out.push(err(TO_GROUPBY, "per-group aggregate arguments are correlated"));
    }
    let LogicalPlan::GroupBy { input: new_input, keys, aggs } = after else {
        out.push(err(TO_GROUPBY, "rewrite did not produce a GroupBy"));
        return;
    };
    if new_input.as_ref() != input.as_ref() {
        out.push(err(TO_GROUPBY, "GroupBy does not sit on the original grouped input"));
    }
    if keys.len() < group_cols.len() || keys[..group_cols.len()] != group_cols[..] {
        out.push(err(
            TO_GROUPBY,
            format!("GroupBy keys {keys:?} do not start with the grouping columns {group_cols:?}"),
        ));
    }
    if aggs.len() != pgq_aggs.len() {
        out.push(err(
            TO_GROUPBY,
            format!(
                "GroupBy carries {} aggregate(s) but the per-group query had {}",
                aggs.len(),
                pgq_aggs.len()
            ),
        ));
    }
}
