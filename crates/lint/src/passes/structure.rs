//! Structural invariants of the §3 algebra, as per-node lint checks.
//!
//! These are the operator-whitelist rules of the paper's per-group query
//! language — "the per-group query may only refer to the group's
//! temporary relation" (§3) — plus bounds checks on every column index an
//! operator carries. They mirror `xmlpub_algebra::validate` but report
//! *all* findings with plan paths instead of failing on the first.

use crate::context::{for_each_expr, Ambient};
use crate::diagnostic::{Diagnostic, PlanPath};
use crate::registry::LintPass;
use xmlpub_algebra::LogicalPlan;
use xmlpub_common::Schema;

/// §3 operator whitelist for per-group queries, plus GApply / ScalarAgg /
/// UnionAll shape rules.
pub struct PgqOperators;

impl LintPass for PgqOperators {
    fn name(&self) -> &'static str {
        "pgq-operators"
    }

    fn check_node(
        &self,
        node: &LogicalPlan,
        ambient: &Ambient,
        path: &PlanPath,
        out: &mut Vec<Diagnostic>,
    ) {
        let in_pgq = ambient.group_schema.is_some();
        match node {
            LogicalPlan::Scan { table, .. } if in_pgq => {
                out.push(Diagnostic::error(
                    self.name(),
                    path.clone(),
                    format!(
                        "base-table scan of `{table}` inside a per-group query; a PGQ may \
                         only scan the group's temporary relation"
                    ),
                ));
            }
            LogicalPlan::GroupScan { schema } => match &ambient.group_schema {
                None => out.push(Diagnostic::error(
                    self.name(),
                    path.clone(),
                    "GroupScan outside a per-group query",
                )),
                Some(expected) => check_group_schema(self.name(), schema, expected, path, out),
            },
            LogicalPlan::Join { .. } | LogicalPlan::LeftOuterJoin { .. } if in_pgq => {
                out.push(Diagnostic::error(
                    self.name(),
                    path.clone(),
                    "join is not a permitted per-group query operator",
                ));
            }
            LogicalPlan::GApply { input, group_cols, .. } => {
                if in_pgq {
                    out.push(Diagnostic::error(
                        self.name(),
                        path.clone(),
                        "GApply may not be nested inside a per-group query",
                    ));
                }
                if group_cols.is_empty() {
                    out.push(Diagnostic::error(
                        self.name(),
                        path.clone(),
                        "GApply requires at least one grouping column",
                    ));
                }
                let in_schema = input.schema();
                for &c in group_cols {
                    if c >= in_schema.len() {
                        out.push(Diagnostic::error(
                            self.name(),
                            path.clone(),
                            format!(
                                "GApply grouping column #{c} out of range for input schema \
                                 {in_schema}"
                            ),
                        ));
                    }
                }
            }
            LogicalPlan::ScalarAgg { aggs, .. } if aggs.is_empty() => {
                out.push(Diagnostic::error(
                    self.name(),
                    path.clone(),
                    "ScalarAgg requires at least one aggregate",
                ));
            }
            LogicalPlan::UnionAll { inputs } => {
                if inputs.len() < 2 {
                    out.push(Diagnostic::error(
                        self.name(),
                        path.clone(),
                        "UnionAll requires at least two branches",
                    ));
                }
                if let Some(first) = inputs.first() {
                    let first_schema = first.schema();
                    for (n, branch) in inputs.iter().enumerate().skip(1) {
                        check_union_branch(
                            self.name(),
                            &first_schema,
                            &branch.schema(),
                            n,
                            path,
                            out,
                        );
                    }
                }
            }
            _ => {}
        }
    }
}

/// A `GroupScan` must carry the group's schema: same arity, and
/// per-column the same (unqualified) name and a compatible type.
/// Qualifiers are ignored — projection pushdown rebuilds group schemas
/// from projected fields whose qualifiers legitimately differ.
fn check_group_schema(
    pass: &'static str,
    schema: &Schema,
    expected: &Schema,
    path: &PlanPath,
    out: &mut Vec<Diagnostic>,
) {
    if schema.len() != expected.len() {
        out.push(Diagnostic::error(
            pass,
            path.clone(),
            format!(
                "GroupScan schema {schema} has {} column(s) but the group schema {expected} \
                 has {}",
                schema.len(),
                expected.len()
            ),
        ));
        return;
    }
    for (i, (got, want)) in schema.fields().iter().zip(expected.fields()).enumerate() {
        if !got.name.eq_ignore_ascii_case(&want.name) {
            out.push(Diagnostic::error(
                pass,
                path.clone(),
                format!(
                    "GroupScan column #{i} is named `{}` but the group schema calls it `{}`",
                    got.name, want.name
                ),
            ));
        }
        if got.data_type.unify(want.data_type).is_none() {
            out.push(Diagnostic::error(
                pass,
                path.clone(),
                format!(
                    "GroupScan column #{i} (`{}`) has type {} but the group schema says {}",
                    got.name, got.data_type, want.data_type
                ),
            ));
        }
    }
}

/// Union branches must be positionally compatible; name the offending
/// column rather than just dumping both schemas.
fn check_union_branch(
    pass: &'static str,
    first: &Schema,
    branch: &Schema,
    n: usize,
    path: &PlanPath,
    out: &mut Vec<Diagnostic>,
) {
    if branch.len() != first.len() {
        out.push(Diagnostic::error(
            pass,
            path.clone(),
            format!(
                "UnionAll branch {n} has {} column(s) but branch 0 has {}",
                branch.len(),
                first.len()
            ),
        ));
        return;
    }
    for (i, (f, b)) in first.fields().iter().zip(branch.fields()).enumerate() {
        if f.data_type.unify(b.data_type).is_none() {
            out.push(Diagnostic::error(
                pass,
                path.clone(),
                format!(
                    "UnionAll branch {n} column #{i} (`{}`) has type {} which does not unify \
                     with branch 0's {}",
                    b.name, b.data_type, f.data_type
                ),
            ));
        }
    }
}

/// Every column index an operator's expressions mention must exist in
/// the child schema the expression is evaluated against.
pub struct ColumnBounds;

impl LintPass for ColumnBounds {
    fn name(&self) -> &'static str {
        "column-bounds"
    }

    fn check_node(
        &self,
        node: &LogicalPlan,
        _ambient: &Ambient,
        path: &PlanPath,
        out: &mut Vec<Diagnostic>,
    ) {
        // The schema expressions of this node are evaluated against.
        let input_schema = match node {
            LogicalPlan::Select { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::GroupBy { input, .. }
            | LogicalPlan::ScalarAgg { input, .. }
            | LogicalPlan::OrderBy { input, .. } => input.schema(),
            LogicalPlan::Join { left, right, .. }
            | LogicalPlan::LeftOuterJoin { left, right, .. } => left.schema().join(&right.schema()),
            _ => return,
        };
        if let LogicalPlan::GroupBy { keys, .. } = node {
            for &k in keys {
                if k >= input_schema.len() {
                    out.push(Diagnostic::error(
                        self.name(),
                        path.clone(),
                        format!("GroupBy key #{k} out of range for schema {input_schema}"),
                    ));
                }
            }
        }
        for_each_expr(node, &mut |expr, role| {
            for c in expr.columns().iter() {
                if c >= input_schema.len() {
                    out.push(Diagnostic::error(
                        self.name(),
                        path.clone(),
                        format!("{role}: column #{c} out of range for schema {input_schema}"),
                    ));
                }
            }
        });
    }
}
