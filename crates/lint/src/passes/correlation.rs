//! Correlation-depth checking.
//!
//! A correlated reference `outer[level]#i` is only meaningful when at
//! least `level + 1` `Apply` operators enclose the expression; the
//! ambient context counts them. This is the §3 well-formedness rule that
//! keeps per-group queries (and ordinary subplans) from reaching outer
//! rows that do not exist at execution time.

use crate::context::{for_each_expr, Ambient};
use crate::diagnostic::{Diagnostic, PlanPath};
use crate::registry::LintPass;
use xmlpub_algebra::LogicalPlan;
use xmlpub_expr::Expr;

/// Checks every correlated reference against the enclosing Apply count.
pub struct CorrelationDepth;

impl LintPass for CorrelationDepth {
    fn name(&self) -> &'static str {
        "correlation-depth"
    }

    fn check_node(
        &self,
        node: &LogicalPlan,
        ambient: &Ambient,
        path: &PlanPath,
        out: &mut Vec<Diagnostic>,
    ) {
        for_each_expr(node, &mut |expr, role| {
            expr.visit(&mut |e| {
                if let Expr::Correlated { level, index } = e {
                    if *level >= ambient.apply_depth {
                        out.push(Diagnostic::error(
                            self.name(),
                            path.clone(),
                            format!(
                                "{role}: correlated reference outer[{level}]#{index} but only \
                                 {} enclosing Apply operator(s)",
                                ambient.apply_depth
                            ),
                        ));
                    }
                }
            });
        });
    }
}
