//! Ambient context threaded through a plan walk.
//!
//! The same two pieces of state that `xmlpub_algebra::validate` carries:
//! whether we are inside a per-group query (and if so, against which
//! group schema the `GroupScan` leaves must resolve), and how many
//! `Apply` operators enclose the current node (the bound on correlated
//! reference levels). The linter additionally threads a [`PlanPath`] so
//! diagnostics can point at the offending node.

use crate::diagnostic::PlanPath;
use xmlpub_algebra::LogicalPlan;
use xmlpub_common::Schema;

/// Context a node sits in, independent of the node itself.
#[derive(Debug, Clone, Default)]
pub struct Ambient {
    /// `Some(schema of the grouped input)` when inside a per-group
    /// query; `GroupScan` leaves must match it.
    pub group_schema: Option<Schema>,
    /// Number of enclosing `Apply` operators: correlated references must
    /// stay strictly below this level.
    pub apply_depth: usize,
}

impl Ambient {
    /// The context of a plan root: not in a PGQ, no enclosing applies.
    pub fn root() -> Self {
        Ambient::default()
    }

    /// The ambient context of each child of `plan`, in
    /// [`LogicalPlan::children`] order.
    ///
    /// `GApply` puts its per-group query in a context whose group schema
    /// is the (grouped) input's schema; `Apply` deepens the correlation
    /// level for its inner side; everything else passes the context
    /// through unchanged.
    pub fn children_for(&self, plan: &LogicalPlan) -> Vec<Ambient> {
        match plan {
            LogicalPlan::GApply { input, .. } => vec![
                self.clone(),
                Ambient { group_schema: Some(input.schema()), apply_depth: self.apply_depth },
            ],
            LogicalPlan::Apply { .. } => vec![
                self.clone(),
                Ambient {
                    group_schema: self.group_schema.clone(),
                    apply_depth: self.apply_depth + 1,
                },
            ],
            other => other.children().iter().map(|_| self.clone()).collect(),
        }
    }
}

/// Pre-order walk over `plan` carrying the ambient context and path.
pub fn walk(
    plan: &LogicalPlan,
    ambient: &Ambient,
    path: &PlanPath,
    f: &mut impl FnMut(&LogicalPlan, &Ambient, &PlanPath),
) {
    f(plan, ambient, path);
    let child_ambients = ambient.children_for(plan);
    for (i, (child, amb)) in plan.children().iter().zip(child_ambients.iter()).enumerate() {
        walk(child, amb, &path.child(i), f);
    }
}

/// Visit every scalar expression of a single node (not its children)
/// together with a short role label for diagnostics.
pub fn for_each_expr(plan: &LogicalPlan, f: &mut impl FnMut(&xmlpub_expr::Expr, &str)) {
    match plan {
        LogicalPlan::Select { predicate, .. } => f(predicate, "Select predicate"),
        LogicalPlan::Project { items, .. } => {
            for it in items {
                f(&it.expr, "Project item");
            }
        }
        LogicalPlan::Join { predicate, .. } | LogicalPlan::LeftOuterJoin { predicate, .. } => {
            f(predicate, "join predicate")
        }
        LogicalPlan::GroupBy { aggs, .. } | LogicalPlan::ScalarAgg { aggs, .. } => {
            for a in aggs {
                if let Some(arg) = &a.arg {
                    f(arg, "aggregate argument");
                }
            }
        }
        LogicalPlan::OrderBy { keys, .. } => {
            for k in keys {
                f(&k.expr, "OrderBy key");
            }
        }
        LogicalPlan::Scan { .. }
        | LogicalPlan::GroupScan { .. }
        | LogicalPlan::GApply { .. }
        | LogicalPlan::UnionAll { .. }
        | LogicalPlan::Distinct { .. }
        | LogicalPlan::Apply { .. }
        | LogicalPlan::Exists { .. } => {}
    }
}
