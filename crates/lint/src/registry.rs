//! The lint pass trait and the registry that drives all passes.

use crate::context::{walk, Ambient};
use crate::diagnostic::{Diagnostic, PlanPath};
use xmlpub_algebra::LogicalPlan;
use xmlpub_analysis::{CatalogProperties, Claim};

/// One lint pass. A pass can inspect individual nodes of a plan
/// (`check_node`, called for every node of a walk) and/or a whole
/// rewrite (`check_rewrite`, called once per optimizer rule firing with
/// the subtree before and after the rule ran).
pub trait LintPass {
    /// Stable identifier of the pass (diagnostics may refine it, e.g.
    /// the side-condition pass emits per-rule `audit-*` ids).
    fn name(&self) -> &'static str;

    /// Inspect one node in its ambient context.
    fn check_node(
        &self,
        _node: &LogicalPlan,
        _ambient: &Ambient,
        _path: &PlanPath,
        _out: &mut Vec<Diagnostic>,
    ) {
    }

    /// Inspect one rewrite: `before` was replaced by `after` at a site
    /// whose context is `ambient`, by the optimizer rule named `rule`.
    fn check_rewrite(
        &self,
        _rule: &str,
        _before: &LogicalPlan,
        _after: &LogicalPlan,
        _ambient: &Ambient,
        _out: &mut Vec<Diagnostic>,
    ) {
    }

    /// Verify the property claims a rule firing recorded (see
    /// [`xmlpub_analysis::Claim`]). Only invoked through
    /// [`LintRegistry::lint_rewrite_claimed`]; passes that cannot judge
    /// claims keep the default no-op.
    fn check_claims(
        &self,
        _rule: &str,
        _before: &LogicalPlan,
        _after: &LogicalPlan,
        _claims: &[Claim],
        _out: &mut Vec<Diagnostic>,
    ) {
    }
}

/// An ordered collection of lint passes.
pub struct LintRegistry {
    passes: Vec<Box<dyn LintPass + Send + Sync>>,
}

impl Default for LintRegistry {
    /// Every built-in pass, in reporting order, with the properties
    /// pass seeded from no catalog facts (it still cross-checks
    /// rewrites; callers with a catalog should prefer
    /// [`LintRegistry::default_with_properties`]).
    fn default() -> Self {
        LintRegistry::default_with_properties(CatalogProperties::empty())
    }
}

impl LintRegistry {
    /// Every built-in pass, with the properties pass seeded from the
    /// given catalog constraint facts — the registry the optimizer uses
    /// so claim re-derivations see the same keys/FKs the rules did.
    pub fn default_with_properties(props: CatalogProperties) -> Self {
        LintRegistry {
            passes: vec![
                Box::new(crate::passes::PgqOperators),
                Box::new(crate::passes::ColumnBounds),
                Box::new(crate::passes::CorrelationDepth),
                Box::new(crate::passes::ParallelSafety),
                Box::new(crate::passes::SchemaPreservation),
                Box::new(crate::passes::ColumnProvenance),
                Box::new(crate::passes::SideConditions),
                Box::new(crate::passes::Properties::new(props)),
            ],
        }
    }

    /// A registry with no passes; use `push` to build a custom set.
    pub fn empty() -> Self {
        LintRegistry { passes: Vec::new() }
    }

    /// Add a pass.
    pub fn push(&mut self, pass: Box<dyn LintPass + Send + Sync>) {
        self.passes.push(pass);
    }

    /// Lint a whole plan from the root context.
    pub fn lint_plan(&self, plan: &LogicalPlan) -> Vec<Diagnostic> {
        self.lint_plan_at(plan, &Ambient::root())
    }

    /// Lint a (sub)plan that sits in the given ambient context.
    pub fn lint_plan_at(&self, plan: &LogicalPlan, ambient: &Ambient) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        walk(plan, ambient, &PlanPath::root(), &mut |node, amb, path| {
            for pass in &self.passes {
                pass.check_node(node, amb, path, &mut out);
            }
        });
        sort_diagnostics(&mut out);
        out
    }

    /// Lint one rewrite: structural passes over the rewritten subtree
    /// plus every rewrite-level check. Paths in the result are relative
    /// to the rewrite site (the root of `after`).
    pub fn lint_rewrite(
        &self,
        rule: &str,
        before: &LogicalPlan,
        after: &LogicalPlan,
        ambient: &Ambient,
    ) -> Vec<Diagnostic> {
        let mut out = self.lint_plan_at(after, ambient);
        for pass in &self.passes {
            pass.check_rewrite(rule, before, after, ambient, &mut out);
        }
        sort_diagnostics(&mut out);
        out
    }

    /// [`lint_rewrite`](Self::lint_rewrite) plus verification of the
    /// property claims the firing recorded.
    pub fn lint_rewrite_claimed(
        &self,
        rule: &str,
        before: &LogicalPlan,
        after: &LogicalPlan,
        ambient: &Ambient,
        claims: &[Claim],
    ) -> Vec<Diagnostic> {
        let mut out = self.lint_rewrite(rule, before, after, ambient);
        for pass in &self.passes {
            pass.check_claims(rule, before, after, claims, &mut out);
        }
        sort_diagnostics(&mut out);
        out
    }
}

/// Errors before warnings; within a severity, keep discovery order
/// (stable sort), so the first diagnostic is the most actionable one.
fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by_key(|d| std::cmp::Reverse(d.severity));
}
