//! Plan linter: multi-pass static analysis over
//! [`xmlpub_algebra::LogicalPlan`].
//!
//! The optimizer of *On Relational Support for XML Publishing* (SIGMOD
//! 2003) rewrites GApply plans under theorem side conditions (§4.1
//! Theorem 1, §4.3 Theorem 2). This crate checks those invariants
//! statically and independently of the rules themselves:
//!
//! * **per-plan passes** re-validate the §3 structural rules (per-group
//!   query operator whitelist, group-scan schemas, correlation depth,
//!   column bounds) over any plan, reporting every finding with a path
//!   to the offending node;
//! * **per-rewrite passes** compare the subtree before and after a rule
//!   firing: the schema must be preserved, provable column provenance
//!   must be preserved, and the firing rule's theorem side conditions
//!   must actually hold ([`passes::SideConditions`]).
//!
//! The optimizer runs the registry after every firing when its
//! `verify_rewrites` flag is set, attributing diagnostics to the firing
//! that introduced them.

pub mod context;
pub mod diagnostic;
pub mod passes;
pub mod registry;

#[cfg(test)]
mod tests;

pub use context::Ambient;
pub use diagnostic::{Diagnostic, PlanPath, Severity};
pub use registry::{LintPass, LintRegistry};
