//! Diagnostics emitted by lint passes.

use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not provably wrong.
    Warning,
    /// A broken invariant: the plan (or the rewrite that produced it) is
    /// unsound.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Location of a node in a plan: the sequence of child indices from the
/// root (`children()` order, so `[]` is the root itself).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct PlanPath(pub Vec<usize>);

impl PlanPath {
    /// The root of the plan.
    pub fn root() -> Self {
        PlanPath(Vec::new())
    }

    /// This path extended by one child step.
    pub fn child(&self, idx: usize) -> Self {
        let mut v = self.0.clone();
        v.push(idx);
        PlanPath(v)
    }

    /// This path re-rooted under `prefix` (for rebasing diagnostics of a
    /// subtree onto the whole plan).
    pub fn prefixed(&self, prefix: &PlanPath) -> Self {
        let mut v = prefix.0.clone();
        v.extend_from_slice(&self.0);
        PlanPath(v)
    }
}

impl fmt::Display for PlanPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "$");
        }
        write!(f, "$")?;
        for step in &self.0 {
            write!(f, ".{step}")?;
        }
        Ok(())
    }
}

/// One finding from one lint pass.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Diagnostic {
    /// Stable id of the lint pass that produced this (e.g.
    /// `"schema-preservation"`).
    pub rule: &'static str,
    /// How serious the finding is.
    pub severity: Severity,
    /// Where in the plan the problem sits.
    pub path: PlanPath,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Build an error-severity diagnostic.
    pub fn error(rule: &'static str, path: PlanPath, message: impl Into<String>) -> Self {
        Diagnostic { rule, severity: Severity::Error, path, message: message.into() }
    }

    /// Build a warning-severity diagnostic.
    pub fn warning(rule: &'static str, path: PlanPath, message: impl Into<String>) -> Self {
        Diagnostic { rule, severity: Severity::Warning, path, message: message.into() }
    }

    /// This diagnostic with its path re-rooted under `prefix` (for
    /// lifting subtree diagnostics to whole-plan coordinates).
    pub fn prefixed(mut self, prefix: &PlanPath) -> Self {
        self.path = self.path.prefixed(prefix);
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}] at {}: {}", self.severity, self.rule, self.path, self.message)
    }
}
