//! Unit tests for the lint passes.

use crate::context::Ambient;
use crate::registry::LintRegistry;
use crate::Severity;
use xmlpub_algebra::{LogicalPlan, ProjectItem};
use xmlpub_common::{DataType, Field, Schema};
use xmlpub_expr::{AggExpr, Expr};

fn schema3() -> Schema {
    Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::Float),
        Field::new("s", DataType::Str),
    ])
}

fn scan() -> LogicalPlan {
    LogicalPlan::scan("t", schema3())
}

fn rules_of(diags: &[crate::Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.rule).collect()
}

#[test]
fn clean_gapply_plan_lints_clean() {
    let pgq = LogicalPlan::group_scan(schema3())
        .select(Expr::col(1).gt(Expr::lit(10.0)))
        .scalar_agg(vec![AggExpr::avg(Expr::col(1), "avg_v")]);
    let plan = scan().gapply(vec![0], pgq);
    let diags = LintRegistry::default().lint_plan(&plan);
    assert!(diags.is_empty(), "unexpected diagnostics: {diags:?}");
}

#[test]
fn base_scan_inside_pgq_is_flagged_with_path() {
    let plan = scan().gapply(vec![0], scan());
    let diags = LintRegistry::default().lint_plan(&plan);
    assert!(rules_of(&diags).contains(&"pgq-operators"), "{diags:?}");
    let d = diags.iter().find(|d| d.rule == "pgq-operators").unwrap();
    assert_eq!(d.path.0, vec![1], "should point at the pgq child: {d}");
    assert_eq!(d.severity, Severity::Error);
}

#[test]
fn group_scan_outside_pgq_is_flagged() {
    let plan = LogicalPlan::group_scan(schema3());
    let diags = LintRegistry::default().lint_plan(&plan);
    assert!(rules_of(&diags).contains(&"pgq-operators"), "{diags:?}");
}

#[test]
fn group_scan_type_mismatch_names_the_column() {
    let wrong = Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::Str), // Float in the group schema
        Field::new("s", DataType::Str),
    ]);
    let plan = scan().gapply(vec![0], LogicalPlan::group_scan(wrong));
    let diags = LintRegistry::default().lint_plan(&plan);
    let d = diags.iter().find(|d| d.rule == "pgq-operators").unwrap();
    assert!(d.message.contains("column #1"), "{d}");
    assert!(d.message.contains("`v`"), "{d}");
}

#[test]
fn group_scan_name_mismatch_is_flagged() {
    let wrong = Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("wrong", DataType::Float),
        Field::new("s", DataType::Str),
    ]);
    let plan = scan().gapply(vec![0], LogicalPlan::group_scan(wrong));
    let diags = LintRegistry::default().lint_plan(&plan);
    assert!(rules_of(&diags).contains(&"pgq-operators"), "{diags:?}");
}

#[test]
fn nested_gapply_and_join_in_pgq_are_flagged() {
    let inner_ga =
        LogicalPlan::group_scan(schema3()).gapply(vec![0], LogicalPlan::group_scan(schema3()));
    let plan = scan().gapply(vec![0], inner_ga);
    let diags = LintRegistry::default().lint_plan(&plan);
    assert!(diags.iter().any(|d| d.message.contains("nested")), "{diags:?}");

    let join_pgq = LogicalPlan::group_scan(schema3()).join(scan(), Expr::col(0).eq(Expr::col(3)));
    let plan = scan().gapply(vec![0], join_pgq);
    let diags = LintRegistry::default().lint_plan(&plan);
    assert!(diags.iter().any(|d| d.message.contains("join")), "{diags:?}");
}

#[test]
fn parallel_safety_audits_every_whitelisted_pgq_operator() {
    // A PGQ exercising the whole §3 whitelist: group scan, select,
    // project, sort, distinct, apply/exists, aggregation, union — all
    // audited parallel-safe, so the pass stays silent.
    let branch = || {
        LogicalPlan::group_scan(schema3())
            .select(Expr::col(1).gt(Expr::lit(10.0)))
            .project_cols(&[0, 1, 2])
            .order_by(vec![xmlpub_algebra::SortKey::asc(0)])
            .distinct()
    };
    let pgq = LogicalPlan::union_all(vec![branch(), branch()])
        .apply(
            LogicalPlan::group_scan(schema3()).scalar_agg(vec![AggExpr::count_star("n")]),
            xmlpub_algebra::ApplyMode::Cross,
        )
        .group_by(vec![0], vec![AggExpr::avg(Expr::col(1), "avg_v")]);
    let plan = scan().gapply(vec![0], pgq);
    let diags = LintRegistry::default().lint_plan(&plan);
    assert!(
        !rules_of(&diags).contains(&"parallel-safety"),
        "whitelisted PGQ operators must pass the parallel audit: {diags:?}"
    );
}

#[test]
fn parallel_safety_flags_unaudited_pgq_operators() {
    // A base-table scan and a join inside the PGQ: both structurally
    // illegal (pgq-operators fires) AND outside the parallel audit
    // list, so parallel-safety independently refuses to clear them for
    // worker-thread execution.
    let join_pgq = LogicalPlan::group_scan(schema3()).join(scan(), Expr::col(0).eq(Expr::col(3)));
    let plan = scan().gapply(vec![0], join_pgq);
    let diags = LintRegistry::default().lint_plan(&plan);
    let ours: Vec<_> = diags.iter().filter(|d| d.rule == "parallel-safety").collect();
    assert!(!ours.is_empty(), "join in PGQ should fail the parallel audit: {diags:?}");
    assert!(
        ours.iter().any(|d| d.message.contains("not audited for parallel execution")),
        "{ours:?}"
    );
    assert!(ours.iter().all(|d| d.severity == Severity::Error));
    // Outside a PGQ the same operators are none of this pass's business.
    let diags =
        LintRegistry::default().lint_plan(&scan().join(scan(), Expr::col(0).eq(Expr::col(3))));
    assert!(!rules_of(&diags).contains(&"parallel-safety"), "{diags:?}");
}

#[test]
fn out_of_range_column_is_flagged() {
    let plan = scan().select(Expr::col(7).gt(Expr::lit(1)));
    let diags = LintRegistry::default().lint_plan(&plan);
    assert!(rules_of(&diags).contains(&"column-bounds"), "{diags:?}");
}

#[test]
fn unbound_correlated_reference_is_flagged() {
    let plan = scan().select(Expr::col(0).eq(Expr::Correlated { level: 0, index: 0 }));
    let diags = LintRegistry::default().lint_plan(&plan);
    assert!(rules_of(&diags).contains(&"correlation-depth"), "{diags:?}");

    // The same reference under an Apply is fine.
    let inner = scan().select(Expr::col(0).eq(Expr::Correlated { level: 0, index: 0 }));
    let plan = scan().apply(inner, xmlpub_algebra::ApplyMode::Cross);
    let diags = LintRegistry::default().lint_plan(&plan);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn union_type_conflict_names_the_column() {
    let other = LogicalPlan::scan(
        "u",
        Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Str), // Float in branch 0
            Field::new("s", DataType::Str),
        ]),
    );
    let plan = LogicalPlan::UnionAll { inputs: vec![scan(), other] };
    let diags = LintRegistry::default().lint_plan(&plan);
    let d = diags.iter().find(|d| d.rule == "pgq-operators").unwrap();
    assert!(d.message.contains("column #1"), "{d}");
}

#[test]
fn schema_preservation_catches_renames_and_arity() {
    let reg = LintRegistry::default();
    let before = scan();
    let renamed = scan().project(vec![
        ProjectItem::col(0),
        ProjectItem::named(Expr::col(1), "renamed"),
        ProjectItem::col(2),
    ]);
    let diags = reg.lint_rewrite("some-rule", &before, &renamed, &Ambient::root());
    assert!(rules_of(&diags).contains(&"schema-preservation"), "{diags:?}");

    let narrowed = scan().project_cols(&[0, 1]);
    let diags = reg.lint_rewrite("some-rule", &before, &narrowed, &Ambient::root());
    assert!(diags.iter().any(|d| d.message.contains("arity")), "{diags:?}");

    // Identity rewrite is clean.
    let diags = reg.lint_rewrite("some-rule", &before, &scan(), &Ambient::root());
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn provenance_catches_column_swap() {
    let reg = LintRegistry::default();
    // Both sides expose (k, v, s) by name, but the rewrite swaps the two
    // Str-typed sources for column 2 vs a second table — simulate by
    // projecting a different source column under the same alias/type.
    let wide = Schema::new(vec![Field::new("a", DataType::Str), Field::new("b", DataType::Str)]);
    let t = LogicalPlan::scan("w", wide);
    let before = t.clone().project(vec![ProjectItem::col(0), ProjectItem::col(1)]);
    let after = t.project(vec![
        ProjectItem::named(Expr::col(1), "a"),
        ProjectItem::named(Expr::col(0), "b"),
    ]);
    let diags = reg.lint_rewrite("some-rule", &before, &after, &Ambient::root());
    assert!(rules_of(&diags).contains(&"column-provenance"), "{diags:?}");
    assert!(diags.iter().any(|d| d.message.contains("rerouted")), "{diags:?}");
}

#[test]
fn origins_trace_through_gapply() {
    let pgq = LogicalPlan::group_scan(schema3())
        .select(Expr::col(1).gt(Expr::lit(1.0)))
        .project_cols(&[2, 1]);
    let plan = scan().gapply(vec![0], pgq);
    let or = crate::passes::origins(&plan);
    assert_eq!(or[0], Some(("t".to_string(), 0))); // key
    assert_eq!(or[1], Some(("t".to_string(), 2))); // projected s
    assert_eq!(or[2], Some(("t".to_string(), 1))); // projected v
}

#[test]
fn select_before_gapply_audit_accepts_the_sound_shape() {
    let reg = LintRegistry::default();
    let pred = Expr::col(1).gt(Expr::lit(10.0));
    let pgq = LogicalPlan::group_scan(schema3()).select(pred.clone());
    let before = scan().gapply(vec![0], pgq.clone());
    let after = scan().select(pred).gapply(vec![0], pgq);
    let diags = reg.lint_rewrite("select-before-gapply", &before, &after, &Ambient::root());
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn select_before_gapply_audit_rejects_wrong_predicate() {
    let reg = LintRegistry::default();
    let pred = Expr::col(1).gt(Expr::lit(10.0));
    let wrong = Expr::col(1).gt(Expr::lit(99.0));
    let pgq = LogicalPlan::group_scan(schema3()).select(pred);
    let before = scan().gapply(vec![0], pgq.clone());
    let after = scan().select(wrong).gapply(vec![0], pgq);
    let diags = reg.lint_rewrite("select-before-gapply", &before, &after, &Ambient::root());
    assert!(rules_of(&diags).contains(&"audit-select-before-gapply"), "{diags:?}");
}

#[test]
fn to_groupby_audit_checks_keys_and_shape() {
    let reg = LintRegistry::default();
    let pgq = LogicalPlan::group_scan(schema3()).scalar_agg(vec![AggExpr::count_star("n")]);
    let before = scan().gapply(vec![0], pgq);
    let good = scan().group_by(vec![0], vec![AggExpr::count_star("n")]);
    let diags = reg.lint_rewrite("gapply-to-groupby", &before, &good, &Ambient::root());
    assert!(diags.is_empty(), "{diags:?}");

    // Wrong keys: group on a different column.
    let bad = scan().group_by(vec![1], vec![AggExpr::count_star("n")]);
    let diags = reg.lint_rewrite("gapply-to-groupby", &before, &bad, &Ambient::root());
    assert!(rules_of(&diags).contains(&"audit-gapply-to-groupby"), "{diags:?}");
}

#[test]
fn properties_pass_attributes_broken_claims_to_the_guilty_rule() {
    use xmlpub_analysis::{Claim, ClaimSubject};
    let reg = LintRegistry::default();
    let before = scan().distinct();
    let after = scan().distinct();

    // An honest claim — distinct makes the whole row a key — verifies.
    let good = Claim::key_within(
        ClaimSubject::Output,
        vec![],
        (0..3).collect(),
        "distinct output row is a key",
    );
    let diags = reg.lint_rewrite_claimed("honest-rule", &before, &after, &Ambient::root(), &[good]);
    assert!(diags.is_empty(), "{diags:?}");

    // A rule inventing a single-column key is caught, attributed by
    // name, and the re-derived facts appear in the message.
    let bad = Claim::key_within(
        ClaimSubject::Output,
        vec![],
        std::iter::once(1).collect(),
        "invented key",
    );
    let diags = reg.lint_rewrite_claimed("buggy-rule", &before, &after, &Ambient::root(), &[bad]);
    let d = diags
        .iter()
        .find(|d| d.rule == "properties")
        .expect("broken claim must produce a properties diagnostic");
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("buggy-rule"), "{d}");
    assert!(d.message.contains("key within {#1}"), "{d}");

    // A claim whose path no longer resolves is also an error.
    let lost = Claim::key_within(
        ClaimSubject::Input,
        vec![0, 0, 0, 0],
        std::iter::once(0).collect(),
        "dangling path",
    );
    let diags = reg.lint_rewrite_claimed("buggy-rule", &before, &after, &Ambient::root(), &[lost]);
    assert!(
        diags.iter().any(|d| d.rule == "properties" && d.message.contains("does not resolve")),
        "{diags:?}"
    );
}

#[test]
fn properties_pass_rejects_disjoint_cardinality_rewrites() {
    let reg = LintRegistry::default();
    // A scalar aggregate returns exactly one row; a union of two scalar
    // aggregates returns exactly two. The intervals are disjoint, so
    // whichever side is wrong, the rewrite cannot be right.
    let one = scan().scalar_agg(vec![AggExpr::count_star("n")]);
    let two = LogicalPlan::union_all(vec![
        scan().scalar_agg(vec![AggExpr::count_star("n")]),
        scan().scalar_agg(vec![AggExpr::count_star("n")]),
    ]);
    let diags = reg.lint_rewrite("bad-cardinality-rule", &one, &two, &Ambient::root());
    let d = diags
        .iter()
        .find(|d| d.rule == "properties")
        .expect("disjoint cardinality must be flagged");
    assert!(d.message.contains("bad-cardinality-rule"), "{d}");
    assert!(d.message.contains("disjoint"), "{d}");
}

#[test]
fn properties_pass_rejects_destroyed_sort_order() {
    let reg = LintRegistry::default();
    let sorted = scan().order_by(vec![xmlpub_algebra::SortKey::asc(0)]);
    let unsorted = scan();
    let diags = reg.lint_rewrite("order-dropping-rule", &sorted, &unsorted, &Ambient::root());
    assert!(
        diags.iter().any(|d| d.rule == "properties" && d.message.contains("sort order")),
        "{diags:?}"
    );
    // Keeping (or strengthening) the order is fine.
    let stronger =
        scan().order_by(vec![xmlpub_algebra::SortKey::asc(0), xmlpub_algebra::SortKey::asc(1)]);
    let diags = reg.lint_rewrite("order-keeping-rule", &sorted, &stronger, &Ambient::root());
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn tagger_safety_requires_a_provable_sort_prefix() {
    use crate::passes::check_tagger_safety;
    use xmlpub_analysis::CatalogProperties;
    let cat = CatalogProperties::empty();
    let sorted =
        scan().order_by(vec![xmlpub_algebra::SortKey::asc(0), xmlpub_algebra::SortKey::asc(1)]);
    assert!(check_tagger_safety(&sorted, 2, &cat).is_none());
    let d = check_tagger_safety(&scan(), 2, &cat).expect("unsorted root must be flagged");
    assert_eq!(d.rule, "tagger-safety");
    assert!(d.message.contains("0..2"), "{d}");
}

#[test]
fn errors_sort_before_warnings() {
    use crate::diagnostic::{Diagnostic, PlanPath};
    use crate::registry::LintPass;

    struct Noisy;
    impl LintPass for Noisy {
        fn name(&self) -> &'static str {
            "noisy"
        }
        fn check_node(
            &self,
            _node: &LogicalPlan,
            _ambient: &Ambient,
            path: &PlanPath,
            out: &mut Vec<Diagnostic>,
        ) {
            out.push(Diagnostic::warning("noisy", path.clone(), "w"));
            out.push(Diagnostic::error("noisy", path.clone(), "e"));
        }
    }
    let mut reg = LintRegistry::empty();
    reg.push(Box::new(Noisy));
    let diags = reg.lint_plan(&scan());
    assert_eq!(diags[0].severity, Severity::Error);
}
