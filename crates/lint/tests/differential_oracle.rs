//! Differential rewrite-soundness oracle.
//!
//! Property: for randomly generated GApply plans over randomly generated
//! small databases, the optimized plan is multiset-equal to the original
//! — the end-to-end ground truth the per-firing linter approximates
//! statically. On a mismatch the failure is shrunk domain-aware (rows
//! first, then plan features) and the guilty rule is isolated by
//! re-running the optimizer with one rule enabled at a time.
//!
//! Float values are restricted to exact binary fractions (multiples of
//! 0.5 in a small range) so aggregate results are identical regardless
//! of the summation order the two plans use.

use proptest::prelude::*;
use xmlpub_algebra::{Catalog, LogicalPlan, TableDef};
use xmlpub_common::{row, DataType, Field, Relation, Schema};
use xmlpub_engine::{execute, execute_with_config, EngineConfig};
use xmlpub_expr::{AggExpr, Expr};
use xmlpub_lint::LintRegistry;
use xmlpub_optimizer::{Optimizer, OptimizerConfig, Statistics};

const DIM_N: i64 = 4;

/// One generated fact row: (key, value, tag). Keys always hit the
/// dimension table so the FK annotation is honest.
type FactRow = (i64, f64, String);

/// How the grouped input is built.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum InputKind {
    /// `scan(fact)`
    Fact,
    /// `scan(fact) ⋈fk scan(dim)` on the grouping key.
    FactJoinDim,
}

/// The per-group query shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum PgqKind {
    /// `$group`
    WholeGroup,
    /// `σ_{v > t}($group)`
    Filter,
    /// `π_{tag,v}(σ_{v > t}($group))`
    FilterProject,
    /// `scalar_agg(sum(v), count(*))`
    ScalarAgg,
    /// `group_by(tag; avg(v))`
    KeyedAgg,
}

/// A compact, shrinkable description of one test plan.
#[derive(Debug, Clone, PartialEq)]
struct PlanSpec {
    input: InputKind,
    pgq: PgqKind,
    /// Threshold for the per-group filter (`v > threshold`).
    threshold: f64,
    /// Outer `σ_{k > c}` above the GApply, if any.
    outer_filter: Option<i64>,
}

fn fact_schema() -> Schema {
    Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::Float),
        Field::new("tag", DataType::Str),
    ])
}

fn dim_schema() -> Schema {
    Schema::new(vec![Field::new("d_k", DataType::Int), Field::new("d_name", DataType::Str)])
}

fn build_catalog(rows: &[FactRow]) -> Catalog {
    let fact = TableDef::new("fact", fact_schema()).with_foreign_key(&["k"], "dim", &["d_k"]);
    let fact_data = Relation::new(
        fact.schema.clone(),
        rows.iter().map(|(k, v, t)| row![*k, *v, t.clone()]).collect(),
    )
    .unwrap();
    let dim = TableDef::new("dim", dim_schema()).with_primary_key(&["d_k"]);
    let dim_data =
        Relation::new(dim.schema.clone(), (0..DIM_N).map(|k| row![k, format!("d{k}")]).collect())
            .unwrap();
    let mut cat = Catalog::new();
    cat.register(dim, dim_data).unwrap();
    cat.register(fact, fact_data).unwrap();
    cat
}

fn build_plan(spec: &PlanSpec) -> LogicalPlan {
    let input = match spec.input {
        InputKind::Fact => LogicalPlan::scan("fact", fact_schema()),
        InputKind::FactJoinDim => LogicalPlan::scan("fact", fact_schema())
            .fk_join(LogicalPlan::scan("dim", dim_schema()), Expr::col(0).eq(Expr::col(3))),
    };
    let gschema = input.schema();
    let gs = LogicalPlan::group_scan(gschema);
    let pgq = match spec.pgq {
        PgqKind::WholeGroup => gs,
        PgqKind::Filter => gs.select(Expr::col(1).gt(Expr::lit(spec.threshold))),
        PgqKind::FilterProject => {
            gs.select(Expr::col(1).gt(Expr::lit(spec.threshold))).project_cols(&[2, 1])
        }
        PgqKind::ScalarAgg => {
            gs.scalar_agg(vec![AggExpr::sum(Expr::col(1), "s"), AggExpr::count_star("n")])
        }
        PgqKind::KeyedAgg => gs.group_by(vec![2], vec![AggExpr::avg(Expr::col(1), "a")]),
    };
    let plan = input.gapply(vec![0], pgq);
    match spec.outer_filter {
        Some(c) => plan.select(Expr::col(0).gt(Expr::lit(c))),
        None => plan,
    }
}

/// Optimizer config for the oracle: every rule on, the linter off — the
/// differential check must stand on its own, independent of the static
/// verifier it cross-validates.
fn oracle_config() -> OptimizerConfig {
    OptimizerConfig { verify_rewrites: false, ..OptimizerConfig::default() }
}

/// Run original vs optimized; `Some(diff)` when the multisets disagree.
fn mismatch(spec: &PlanSpec, rows: &[FactRow], config: OptimizerConfig) -> Option<String> {
    let cat = build_catalog(rows);
    let plan = build_plan(spec);
    let expected = execute(&plan, &cat).unwrap();
    let stats = Statistics::from_catalog(&cat);
    let (optimized, _) = Optimizer::new(config, &stats).optimize(plan);
    let got = execute(&optimized, &cat).unwrap();
    (!expected.bag_eq(&got)).then(|| expected.bag_diff(&got))
}

/// All strictly simpler variants of a spec, most aggressive first.
fn simpler_specs(spec: &PlanSpec) -> Vec<PlanSpec> {
    let mut out = Vec::new();
    if spec.outer_filter.is_some() {
        out.push(PlanSpec { outer_filter: None, ..spec.clone() });
    }
    if spec.input == InputKind::FactJoinDim {
        out.push(PlanSpec { input: InputKind::Fact, ..spec.clone() });
    }
    let simpler_pgq = match spec.pgq {
        PgqKind::WholeGroup => None,
        PgqKind::Filter | PgqKind::ScalarAgg | PgqKind::KeyedAgg => Some(PgqKind::WholeGroup),
        PgqKind::FilterProject => Some(PgqKind::Filter),
    };
    if let Some(p) = simpler_pgq {
        out.push(PlanSpec { pgq: p, ..spec.clone() });
    }
    out
}

/// Shrink a failing (spec, rows) pair: first drop rows, then strip plan
/// features, as long as the mismatch persists.
fn shrink(mut spec: PlanSpec, mut rows: Vec<FactRow>) -> (PlanSpec, Vec<FactRow>) {
    loop {
        let mut shrunk = false;
        let mut i = 0;
        while i < rows.len() {
            let mut fewer = rows.clone();
            fewer.remove(i);
            if mismatch(&spec, &fewer, oracle_config()).is_some() {
                rows = fewer;
                shrunk = true;
            } else {
                i += 1;
            }
        }
        if let Some(simpler) =
            simpler_specs(&spec).into_iter().find(|s| mismatch(s, &rows, oracle_config()).is_some())
        {
            spec = simpler;
            shrunk = true;
        }
        if !shrunk {
            return (spec, rows);
        }
    }
}

/// Which rules, enabled in isolation, reproduce the mismatch.
fn guilty_rules(spec: &PlanSpec, rows: &[FactRow]) -> Vec<&'static str> {
    let all = [
        "select-into-pgq",
        "project-into-pgq",
        "select-before-gapply",
        "project-before-gapply",
        "gapply-to-groupby",
        "group-selection-exists",
        "group-selection-aggregate",
        "invariant-grouping",
        "select-pushdown",
        "decorrelate-scalar-agg",
    ];
    all.into_iter()
        .filter(|rule| {
            let config = OptimizerConfig { verify_rewrites: false, ..OptimizerConfig::only(rule) };
            mismatch(spec, rows, config).is_some()
        })
        .collect()
}

fn report_failure(spec: PlanSpec, rows: Vec<FactRow>, diff: String) -> String {
    let (min_spec, min_rows) = shrink(spec, rows);
    let guilty = guilty_rules(&min_spec, &min_rows);
    let plan = build_plan(&min_spec);
    format!(
        "optimizer changed query results.\n\
         minimal spec: {min_spec:?}\n\
         minimal fact rows: {min_rows:?}\n\
         guilty rule(s) in isolation: {}\n\
         minimal plan:\n{}\n\
         original diff:\n{diff}",
        if guilty.is_empty() {
            "none individually — a rule interaction".to_string()
        } else {
            guilty.join(", ")
        },
        plan.explain()
    )
}

fn spec_strategy() -> impl Strategy<Value = PlanSpec> {
    let input = prop_oneof![Just(InputKind::Fact), Just(InputKind::FactJoinDim)];
    let pgq = prop_oneof![
        Just(PgqKind::WholeGroup),
        Just(PgqKind::Filter),
        Just(PgqKind::FilterProject),
        Just(PgqKind::ScalarAgg),
        Just(PgqKind::KeyedAgg),
    ];
    (input, pgq, -4i64..4i64, 0i64..8i64).prop_map(|(input, pgq, th, of)| PlanSpec {
        input,
        pgq,
        threshold: th as f64 / 2.0,
        // of ∈ 0..8: the top half means "no outer filter" so the option
        // shape stays shrinkable without an Option strategy.
        outer_filter: (of < DIM_N).then_some(of),
    })
}

fn rows_strategy() -> impl Strategy<Value = Vec<FactRow>> {
    proptest::collection::vec(
        (0..DIM_N, -10i64..10i64, "[a-c]").prop_map(|(k, v, t)| (k, v as f64 / 2.0, t)),
        0..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// ≥64 random plan/database pairs: original and optimized plans must
    /// be multiset-equal.
    #[test]
    fn optimized_plans_preserve_multisets(
        spec in spec_strategy(),
        rows in rows_strategy(),
    ) {
        if let Some(diff) = mismatch(&spec, &rows, oracle_config()) {
            return Err(TestCaseError::fail(report_failure(spec, rows, diff)));
        }
    }

    /// Batched execution differential: the same random FK-consistent
    /// plan/database pair produces identical multisets at batch-size
    /// targets 1, 2, 7 and 1024, on both the original and the optimized
    /// plan.
    #[test]
    fn batched_execution_matches_reference_at_all_sizes(
        spec in spec_strategy(),
        rows in rows_strategy(),
    ) {
        let cat = build_catalog(&rows);
        let plan = build_plan(&spec);
        let stats = Statistics::from_catalog(&cat);
        let (optimized, _) = Optimizer::new(oracle_config(), &stats).optimize(plan.clone());
        for p in [&plan, &optimized] {
            let reference = execute_with_config(
                p,
                &cat,
                &EngineConfig { batch_size: 1, ..Default::default() },
            )
            .unwrap();
            for batch_size in [2usize, 7, 1024] {
                let got = execute_with_config(
                    p,
                    &cat,
                    &EngineConfig { batch_size, ..Default::default() },
                )
                .unwrap();
                prop_assert!(
                    got.bag_eq(&reference),
                    "batch_size={batch_size}: {}",
                    got.bag_diff(&reference)
                );
            }
        }
    }

    /// With `verify_rewrites` on, every firing lints clean (no firing
    /// carries diagnostics, and optimize does not panic) and the final
    /// plan passes the full registry.
    #[test]
    fn verified_optimizer_lints_clean_on_random_plans(
        spec in spec_strategy(),
        rows in rows_strategy(),
    ) {
        let cat = build_catalog(&rows);
        let plan = build_plan(&spec);
        let stats = Statistics::from_catalog(&cat);
        let config = OptimizerConfig { verify_rewrites: true, ..OptimizerConfig::default() };
        let (optimized, log) = Optimizer::new(config, &stats).optimize(plan);
        for firing in &log {
            prop_assert!(
                firing.diagnostics.is_empty(),
                "firing {} at {} carries diagnostics: {:?}",
                firing.rule, firing.path, firing.diagnostics
            );
        }
        let diags = LintRegistry::default().lint_plan(&optimized);
        prop_assert!(diags.is_empty(), "final plan lints dirty: {diags:?}");
    }
}
