//! Incremental publishing: delta-maintained published documents.
//!
//! A full publish runs the whole sorted-outer-union and tags every row
//! — O(data) no matter how little changed. This module makes republish
//! cost proportional to the *change* instead. The key structural fact
//! is the sort order the SOU guarantees: the stream is clustered by the
//! root element's key, so every root group's subtree is one contiguous
//! byte range of the document. That makes the root group the natural
//! splice unit:
//!
//! 1. the first publish runs the full SOU but records, per root key,
//!    the byte range its subtree occupies ([`segment_rows`]);
//! 2. a republish asks the catalog for the [`DeltaBatch`]es applied
//!    since the cached document was built, pushes them through the plan
//!    ([`xmlpub_engine::dirty_keys`]) to find which root groups they can
//!    possibly have touched;
//! 3. a *restricted* SOU — the same plan with each branch's root scan
//!    filtered to the dirty keys
//!    ([`xmlpub_xml::sorted_outer_union_for_keys`]) — re-tags only the
//!    dirty groups;
//! 4. [`splice`] merges the fresh segments with the clean groups'
//!    cached bytes, copied verbatim, into a new document.
//!
//! Correctness bar: the spliced document is byte-identical to a
//! from-scratch publish, always. That holds because (a) the restricted
//! plan produces exactly the full plan's rows for those keys, in the
//! same order (primary-key discipline means no sort-prefix ties, so
//! per-group row order is fully determined by the sort keys); (b) the
//! tagger is deterministic per group given its rows; and (c) groups the
//! deltas could not have touched — `dirty_keys` is a *superset* of the
//! truly changed keys — have unchanged rows and therefore unchanged
//! bytes. Whenever any link in that chain is unavailable (plan shape
//! the propagator doesn't handle, delta log trimmed, too large a dirty
//! fraction to be worth it), the caller falls back to a full segmented
//! recompute — slower, never wrong.

use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::fmt;
use std::ops::Range;

use xmlpub_algebra::LogicalPlan;
use xmlpub_common::{Error, Result, Tuple};
use xmlpub_xml::souq::TagPlan;
use xmlpub_xml::StreamingTagger;

/// One root group's slice of the published document.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// The root element's key values (in `root.key_columns` order).
    pub key: Tuple,
    /// Byte range of the group's subtree within [`SegmentedDoc::bytes`].
    pub range: Range<usize>,
    /// SOU rows tagged into this segment.
    pub rows: u64,
}

/// A published document with per-root-group byte ranges: the skeleton
/// an incremental republish splices into.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentedDoc {
    /// The complete document text (UTF-8).
    pub bytes: Vec<u8>,
    /// `bytes[..header_len]` is everything before the first root group
    /// (the XML declaration and the open document element).
    pub header_len: usize,
    /// `bytes[footer_start..]` is everything after the last root group
    /// (the document element's close tag).
    pub footer_start: usize,
    /// Root groups in stream order — which is root-key order, because
    /// the SOU sorts by the root key first.
    pub segments: Vec<Segment>,
    /// Whether the document was tagged with pretty-printing.
    pub pretty: bool,
}

impl SegmentedDoc {
    /// Total SOU rows across all segments.
    pub fn rows(&self) -> u64 {
        self.segments.iter().map(|s| s.rows).sum()
    }

    /// The bytes of one segment.
    pub fn segment_bytes(&self, seg: &Segment) -> &[u8] {
        &self.bytes[seg.range.clone()]
    }
}

/// Root-key order: the engine's total order over values, column by
/// column. This is exactly the order `OrderBy` sorted the SOU by, so
/// cached segments, fresh segments and `dirty_keys` output all agree.
pub fn cmp_keys(a: &Tuple, b: &Tuple) -> Ordering {
    for (x, y) in a.values().iter().zip(b.values().iter()) {
        match x.total_cmp(y) {
            Ordering::Equal => {}
            other => return other,
        }
    }
    a.len().cmp(&b.len())
}

/// Drive the key-clustered SOU stream through the tagger while
/// recording, per root group, the byte range its subtree occupies.
///
/// The boundary protocol piggybacks on the tagger's own state machine:
/// before tagging a root row we force-close every open element (the
/// tagger would do exactly that anyway for a depth-0 row, so the bytes
/// are unchanged) and read the sink position — that position is both
/// the end of the previous group and the start of the next.
pub fn segment_rows<'a, I>(rows: I, tag_plan: &TagPlan, pretty: bool) -> Result<SegmentedDoc>
where
    I: IntoIterator<Item = &'a Tuple>,
{
    let mut tagger = StreamingTagger::new(Vec::new(), tag_plan, pretty);
    tagger.open_document()?;
    let header_len = tagger.sink().len();
    let mut segments: Vec<Segment> = Vec::new();
    // (key, start offset, rows so far) of the group being tagged.
    let mut current: Option<(Tuple, usize, u64)> = None;
    for row in rows {
        if tag_plan.is_root_row(row)? {
            tagger.close_open_elements()?;
            let pos = tagger.sink().len();
            if let Some((key, start, rows)) = current.take() {
                segments.push(Segment { key, range: start..pos, rows });
            }
            current = Some((tag_plan.root_key_of(row), pos, 0));
        } else if current.is_none() {
            return Err(Error::exec(
                "sorted-outer-union stream starts with a non-root row; cannot segment",
            ));
        }
        tagger.write_row(row)?;
        if let Some(c) = current.as_mut() {
            c.2 += 1;
        }
    }
    tagger.close_open_elements()?;
    let footer_start = tagger.sink().len();
    if let Some((key, start, rows)) = current.take() {
        segments.push(Segment { key, range: start..footer_start, rows });
    }
    let bytes = tagger.finish()?;
    Ok(SegmentedDoc { bytes, header_len, footer_start, segments, pretty })
}

/// Splice `fresh` (the re-tagged dirty groups) into `cached`:
///
/// * a cached group whose key is *not* dirty is copied verbatim;
/// * a dirty key present in `fresh` takes its fresh bytes (covers both
///   modified and newly inserted groups);
/// * a dirty key absent from `fresh` is dropped (the group was deleted).
///
/// Both segment lists are sorted by [`cmp_keys`] (the SOU's own sort
/// order) and their surviving keys are disjoint — clean keys come only
/// from `cached`, dirty keys only from `fresh` — so this is a plain
/// two-way merge. `dirty` must be sorted by [`cmp_keys`].
pub fn splice(cached: &SegmentedDoc, dirty: &[Tuple], fresh: &SegmentedDoc) -> SegmentedDoc {
    debug_assert_eq!(cached.pretty, fresh.pretty);
    let is_dirty = |key: &Tuple| dirty.binary_search_by(|probe| cmp_keys(probe, key)).is_ok();
    let clean: Vec<&Segment> = cached.segments.iter().filter(|s| !is_dirty(&s.key)).collect();

    let header = &cached.bytes[..cached.header_len];
    let footer = &cached.bytes[cached.footer_start..];
    let body_estimate: usize = clean.iter().map(|s| s.range.len()).sum::<usize>()
        + (fresh.footer_start - fresh.header_len);
    let mut bytes = Vec::with_capacity(header.len() + body_estimate + footer.len());
    bytes.extend_from_slice(header);

    let mut segments = Vec::with_capacity(clean.len() + fresh.segments.len());
    let mut push = |src: &SegmentedDoc, seg: &Segment, out: &mut Vec<u8>| {
        let start = out.len();
        out.extend_from_slice(src.segment_bytes(seg));
        segments.push(Segment { key: seg.key.clone(), range: start..out.len(), rows: seg.rows });
    };
    let (mut i, mut j) = (0, 0);
    while i < clean.len() || j < fresh.segments.len() {
        let take_clean = match (clean.get(i), fresh.segments.get(j)) {
            (Some(c), Some(f)) => cmp_keys(&c.key, &f.key) == Ordering::Less,
            (Some(_), None) => true,
            (None, _) => false,
        };
        if take_clean {
            push(cached, clean[i], &mut bytes);
            i += 1;
        } else {
            push(fresh, &fresh.segments[j], &mut bytes);
            j += 1;
        }
    }
    let footer_start = bytes.len();
    bytes.extend_from_slice(footer);
    SegmentedDoc { bytes, header_len: header.len(), footer_start, segments, pretty: cached.pretty }
}

/// Every base table a plan scans (lowercased, deduplicated) — the
/// tables whose catalog versions a cached document must remember.
pub fn scan_tables(plan: &LogicalPlan) -> BTreeSet<String> {
    fn walk(plan: &LogicalPlan, out: &mut BTreeSet<String>) {
        if let LogicalPlan::Scan { table, .. } = plan {
            out.insert(table.to_ascii_lowercase());
        }
        for child in plan.children() {
            walk(child, out);
        }
    }
    let mut out = BTreeSet::new();
    walk(plan, &mut out);
    out
}

/// How a republish was served; [`crate::Session::republish`] returns
/// this next to the document so callers (CLI, bench, load harness) can
/// report and assert on the path taken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepublishOutcome {
    /// Full segmented recompute; `reason` says why incremental was not
    /// possible or not worthwhile.
    Full {
        /// `first-publish`, `delta-log-trimmed`, `unsupported-plan` or
        /// `dirty-fraction`.
        reason: &'static str,
    },
    /// Nothing changed since the cached document was built; the cached
    /// bytes are returned as-is.
    Clean,
    /// Dirty groups re-tagged through the restricted plan, clean groups
    /// spliced verbatim from the cache.
    Incremental {
        /// Root groups the deltas may have touched (re-tagged).
        dirty_groups: usize,
        /// Cached root groups copied without re-tagging.
        spliced_groups: usize,
    },
}

impl RepublishOutcome {
    /// True when the cached document was reused (not a full recompute).
    pub fn is_incremental(&self) -> bool {
        matches!(self, RepublishOutcome::Clean | RepublishOutcome::Incremental { .. })
    }
}

impl fmt::Display for RepublishOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepublishOutcome::Full { reason } => write!(f, "full recompute ({reason})"),
            RepublishOutcome::Clean => write!(f, "clean (no changes since last publish)"),
            RepublishOutcome::Incremental { dirty_groups, spliced_groups } => write!(
                f,
                "incremental ({dirty_groups} dirty group(s) re-tagged, {spliced_groups} spliced)"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlpub::Database;
    use xmlpub_common::Value;
    use xmlpub_xml::{sorted_outer_union, sorted_outer_union_for_keys, supplier_parts_view};

    fn key(v: i64) -> Tuple {
        Tuple::new(vec![Value::Int(v)])
    }

    /// The segmented full publish must be byte-identical to the plain
    /// streaming publish, and its segments must tile the body exactly.
    #[test]
    fn segmented_publish_matches_streaming_publish() {
        let db = Database::tpch(0.001).unwrap();
        let view = supplier_parts_view(db.catalog()).unwrap();
        let sou = sorted_outer_union(&view).unwrap();
        let (rel, _) = db.execute_plan(&sou.plan).unwrap();
        for pretty in [false, true] {
            let doc = segment_rows(rel.rows(), &sou.tag_plan, pretty).unwrap();
            let direct = db.publish(&view, pretty).unwrap();
            assert_eq!(String::from_utf8(doc.bytes.clone()).unwrap(), direct);
            // Segments tile [header_len, footer_start) without gaps.
            let mut pos = doc.header_len;
            for seg in &doc.segments {
                assert_eq!(seg.range.start, pos, "gap before {:?}", seg.key);
                pos = seg.range.end;
            }
            assert_eq!(pos, doc.footer_start);
            assert!(!doc.segments.is_empty());
            // Stream order is key order.
            for pair in doc.segments.windows(2) {
                assert_eq!(cmp_keys(&pair[0].key, &pair[1].key), Ordering::Less);
            }
        }
    }

    /// Splicing freshly re-tagged groups over themselves is an identity:
    /// the spliced document equals the full recompute byte for byte.
    #[test]
    fn splice_of_restricted_retag_is_byte_identical() {
        let db = Database::tpch(0.001).unwrap();
        let view = supplier_parts_view(db.catalog()).unwrap();
        let sou = sorted_outer_union(&view).unwrap();
        let (rel, _) = db.execute_plan(&sou.plan).unwrap();
        let cached = segment_rows(rel.rows(), &sou.tag_plan, false).unwrap();

        // Pick a few existing root keys plus one that doesn't exist.
        let mut dirty: Vec<Tuple> =
            cached.segments.iter().step_by(3).map(|s| s.key.clone()).collect();
        dirty.push(key(999_999));
        dirty.sort_by(cmp_keys);

        let restricted = sorted_outer_union_for_keys(&view, &dirty).unwrap();
        let (sub, _) = db.execute_plan(&restricted.plan).unwrap();
        let fresh = segment_rows(sub.rows(), &restricted.tag_plan, false).unwrap();
        // The phantom key produced no segment.
        assert_eq!(fresh.segments.len(), dirty.len() - 1);

        let spliced = splice(&cached, &dirty, &fresh);
        assert_eq!(spliced.bytes, cached.bytes, "identity splice must not change the document");
        assert_eq!(spliced.segments.len(), cached.segments.len());
        assert_eq!(spliced.rows(), cached.rows());
    }

    /// Deleting a dirty group (absent from the fresh doc) drops its
    /// bytes; a fresh-only key is inserted in key order.
    #[test]
    fn splice_handles_group_delete_and_insert() {
        let db = Database::tpch(0.001).unwrap();
        let view = supplier_parts_view(db.catalog()).unwrap();
        let sou = sorted_outer_union(&view).unwrap();
        let (rel, _) = db.execute_plan(&sou.plan).unwrap();
        let cached = segment_rows(rel.rows(), &sou.tag_plan, false).unwrap();
        assert!(cached.segments.len() >= 3);

        // "Delete" the second group: mark it dirty, hand splice a fresh
        // doc not containing it.
        let victim = cached.segments[1].key.clone();
        let dirty = vec![victim.clone()];
        let empty = sorted_outer_union_for_keys(&view, &[]).unwrap();
        let (none, _) = db.execute_plan(&empty.plan).unwrap();
        let fresh = segment_rows(none.rows(), &empty.tag_plan, false).unwrap();
        assert!(fresh.segments.is_empty());
        let spliced = splice(&cached, &dirty, &fresh);
        assert_eq!(spliced.segments.len(), cached.segments.len() - 1);
        assert!(spliced.segments.iter().all(|s| cmp_keys(&s.key, &victim) != Ordering::Equal));
        let expected_len = cached.bytes.len() - cached.segments[1].range.len();
        assert_eq!(spliced.bytes.len(), expected_len);

        // "Insert" it back: splice the dropped group into the shrunken
        // doc and recover the original document exactly.
        let one = sorted_outer_union_for_keys(&view, &dirty).unwrap();
        let (rows, _) = db.execute_plan(&one.plan).unwrap();
        let fresh = segment_rows(rows.rows(), &one.tag_plan, false).unwrap();
        assert_eq!(fresh.segments.len(), 1);
        let restored = splice(&spliced, &dirty, &fresh);
        assert_eq!(restored.bytes, cached.bytes);
    }

    #[test]
    fn scan_tables_walks_the_whole_plan() {
        let db = Database::tpch(0.001).unwrap();
        let view = supplier_parts_view(db.catalog()).unwrap();
        let sou = sorted_outer_union(&view).unwrap();
        let tables = scan_tables(&sou.plan);
        assert!(tables.contains("supplier"), "{tables:?}");
        assert!(tables.contains("partsupp"), "{tables:?}");
        assert!(tables.contains("part"), "{tables:?}");
    }

    #[test]
    fn outcome_display_names_every_path() {
        assert!(RepublishOutcome::Full { reason: "first-publish" }
            .to_string()
            .contains("first-publish"));
        assert!(RepublishOutcome::Clean.is_incremental());
        let inc = RepublishOutcome::Incremental { dirty_groups: 2, spliced_groups: 7 };
        assert!(inc.is_incremental());
        assert!(inc.to_string().contains("2 dirty"));
        assert!(!RepublishOutcome::Full { reason: "dirty-fraction" }.is_incremental());
    }
}
