//! Bounded worker pool with admission control.
//!
//! The service deliberately does *not* spawn a thread per request: a
//! fixed set of workers drains a bounded queue, and a request arriving
//! while the queue is full is **shed** with an error instead of being
//! buffered without limit. Overload therefore degrades into fast,
//! explicit rejections (which the load generator counts) rather than
//! unbounded memory growth — the backpressure contract documented in
//! `docs/serving.md`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use xmlpub_common::{Error, Result};

/// A unit of work: runs on a worker thread, reports back through
/// whatever channel the submitter captured.
pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

/// Prefix of the error message produced when the admission queue sheds a
/// request. Callers (the load generator, clients that want to retry)
/// match on this rather than on the full formatted text.
pub const SHED_MSG: &str = "admission queue full";

struct PoolState {
    queue: VecDeque<Job>,
    shutdown: bool,
}

/// State shared between submitters and workers.
pub(crate) struct PoolShared {
    state: Mutex<PoolState>,
    work_ready: Condvar,
    queue_depth: usize,
    /// Requests admitted to the queue.
    admitted: AtomicU64,
    /// Requests a worker finished running.
    executed: AtomicU64,
    /// Requests rejected because the queue was full.
    shed: AtomicU64,
    /// Jobs that panicked on a worker (the worker survives).
    panicked: AtomicU64,
}

/// A cheap handle for submitting work; sessions hold one each.
#[derive(Clone)]
pub(crate) struct PoolHandle(Arc<PoolShared>);

impl PoolHandle {
    /// Enqueue a job, or shed it when the admission queue is at depth.
    pub fn submit(&self, job: Job) -> Result<()> {
        let shared = &self.0;
        let mut state = shared.state.lock().expect("pool mutex poisoned");
        if state.shutdown {
            return Err(Error::exec("server is shut down"));
        }
        if state.queue.len() >= shared.queue_depth {
            drop(state);
            shared.shed.fetch_add(1, Ordering::Relaxed);
            return Err(Error::exec(format!(
                "{SHED_MSG} ({} waiting): request shed",
                shared.queue_depth
            )));
        }
        state.queue.push_back(job);
        drop(state);
        shared.admitted.fetch_add(1, Ordering::Relaxed);
        shared.work_ready.notify_one();
        Ok(())
    }

    /// Current counter values (sessions embed these in analyze reports).
    pub fn counters(&self) -> PoolCounters {
        counters_of(&self.0)
    }
}

fn counters_of(shared: &PoolShared) -> PoolCounters {
    PoolCounters {
        admitted: shared.admitted.load(Ordering::Relaxed),
        executed: shared.executed.load(Ordering::Relaxed),
        shed: shared.shed.load(Ordering::Relaxed),
        panicked: shared.panicked.load(Ordering::Relaxed),
        in_queue: shared.state.lock().expect("pool mutex poisoned").queue.len(),
    }
}

/// Counter snapshot (see [`crate::ServerStats`] for the assembled view).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolCounters {
    /// Requests admitted to the queue since startup.
    pub admitted: u64,
    /// Requests fully executed.
    pub executed: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Jobs that panicked on a worker thread (counted in `executed` too;
    /// the worker keeps running).
    pub panicked: u64,
    /// Requests currently waiting in the queue.
    pub in_queue: usize,
}

/// The worker threads plus the shared queue.
pub(crate) struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `workers` threads draining a queue bounded at `queue_depth`.
    pub fn new(workers: usize, queue_depth: usize) -> Self {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState { queue: VecDeque::new(), shutdown: false }),
            work_ready: Condvar::new(),
            queue_depth: queue_depth.max(1),
            admitted: AtomicU64::new(0),
            executed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("xmlpub-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool { shared, workers }
    }

    pub fn handle(&self) -> PoolHandle {
        PoolHandle(Arc::clone(&self.shared))
    }

    pub fn counters(&self) -> PoolCounters {
        counters_of(&self.shared)
    }

    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    pub fn queue_depth(&self) -> usize {
        self.shared.queue_depth
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool mutex poisoned");
            state.shutdown = true;
        }
        self.work_ready_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl WorkerPool {
    fn work_ready_all(&self) {
        self.shared.work_ready.notify_all();
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool mutex poisoned");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared.work_ready.wait(state).expect("pool mutex poisoned");
            }
        };
        // A panicking job must not take the worker down with it: dead
        // workers would leave admitted jobs queued forever while their
        // submitters block on a response that never comes. Job closures
        // own their captures ('static), so unwind safety is trivially
        // AssertUnwindSafe — nothing outside the job observes torn state.
        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).is_err() {
            shared.panicked.fetch_add(1, Ordering::Relaxed);
            eprintln!(
                "xmlpub-server: job panicked on {}; worker continues",
                std::thread::current().name().unwrap_or("worker")
            );
        }
        shared.executed.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn jobs_run_and_counters_advance() {
        let pool = WorkerPool::new(2, 8);
        let handle = pool.handle();
        let (tx, rx) = mpsc::channel();
        for i in 0..5 {
            let tx = tx.clone();
            handle.submit(Box::new(move || tx.send(i).unwrap())).unwrap();
        }
        let mut got: Vec<i32> = (0..5).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        let c = pool.counters();
        assert_eq!(c.admitted, 5);
        assert_eq!(c.shed, 0);
    }

    #[test]
    fn overflow_sheds_with_error() {
        // One worker parked on a gate + a depth-1 queue: the third
        // submission must shed.
        let pool = WorkerPool::new(1, 1);
        let handle = pool.handle();
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        handle
            .submit(Box::new(move || {
                started_tx.send(()).unwrap();
                gate_rx.recv().unwrap();
            }))
            .unwrap();
        started_rx.recv().unwrap(); // worker is now busy
        handle.submit(Box::new(|| {})).unwrap(); // fills the queue
        let err = handle.submit(Box::new(|| {})).unwrap_err();
        assert!(err.to_string().contains(SHED_MSG), "{err}");
        assert_eq!(pool.counters().shed, 1);
        gate_tx.send(()).unwrap();
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let pool = WorkerPool::new(1, 8);
        let handle = pool.handle();
        handle.submit(Box::new(|| panic!("job blew up"))).unwrap();
        // The single worker must survive to run this job.
        let (tx, rx) = mpsc::channel();
        handle.submit(Box::new(move || tx.send(42).unwrap())).unwrap();
        assert_eq!(rx.recv().unwrap(), 42);
        // `executed` is bumped after the job body returns, so give the
        // worker a moment to get there.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let c = loop {
            let c = pool.counters();
            if c.executed == 2 || std::time::Instant::now() >= deadline {
                break c;
            }
            std::thread::yield_now();
        };
        assert_eq!(c.panicked, 1);
        assert_eq!(c.executed, 2);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = WorkerPool::new(3, 4);
        let handle = pool.handle();
        handle.submit(Box::new(|| {})).unwrap();
        drop(pool); // must not hang
                    // Submitting after shutdown fails cleanly.
        assert!(handle.submit(Box::new(|| {})).is_err());
    }
}
