//! Slow-query log: a bounded ring of recent requests that crossed a
//! latency threshold.
//!
//! The threshold is runtime-adjustable (`\slow <us>` in the CLI) and a
//! threshold of `0` disables recording entirely, so the common case —
//! no slow log configured — costs one relaxed atomic load per request.
//! The ring keeps the most recent `capacity` offenders; each entry
//! carries a monotonically increasing sequence number so readers can
//! tell how many slow queries were seen in total even after eviction.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One slow request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowQuery {
    /// 1-based position in the stream of slow queries since startup.
    pub seq: u64,
    /// What ran: the SQL text, `prepared:<name>` or `publish`.
    pub label: String,
    /// End-to-end latency (client-observed, including queueing).
    pub total_us: u64,
    /// Rows returned (bytes written for a publish).
    pub rows: u64,
}

/// The bounded, thread-safe log.
pub struct SlowQueryLog {
    threshold_us: AtomicU64,
    capacity: usize,
    state: Mutex<State>,
}

struct State {
    next_seq: u64,
    entries: VecDeque<SlowQuery>,
}

impl SlowQueryLog {
    /// A log recording requests at or above `threshold_us` (0 = off),
    /// retaining the latest `capacity` entries.
    pub fn new(threshold_us: u64, capacity: usize) -> Self {
        SlowQueryLog {
            threshold_us: AtomicU64::new(threshold_us),
            capacity: capacity.max(1),
            state: Mutex::new(State { next_seq: 0, entries: VecDeque::new() }),
        }
    }

    /// The current threshold (0 = disabled).
    pub fn threshold_us(&self) -> u64 {
        self.threshold_us.load(Ordering::Relaxed)
    }

    /// Change the threshold at runtime; 0 disables recording.
    pub fn set_threshold_us(&self, threshold_us: u64) {
        self.threshold_us.store(threshold_us, Ordering::Relaxed);
    }

    /// Record `label` if it crossed the threshold. Returns whether the
    /// request was logged.
    pub fn observe(&self, label: &str, total_us: u64, rows: u64) -> bool {
        let threshold = self.threshold_us();
        if threshold == 0 || total_us < threshold {
            return false;
        }
        let mut state = self.state.lock().unwrap();
        state.next_seq += 1;
        let seq = state.next_seq;
        if state.entries.len() == self.capacity {
            state.entries.pop_front();
        }
        state.entries.push_back(SlowQuery { seq, label: label.to_string(), total_us, rows });
        true
    }

    /// Total slow queries observed since startup (including evicted).
    pub fn total_seen(&self) -> u64 {
        self.state.lock().unwrap().next_seq
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> Vec<SlowQuery> {
        self.state.lock().unwrap().entries.iter().cloned().collect()
    }
}

impl fmt::Display for SlowQueryLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let threshold = self.threshold_us();
        if threshold == 0 {
            return write!(f, "slow-query log disabled (threshold 0)");
        }
        let entries = self.entries();
        writeln!(
            f,
            "== slow queries ==  threshold {threshold}us, {} seen, showing {}",
            self.total_seen(),
            entries.len()
        )?;
        for e in &entries {
            // Long SQL is elided mid-line; the head identifies the query.
            let label = if e.label.chars().count() > 80 {
                let head: String = e.label.chars().take(77).collect();
                format!("{head}...")
            } else {
                e.label.clone()
            };
            writeln!(f, "  #{:<4} {:>10}us {:>8} rows  {label}", e.seq, e.total_us, e.rows)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let log = SlowQueryLog::new(0, 8);
        assert!(!log.observe("select 1", u64::MAX, 0));
        assert!(log.entries().is_empty());
        assert!(log.to_string().contains("disabled"));
    }

    #[test]
    fn threshold_filters_and_ring_evicts_oldest() {
        let log = SlowQueryLog::new(100, 2);
        assert!(!log.observe("fast", 99, 1));
        assert!(log.observe("slow-a", 100, 1));
        assert!(log.observe("slow-b", 500, 2));
        assert!(log.observe("slow-c", 1000, 3));
        let entries = log.entries();
        assert_eq!(
            entries.iter().map(|e| e.label.as_str()).collect::<Vec<_>>(),
            ["slow-b", "slow-c"]
        );
        // Sequence numbers survive eviction.
        assert_eq!(entries[0].seq, 2);
        assert_eq!(log.total_seen(), 3);
    }

    #[test]
    fn threshold_is_runtime_adjustable() {
        let log = SlowQueryLog::new(0, 4);
        assert!(!log.observe("q", 10_000, 1));
        log.set_threshold_us(5_000);
        assert!(log.observe("q", 10_000, 1));
        log.set_threshold_us(0);
        assert!(!log.observe("q", 10_000, 1));
        assert_eq!(log.entries().len(), 1);
    }

    #[test]
    fn render_elides_long_sql() {
        let log = SlowQueryLog::new(1, 4);
        log.observe(&"x".repeat(200), 10, 0);
        let text = log.to_string();
        assert!(text.contains("..."), "{text}");
        assert!(!text.contains(&"x".repeat(100)), "{text}");
    }
}
