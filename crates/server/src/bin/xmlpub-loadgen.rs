//! `xmlpub-loadgen` — headless concurrent smoke test and load harness.
//!
//! ```text
//! cargo run --release -p xmlpub-server --bin xmlpub-loadgen -- \
//!     --scale 0.005 --workers 8 --clients 8 --iters 20 [--cold] [--verify]
//! ```
//!
//! Runs the Figure 8 workloads closed-loop against a fresh server and
//! prints the load report (with the server registry's own latency
//! percentiles) plus the service counters and metrics exposition.
//! `--verify` additionally checks every concurrent answer against a
//! serial single-threaded execution of the same query, and that the
//! server's metrics exposition is non-empty and parses back losslessly;
//! it exits non-zero on any divergence — this is what the CI
//! concurrent-smoke and metrics-smoke jobs run.

use xmlpub::Database;
use xmlpub_server::{run_fig8_load, LoadOptions, Server, ServerConfig};
use xmlpub_xml::workloads::figure8_workloads;

fn num_arg<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, what: &str) -> T {
    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("{what} needs a number");
        std::process::exit(2);
    })
}

fn main() {
    let mut scale = 0.005f64;
    let mut workers = 4usize;
    let mut clients = 4usize;
    let mut iters = 20usize;
    let mut queue_depth = 64usize;
    let mut warm = true;
    let mut verify = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => scale = num_arg(&mut args, "--scale"),
            "--workers" => workers = num_arg(&mut args, "--workers"),
            "--clients" => clients = num_arg(&mut args, "--clients"),
            "--iters" => iters = num_arg(&mut args, "--iters"),
            "--queue-depth" => queue_depth = num_arg(&mut args, "--queue-depth"),
            "--cold" => warm = false,
            "--verify" => verify = true,
            other => {
                eprintln!(
                    "unknown argument '{other}'\nusage: xmlpub-loadgen [--scale F] [--workers N] \
                     [--clients N] [--iters N] [--queue-depth N] [--cold] [--verify]"
                );
                std::process::exit(2);
            }
        }
    }

    eprintln!("generating TPC-H at scale {scale}...");
    let db = Database::tpch(scale).expect("generate TPC-H");
    let server = Server::new(db, ServerConfig { workers, queue_depth, ..ServerConfig::default() });

    if verify {
        // Differential check: each workload's concurrent answer must be
        // identical to a serial execution against the same data.
        eprintln!("verifying concurrent answers against serial execution...");
        let serial = Database::tpch(scale).expect("generate TPC-H");
        let session = server.session();
        for w in figure8_workloads() {
            let expected = serial.sql(&w.gapply_sql).expect("serial execution");
            let (got, _) = session.execute(&w.gapply_sql).expect("server execution");
            if got != expected {
                eprintln!("DIVERGENCE on {}: concurrent result differs from serial", w.name);
                std::process::exit(1);
            }
        }
        eprintln!("verify ok: all {} workloads match serial", figure8_workloads().len());
    }

    match run_fig8_load(&server, LoadOptions { clients, iters, warm }) {
        Ok(report) => {
            println!("{report}");
            println!("{}", server.stats());
            let text = server.metrics_text();
            println!("{text}");
            if verify {
                // Metrics smoke: the exposition must be non-empty,
                // parse back, and account for every completed request.
                let snap = match xmlpub::parse_text(&text) {
                    Ok(snap) => snap,
                    Err(e) => {
                        eprintln!("METRICS: exposition does not parse: {e}");
                        std::process::exit(1);
                    }
                };
                let queries = snap.counter("server.query.count").unwrap_or(0);
                let hist = snap.histogram("server.query_us").map(|h| h.count).unwrap_or(0);
                if queries < report.total_requests || hist != queries {
                    eprintln!(
                        "METRICS: registry lost requests: counter {queries}, histogram {hist}, \
                         load report {}",
                        report.total_requests
                    );
                    std::process::exit(1);
                }
                eprintln!("metrics ok: {queries} requests accounted for in the exposition");
            }
        }
        Err(e) => {
            eprintln!("load run failed: {e}");
            std::process::exit(1);
        }
    }
}
