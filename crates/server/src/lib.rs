//! `xmlpub-server` — a concurrent XML publishing service over the
//! shared engine.
//!
//! The paper's pipeline (§2–§3) is a single-query story: one SQL or
//! XQuery request becomes one sorted-outer-union plan, executed once and
//! tagged once. This crate is the serving layer that turns the same
//! read-only [`Database`] into a multi-client service:
//!
//! * [`Server`] owns the database behind an [`Arc`] plus a bounded
//!   [worker pool](pool) with an admission-control queue — overload
//!   sheds requests with an explicit error instead of queueing without
//!   bound;
//! * [`Session`]s are the per-client handles: prepared statements
//!   (parse/bind/optimize once, execute many) and per-session [`Config`]
//!   overrides such as `engine.batch_size`, executed against the shared
//!   catalog;
//! * the shared [`PlanCache`] memoizes optimized plans across sessions,
//!   keyed by normalized SQL plus the plan-relevant config, keeping each
//!   plan's rule-firing audit so cached plans stay lint-verifiable;
//! * [`loadgen`] is the closed-loop harness that replays the paper's
//!   Figure 8 workloads from many client threads and reports throughput
//!   and latency percentiles.
//!
//! Everything here is safe to share because the engine layers are
//! `Send + Sync` by construction (no interior mutability below the
//! server); the `const` block at the bottom of this file makes that a
//! compile-time guarantee rather than a convention.

pub mod cache;
pub mod incremental;
pub mod loadgen;
pub mod pool;
pub mod session;
pub mod slowlog;

use std::fmt;
use std::sync::Arc;

use xmlpub::{Config, Database, MetricsHandle};

pub use cache::{cache_key, normalize_sql, CacheCounters, CachedPlan, PlanCache};
pub use incremental::{segment_rows, splice, RepublishOutcome, Segment, SegmentedDoc};
pub use loadgen::{percentile, run_fig8_load, ChurnSource, LoadOptions, LoadReport, QueryStats};
pub use pool::{PoolCounters, SHED_MSG};
pub use session::{PublishedDoc, Session, DEFAULT_REPUBLISH_DIRTY_THRESHOLD};
pub use slowlog::{SlowQuery, SlowQueryLog};

use pool::WorkerPool;

/// Server-level knobs; everything else is per-session [`Config`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads executing requests.
    pub workers: usize,
    /// Admission queue depth; a request arriving when this many are
    /// already waiting is shed with an error containing [`SHED_MSG`].
    pub queue_depth: usize,
    /// Maximum plans the shared cache retains (LRU beyond this).
    pub plan_cache_capacity: usize,
    /// Total engine-thread budget across concurrent requests: each
    /// request may run its GApply with at most `dop_budget / workers`
    /// worker threads (floor 1), so a fully loaded pool never schedules
    /// more than ~`dop_budget` engine threads at once. `0` (the
    /// default) means auto: `max(workers, available_parallelism)`,
    /// which degenerates to serial per-request execution whenever the
    /// pool alone can saturate the machine.
    pub dop_budget: usize,
    /// Slow-query log threshold in microseconds; requests at or above
    /// it are recorded. `0` (the default) disables the log. Runtime
    /// adjustable via [`SlowQueryLog::set_threshold_us`].
    pub slow_query_us: u64,
    /// Entries the slow-query log retains (oldest evicted first).
    pub slow_query_capacity: usize,
    /// Server-wide metrics registry. On (the default) sessions record
    /// request latencies and counts; off the handle is a no-op and
    /// [`Server::metrics_text`] reports the registry as disabled — the
    /// switch exists so the observability overhead bench has a real
    /// baseline to compare against.
    pub metrics_enabled: bool,
    /// Default per-session configuration handed to new sessions.
    pub defaults: Config,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 64,
            plan_cache_capacity: 64,
            dop_budget: 0,
            slow_query_us: 0,
            slow_query_capacity: 32,
            metrics_enabled: true,
            defaults: Config::default(),
        }
    }
}

impl ServerConfig {
    /// A configuration whose execution behavior is fully pinned — no
    /// knob derived from the host machine — so snapshot tests produce
    /// identical output everywhere. Two workers (enough to prove the
    /// pool path without queueing serial tests), a dop budget sized so
    /// each request may run its GApply at exactly `dop` workers
    /// (sessions still set `engine.dop = dop` themselves; this only
    /// guarantees the server-side cap does not clamp below it), and
    /// the slow-query log off.
    pub fn deterministic(dop: usize) -> ServerConfig {
        ServerConfig {
            workers: 2,
            dop_budget: 2 * dop.max(1),
            slow_query_us: 0,
            ..ServerConfig::default()
        }
    }

    /// The per-request GApply dop cap this configuration implies.
    pub fn dop_cap(&self) -> usize {
        let budget = if self.dop_budget == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).max(self.workers)
        } else {
            self.dop_budget
        };
        (budget / self.workers.max(1)).max(1)
    }
}

/// What every session shares: the read-only database, the plan cache,
/// and the server-wide per-request dop cap.
pub(crate) struct ServerShared {
    pub db: Database,
    pub cache: PlanCache,
    /// Sessions clamp `engine.dop` to this at execution time (the
    /// session config itself is untouched, and the clamp never reaches
    /// the plan-cache key — dop is an engine knob, not a plan knob).
    pub dop_cap: usize,
    /// Server-wide metrics registry: every session records its request
    /// latencies and counts here (on by default — the text exposition
    /// is the service's primary tuning signal; see
    /// [`ServerConfig::metrics_enabled`]).
    pub metrics: MetricsHandle,
    /// Slow-query log shared by all sessions.
    pub slow: SlowQueryLog,
}

/// The service: shared state plus the worker pool.
pub struct Server {
    shared: Arc<ServerShared>,
    pool: WorkerPool,
    defaults: Config,
}

impl Server {
    /// Start a server over `db` with the given configuration. Worker
    /// threads are spawned immediately and joined on drop.
    pub fn new(db: Database, config: ServerConfig) -> Self {
        Server {
            shared: Arc::new(ServerShared {
                db,
                cache: PlanCache::new(config.plan_cache_capacity),
                dop_cap: config.dop_cap(),
                metrics: if config.metrics_enabled {
                    MetricsHandle::new_registry()
                } else {
                    MetricsHandle::disabled()
                },
                slow: SlowQueryLog::new(config.slow_query_us, config.slow_query_capacity),
            }),
            pool: WorkerPool::new(config.workers, config.queue_depth),
            defaults: config.defaults,
        }
    }

    /// [`Server::new`] with [`ServerConfig::default`].
    pub fn with_defaults(db: Database) -> Self {
        Server::new(db, ServerConfig::default())
    }

    /// Open a session. Sessions are independent: each starts from the
    /// server's default [`Config`] and may override it locally.
    pub fn session(&self) -> Session {
        Session::new(Arc::clone(&self.shared), self.pool.handle(), self.defaults)
    }

    /// The underlying database (read-only).
    pub fn database(&self) -> &Database {
        &self.shared.db
    }

    /// The server-wide metrics registry. Enabled by default; sessions
    /// record request latency histograms and counters into it.
    pub fn metrics(&self) -> &MetricsHandle {
        &self.shared.metrics
    }

    /// The shared slow-query log (`\slow` in the CLI).
    pub fn slow_query_log(&self) -> &SlowQueryLog {
        &self.shared.slow
    }

    /// Text exposition of the server-wide registry (`\metrics` in the
    /// CLI; parsed back by the load harness via `parse_text`). Pool and
    /// plan-cache counters are mirrored in as gauges at snapshot time
    /// so one parseable document carries the whole service state.
    pub fn metrics_text(&self) -> String {
        let stats = self.stats();
        let m = &self.shared.metrics;
        m.gauge_set("server.workers", stats.workers as i64);
        m.gauge_set("server.dop_cap", stats.dop_cap as i64);
        m.gauge_set("server.cache.entries", stats.cache.entries as i64);
        m.gauge_set("server.cache.hits", stats.cache.hits as i64);
        m.gauge_set("server.cache.misses", stats.cache.misses as i64);
        m.gauge_set("server.cache.evictions", stats.cache.evictions as i64);
        m.gauge_set("server.pool.admitted", stats.pool.admitted as i64);
        m.gauge_set("server.pool.executed", stats.pool.executed as i64);
        m.gauge_set("server.pool.shed", stats.pool.shed as i64);
        m.gauge_set("server.pool.panicked", stats.pool.panicked as i64);
        m.gauge_set("server.pool.in_queue", stats.pool.in_queue as i64);
        m.gauge_set("server.slow.threshold_us", self.shared.slow.threshold_us() as i64);
        m.gauge_set("server.slow.seen", self.shared.slow.total_seen() as i64);
        match m.snapshot() {
            Some(snap) => xmlpub::render_text(&snap),
            None => "metrics disabled\n".to_string(),
        }
    }

    /// Snapshot the service counters (`\server-stats` in the CLI).
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            workers: self.pool.worker_count(),
            queue_depth: self.pool.queue_depth(),
            dop_cap: self.shared.dop_cap,
            cache: self.shared.cache.counters(),
            pool: self.pool.counters(),
        }
    }
}

/// A point-in-time snapshot of every service counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Worker threads.
    pub workers: usize,
    /// Configured admission queue depth.
    pub queue_depth: usize,
    /// Per-request GApply dop cap (see [`ServerConfig::dop_budget`]).
    pub dop_cap: usize,
    /// Plan-cache counters.
    pub cache: CacheCounters,
    /// Worker-pool counters.
    pub pool: PoolCounters,
}

impl fmt::Display for ServerStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== server stats ==")?;
        writeln!(
            f,
            "  {} workers, queue depth {}, dop cap {}",
            self.workers, self.queue_depth, self.dop_cap
        )?;
        writeln!(
            f,
            "  plan cache: {} entries, {} hits, {} misses, {} evictions",
            self.cache.entries, self.cache.hits, self.cache.misses, self.cache.evictions
        )?;
        write!(
            f,
            "  pool: {} admitted, {} executed, {} shed, {} panicked, {} in queue",
            self.pool.admitted,
            self.pool.executed,
            self.pool.shed,
            self.pool.panicked,
            self.pool.in_queue
        )
    }
}

/// Satellite: the thread-safety contract, checked at compile time. If a
/// future change introduces interior mutability (`Rc`, `RefCell`, raw
/// `static mut`) anywhere under these types, this block stops compiling.
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    assert_send_sync::<Database>();
    assert_send_sync::<xmlpub::Catalog>();
    assert_send_sync::<xmlpub::Relation>();
    assert_send_sync::<xmlpub::TupleBatch>();
    assert_send_sync::<CachedPlan>();
    assert_send_sync::<PlanCache>();
    assert_send_sync::<Server>();
    assert_send_sync::<Session>();
    assert_send_sync::<ServerStats>();
    assert_send_sync::<SlowQueryLog>();
    assert_send_sync::<MetricsHandle>();
    assert_send_sync::<xmlpub::Observability>();
    assert_send_sync::<xmlpub::TraceHandle>();
};

#[cfg(test)]
mod tests {
    use super::*;

    /// Runtime counterpart of the `const` assertions: a shared
    /// [`Database`] really is queried from several threads at once.
    #[test]
    fn database_is_shared_across_threads() {
        let db = Arc::new(Database::tpch(0.001).unwrap());
        let expected = db.sql("select count(*) from partsupp").unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let db = Arc::clone(&db);
                let expected = &expected;
                s.spawn(move || {
                    let got = db.sql("select count(*) from partsupp").unwrap();
                    assert_eq!(&got, expected);
                });
            }
        });
    }

    #[test]
    fn stats_render_mentions_every_counter_family() {
        let server = Server::with_defaults(Database::tpch(0.001).unwrap());
        let text = server.stats().to_string();
        for needle in
            ["plan cache", "hits", "misses", "evictions", "admitted", "shed", "in queue", "dop cap"]
        {
            assert!(text.contains(needle), "missing {needle:?} in {text}");
        }
    }

    #[test]
    fn disabled_metrics_server_still_serves() {
        let server = Server::new(
            Database::tpch(0.001).unwrap(),
            ServerConfig { metrics_enabled: false, ..ServerConfig::default() },
        );
        let session = server.session();
        let (r, _) = session.execute("select count(*) from part").unwrap();
        assert_eq!(r.rows().len(), 1);
        assert!(server.metrics().snapshot().is_none());
        assert_eq!(server.metrics_text(), "metrics disabled\n");
    }

    #[test]
    fn dop_cap_divides_budget_across_workers() {
        // Auto budget: at least serial, regardless of the machine.
        assert!(ServerConfig::default().dop_cap() >= 1);
        // Explicit budget: 16 engine threads over 2 workers → 8 each.
        let cfg = ServerConfig { workers: 2, dop_budget: 16, ..ServerConfig::default() };
        assert_eq!(cfg.dop_cap(), 8);
        // More workers than budget: floor at serial execution.
        let cfg = ServerConfig { workers: 8, dop_budget: 4, ..ServerConfig::default() };
        assert_eq!(cfg.dop_cap(), 1);
        let server = Server::new(Database::tpch(0.001).unwrap(), cfg);
        assert_eq!(server.stats().dop_cap, 1);
    }
}
