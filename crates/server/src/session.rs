//! Sessions: the per-client face of the service.
//!
//! A [`Session`] is cheap to open and owns nothing shared: a clone of the
//! server's default [`Config`] (override freely — `batch_size`, rule
//! flags, `skip_optimizer` — without affecting other clients), a handle
//! for submitting work to the bounded pool, and a private map of
//! prepared statements. Planning — parse, bind, optimize — happens on
//! the *client* thread through the shared [`PlanCache`]; only execution
//! is shipped to a worker, so a shed request costs no planning work and
//! a cache hit skips planning entirely.

use std::collections::{BTreeMap, HashMap};
use std::sync::{mpsc, Arc};
use std::time::Instant;

use xmlpub::{Config, Database};
use xmlpub_algebra::{validate, LogicalPlan};
use xmlpub_common::{Error, Relation, Result};
use xmlpub_engine::{
    dirty_keys, emit_operator_spans, execute_analyzed, execute_stream_with_obs, execute_with_stats,
    render_profiles, ExecStats, ObsContext, TableDeltas,
};
use xmlpub_obs::{saturating_us_since, MetricsHandle};
use xmlpub_optimizer::{Optimizer, RuleFiring};
use xmlpub_xml::souq::{sorted_outer_union, sorted_outer_union_for_keys};
use xmlpub_xml::view::XmlView;
use xmlpub_xml::StreamingTagger;

use crate::cache::{cache_key, CachedPlan};
use crate::incremental::{self, RepublishOutcome, SegmentedDoc};
use crate::pool::PoolHandle;
use crate::ServerShared;

/// Default republish fallback threshold: when more than this fraction
/// of the cached document's root groups is dirty, the splice overhead
/// is no longer worth it and [`Session::republish`] recomputes from
/// scratch. Tunable per session via
/// [`Session::set_republish_threshold`].
pub const DEFAULT_REPUBLISH_DIRTY_THRESHOLD: f64 = 0.5;

/// A cached published document: the segmented bytes plus the catalog
/// version of every scanned table at build time — the baseline the next
/// republish diffs against.
#[derive(Debug, Clone)]
pub struct PublishedDoc {
    /// The segmented document (header / per-group ranges / footer).
    pub doc: Arc<SegmentedDoc>,
    /// Per-table catalog versions captured *before* the build executed,
    /// so a concurrent writer can only make them stale-low — the next
    /// republish then re-propagates a delta it already absorbed, which
    /// is conservative (extra dirty groups), never wrong.
    pub versions: BTreeMap<String, u64>,
}

/// What a republish worker hands back to the session thread.
enum WorkerOutcome {
    /// No output-visible changes; cached bytes stay valid. Carries the
    /// current versions so the baseline still advances (otherwise a
    /// no-op delta would be re-propagated forever and eventually fall
    /// out of the bounded delta log).
    Clean { versions: BTreeMap<String, u64> },
    /// A new document was built (full recompute or splice).
    Built { doc: SegmentedDoc, versions: BTreeMap<String, u64>, outcome: RepublishOutcome },
}

/// A client connection to a [`crate::Server`].
pub struct Session {
    shared: Arc<ServerShared>,
    pool: PoolHandle,
    config: Config,
    prepared: HashMap<String, Arc<CachedPlan>>,
    /// Per-session metrics registry: the same families as the
    /// server-wide one (`session.*` instead of `server.*`), scoped to
    /// this client's requests.
    metrics: MetricsHandle,
    /// Per-(session, view, pretty) published-document cache for
    /// [`Session::republish`], keyed like the plan cache by the SOU
    /// plan's rendered form.
    published: HashMap<String, PublishedDoc>,
    /// See [`DEFAULT_REPUBLISH_DIRTY_THRESHOLD`].
    republish_threshold: f64,
}

impl Session {
    pub(crate) fn new(shared: Arc<ServerShared>, pool: PoolHandle, config: Config) -> Self {
        Session {
            shared,
            pool,
            config,
            prepared: HashMap::new(),
            metrics: MetricsHandle::new_registry(),
            published: HashMap::new(),
            republish_threshold: DEFAULT_REPUBLISH_DIRTY_THRESHOLD,
        }
    }

    /// This session's private metrics registry.
    pub fn metrics(&self) -> &MetricsHandle {
        &self.metrics
    }

    /// The observability context session executions run under: the
    /// *server-wide* metrics registry (so engine-level counters
    /// aggregate across sessions) plus the shared database's tracer.
    fn exec_obs(&self) -> ObsContext {
        ObsContext {
            metrics: self.shared.metrics.clone(),
            tracer: self.shared.db.observability().tracer.clone(),
            parent_span: 0,
        }
    }

    /// Fold one finished request into the per-session and server-wide
    /// registries and the shared slow-query log.
    fn observe_request(&self, kind: &str, label: &str, us: u64, rows: u64) {
        self.shared.metrics.add(&format!("server.{kind}.count"), 1);
        self.shared.metrics.record_us(&format!("server.{kind}_us"), us);
        self.metrics.add(&format!("session.{kind}.count"), 1);
        self.metrics.record_us(&format!("session.{kind}_us"), us);
        self.shared.slow.observe(label, us, rows);
    }

    /// This session's configuration.
    pub fn config(&self) -> Config {
        self.config
    }

    /// Override this session's configuration (other sessions and the
    /// server defaults are unaffected). Plans are cached per config
    /// fingerprint, so changing plan-relevant flags mid-session simply
    /// routes to different cache entries.
    pub fn config_mut(&mut self) -> &mut Config {
        &mut self.config
    }

    /// The shared database (read-only).
    pub fn database(&self) -> &Database {
        &self.shared.db
    }

    /// The engine config a worker will actually run with: the session's,
    /// with `dop` clamped to the server-wide per-request cap so
    /// concurrent requests can't oversubscribe the machine no matter
    /// what a session asks for. The session config itself is untouched.
    fn engine_for_exec(&self) -> xmlpub::EngineConfig {
        let mut engine = self.config.engine;
        engine.dop = engine.dop.min(self.shared.dop_cap).max(1);
        engine
    }

    /// Optimize a bound plan under *this session's* config — sessions
    /// may flip rule flags the server default doesn't have.
    fn optimize_for_session(&self, plan: LogicalPlan) -> Result<(LogicalPlan, Vec<RuleFiring>)> {
        if self.config.skip_optimizer {
            return Ok((plan, Vec::new()));
        }
        let optimizer = Optimizer::new(self.config.optimizer, self.shared.db.statistics());
        let (optimized, log) = optimizer.optimize(plan);
        validate(&optimized)?;
        Ok((optimized, log))
    }

    /// Plan through the shared cache. Returns the entry and whether it
    /// was a hit.
    fn plan_cached(&self, sql: &str) -> Result<(Arc<CachedPlan>, bool)> {
        let key = cache_key(sql, &self.config);
        self.shared.cache.get_or_build(key.clone(), || {
            let bound = self.shared.db.plan(sql)?;
            let (plan, firings) = self.optimize_for_session(bound)?;
            Ok(CachedPlan { key, plan, firings })
        })
    }

    /// Prepare a statement under `name`: parse, bind and optimize now
    /// (through the shared cache), execute later any number of times.
    /// Returns whether planning was answered from the cache.
    pub fn prepare(&mut self, name: &str, sql: &str) -> Result<bool> {
        let (plan, hit) = self.plan_cached(sql)?;
        self.prepared.insert(name.to_string(), plan);
        Ok(hit)
    }

    /// The cached plan behind a prepared statement (for inspection and
    /// lint verification via [`CachedPlan::verify`]).
    pub fn prepared_plan(&self, name: &str) -> Option<&Arc<CachedPlan>> {
        self.prepared.get(name)
    }

    /// Run a SQL query: plan through the shared cache, execute on the
    /// worker pool. `stats.plan_cache_hits`/`misses` record how planning
    /// was served for *this* request.
    pub fn execute(&self, sql: &str) -> Result<(Relation, ExecStats)> {
        let (plan, hit) = self.plan_cached(sql)?;
        self.execute_cached(plan, hit, sql)
    }

    /// Execute a previously prepared statement. Planning was done at
    /// prepare time, so this always counts as a plan-cache hit.
    pub fn execute_prepared(&self, name: &str) -> Result<(Relation, ExecStats)> {
        let plan = self
            .prepared
            .get(name)
            .ok_or_else(|| Error::exec(format!("no prepared statement named {name:?}")))?;
        self.execute_cached(Arc::clone(plan), true, &format!("prepared:{name}"))
    }

    fn execute_cached(
        &self,
        plan: Arc<CachedPlan>,
        hit: bool,
        label: &str,
    ) -> Result<(Relation, ExecStats)> {
        let engine = self.engine_for_exec();
        let obs = self.exec_obs();
        let start = Instant::now();
        let (rel, mut stats) = self.run_on_pool(move |shared| {
            if !obs.tracer.enabled() {
                return execute_with_stats(&plan.plan, shared.db.catalog(), &engine);
            }
            // Tracing implies per-operator profiling so `op:*` spans can
            // be synthesized after the run.
            let mut engine = engine;
            engine.profile_ops = true;
            let mut span = obs.tracer.span("query", obs.parent_span, &[]);
            let stream = execute_stream_with_obs(
                &plan.plan,
                shared.db.catalog(),
                &engine,
                obs.under(span.id()),
            )?;
            let (rel, stats, profiles) = stream.materialize()?;
            emit_operator_spans(&obs.tracer, span.id(), &profiles);
            span.annotate("rows", &rel.rows().len().to_string());
            Ok((rel, stats))
        })?;
        self.observe_request("query", label, saturating_us_since(start), rel.rows().len() as u64);
        stats.plan_cache_hits = u64::from(hit);
        stats.plan_cache_misses = u64::from(!hit);
        Ok((rel, stats))
    }

    /// `\explain --analyze` through the service: the optimized plan, the
    /// per-operator breakdown and engine counters — plus the server-side
    /// counters (plan cache, pool) the standalone engine can't know.
    pub fn execute_analyzed(&self, sql: &str) -> Result<(Relation, String)> {
        let (cached, hit) = self.plan_cached(sql)?;
        let engine = self.engine_for_exec();
        let worker_plan = Arc::clone(&cached);
        let start = Instant::now();
        let (rel, mut stats, profiles) = self.run_on_pool(move |shared| {
            execute_analyzed(&worker_plan.plan, shared.db.catalog(), &engine)
        })?;
        self.observe_request("query", sql, saturating_us_since(start), rel.rows().len() as u64);
        stats.plan_cache_hits = u64::from(hit);
        stats.plan_cache_misses = u64::from(!hit);
        let mut out = String::from("== optimized plan ==\n");
        out.push_str(&cached.plan.explain());
        out.push_str("\n== operators (analyze) ==\n");
        out.push_str(&render_profiles(&profiles));
        out.push_str(&format!(
            "\n== engine counters ==\n  batch size {}\n  dop {} (session {}, server cap {})\n  {stats:?}\n",
            engine.batch_size, engine.dop, self.config.engine.dop, self.shared.dop_cap
        ));
        let cache = self.shared.cache.counters();
        let pool = self.pool.counters();
        out.push_str(&format!(
            "\n== server counters ==\n  this query: plan cache {}\n  plan cache: {} entries, {} hits, {} misses, {} evictions\n  pool: {} admitted, {} executed, {} shed, {} panicked, {} in queue\n",
            if hit { "hit" } else { "miss" },
            cache.entries,
            cache.hits,
            cache.misses,
            cache.evictions,
            pool.admitted,
            pool.executed,
            pool.shed,
            pool.panicked,
            pool.in_queue
        ));
        Ok((rel, out))
    }

    /// Publish an XML view through the service: the sorted-outer-union
    /// plan goes through the shared cache (keyed by the plan's rendered
    /// form — views have no SQL text) and a worker streams batches
    /// straight into the tagger, so even concurrent publishes hold at
    /// most one batch plus the open-element stack per request.
    pub fn publish(&self, view: &XmlView, pretty: bool) -> Result<String> {
        let (bytes, _rows, _stats) = self.publish_to(view, pretty, Vec::new())?;
        Ok(String::from_utf8(bytes).expect("tagger emits UTF-8 only"))
    }

    /// Publish an XML view straight into an arbitrary sink: the worker
    /// thread writes tagged XML into `sink` as batches stream out of the
    /// engine, so the full document is never materialised. This is how
    /// the network layer streams XML to a socket — the sink there wraps
    /// a `TcpStream` and flushes chunk frames as the tagger produces
    /// bytes. Returns the sink, the number of tagged rows, and the
    /// request's engine counters (so transports can report real stats,
    /// e.g. in an `End` frame).
    ///
    /// The sink crosses onto a pool worker, hence `Send + 'static`; the
    /// calling thread blocks until the request finishes, so a sink
    /// borrowing from the *connection* (via clones/Arcs) sees no
    /// concurrent use.
    pub fn publish_to<W>(
        &self,
        view: &XmlView,
        pretty: bool,
        sink: W,
    ) -> Result<(W, u64, ExecStats)>
    where
        W: std::io::Write + Send + 'static,
    {
        let sou = sorted_outer_union(view)?;
        // "\u{1}publish" cannot collide with any normalized SQL key, and
        // the explain text pins the exact bound plan (tables, join
        // columns, projected fields).
        let key = format!(
            "\u{1}publish\u{1f}{}\u{1f}{:?}\u{1f}{}",
            sou.plan.explain(),
            self.config.optimizer,
            self.config.skip_optimizer
        );
        let (cached, hit) = self.shared.cache.get_or_build(key.clone(), || {
            let (plan, firings) = self.optimize_for_session(sou.plan.clone())?;
            Ok(CachedPlan { key, plan, firings })
        })?;
        let engine = self.engine_for_exec();
        let tag_plan = sou.tag_plan;
        let obs = self.exec_obs();
        let start = Instant::now();
        let (sink, rows, mut stats) = self.run_on_pool(move |shared| {
            let mut span = obs.tracer.span("publish", obs.parent_span, &[]);
            let mut stream = execute_stream_with_obs(
                &cached.plan,
                shared.db.catalog(),
                &engine,
                obs.under(span.id()),
            )?;
            let mut tagger = StreamingTagger::new(sink, &tag_plan, pretty);
            let mut rows = 0u64;
            while let Some(batch) = stream.next_batch()? {
                for row in batch.rows() {
                    tagger.write_row(row)?;
                }
                rows += batch.rows().len() as u64;
            }
            let stats = stream.stats().clone();
            let sink = tagger.finish()?;
            span.annotate("rows", &rows.to_string());
            Ok((sink, rows, stats))
        })?;
        self.observe_request("publish", "publish", saturating_us_since(start), rows);
        stats.plan_cache_hits = u64::from(hit);
        stats.plan_cache_misses = u64::from(!hit);
        Ok((sink, rows, stats))
    }

    /// The republish fallback threshold (fraction of dirty root groups
    /// beyond which a full recompute is cheaper than splicing).
    pub fn republish_threshold(&self) -> f64 {
        self.republish_threshold
    }

    /// Override the republish fallback threshold for this session.
    /// `0.0` forces a full recompute whenever anything changed (useful
    /// as a baseline); `1.0` never falls back on dirty fraction alone.
    pub fn set_republish_threshold(&mut self, threshold: f64) {
        self.republish_threshold = threshold.clamp(0.0, 1.0);
    }

    /// Cached published documents this session holds (one per
    /// (view, pretty) republished so far).
    pub fn published_doc_count(&self) -> usize {
        self.published.len()
    }

    /// The cached published document for `view`/`pretty`, if any.
    pub fn published_doc(&self, view: &XmlView, pretty: bool) -> Option<&PublishedDoc> {
        let sou = sorted_outer_union(view).ok()?;
        self.published.get(&published_doc_key(&sou.plan, pretty))
    }

    /// Publish `view` incrementally: diff the catalog against the
    /// version baseline of this session's cached document, re-tag only
    /// the root groups the deltas may have touched through a
    /// key-restricted sorted-outer-union, and splice the clean groups'
    /// bytes verbatim (see [`crate::incremental`]). Falls back to a
    /// full segmented recompute — never to a wrong answer — when there
    /// is no cached document yet, the bounded delta log has trimmed
    /// past the baseline, delta propagation cannot handle the plan
    /// shape, or the dirty fraction exceeds
    /// [`Session::republish_threshold`].
    ///
    /// The returned document is byte-identical to what
    /// [`Session::publish`] would produce at the same catalog state.
    pub fn republish(
        &mut self,
        view: &XmlView,
        pretty: bool,
    ) -> Result<(String, RepublishOutcome)> {
        let sou = sorted_outer_union(view)?;
        let doc_key = published_doc_key(&sou.plan, pretty);
        let tables: Vec<String> = incremental::scan_tables(&sou.plan).into_iter().collect();
        let cached = self.published.get(&doc_key).cloned();
        let engine = self.engine_for_exec();
        let threshold = self.republish_threshold;
        let config = self.config;
        let obs = self.exec_obs();
        let worker_view = view.clone();
        let start = Instant::now();
        let worked = self.run_on_pool(move |shared| {
            let mut span = obs.tracer.span("republish", obs.parent_span, &[]);
            let out = republish_on_worker(
                shared,
                &worker_view,
                pretty,
                cached,
                &tables,
                threshold,
                &config,
                &engine,
            )?;
            if let WorkerOutcome::Built { doc, outcome, .. } = &out {
                span.annotate("rows", &doc.rows().to_string());
                span.annotate("outcome", &outcome.to_string());
            }
            Ok(out)
        })?;
        let (bytes, rows, outcome) = match worked {
            WorkerOutcome::Clean { versions } => {
                let entry = self
                    .published
                    .get_mut(&doc_key)
                    .expect("clean republish implies a cached document");
                entry.versions = versions;
                (entry.doc.bytes.clone(), entry.doc.rows(), RepublishOutcome::Clean)
            }
            WorkerOutcome::Built { doc, versions, outcome } => {
                let rows = doc.rows();
                let bytes = doc.bytes.clone();
                self.published.insert(doc_key, PublishedDoc { doc: Arc::new(doc), versions });
                (bytes, rows, outcome)
            }
        };
        self.observe_request("republish", "republish", saturating_us_since(start), rows);
        let count = |name: &str, n: u64| {
            self.shared.metrics.add(&format!("server.republish.{name}"), n);
            self.metrics.add(&format!("session.republish.{name}"), n);
        };
        match &outcome {
            RepublishOutcome::Full { reason } => {
                count("fallback.count", 1);
                count(&format!("fallback.{reason}"), 1);
            }
            RepublishOutcome::Clean => count("clean.count", 1),
            RepublishOutcome::Incremental { dirty_groups, spliced_groups } => {
                count("incremental.count", 1);
                count("dirty_groups", *dirty_groups as u64);
                count("spliced_groups", *spliced_groups as u64);
            }
        }
        Ok((String::from_utf8(bytes).expect("tagger emits UTF-8 only"), outcome))
    }

    /// Ship `work` to the pool and wait for its result. The closure runs
    /// on a worker thread against the shared state; admission-control
    /// shedding surfaces here as an [`Error`] carrying
    /// [`crate::SHED_MSG`].
    fn run_on_pool<T, F>(&self, work: F) -> Result<T>
    where
        T: Send + 'static,
        F: FnOnce(&ServerShared) -> Result<T> + Send + 'static,
    {
        let (tx, rx) = mpsc::channel();
        let shared = Arc::clone(&self.shared);
        if let Err(e) = self.pool.submit(Box::new(move || {
            // The client may have given up; a closed channel is fine.
            let _ = tx.send(work(&shared));
        })) {
            self.shared.metrics.add("server.shed.count", 1);
            self.metrics.add("session.shed.count", 1);
            return Err(e);
        }
        rx.recv().map_err(|_| {
            Error::exec("worker dropped the request (job panicked or server shutting down)")
        })?
    }
}

/// Cache key for a published document. `\u{2}doc` cannot collide with
/// SQL keys or `\u{1}publish` plan keys; the explain text pins the
/// bound plan and `pretty` changes the bytes, so it is part of the key.
fn published_doc_key(plan: &LogicalPlan, pretty: bool) -> String {
    format!("\u{2}doc\u{1f}{}\u{1f}{pretty}", plan.explain())
}

/// Optimize a plan on a worker under a session's config (the worker
/// cannot borrow the session, so this mirrors
/// [`Session::optimize_for_session`] against the shared state).
fn optimize_on_worker(
    shared: &ServerShared,
    config: &Config,
    plan: LogicalPlan,
) -> Result<LogicalPlan> {
    if config.skip_optimizer {
        return Ok(plan);
    }
    let optimizer = Optimizer::new(config.optimizer, shared.db.statistics());
    let (optimized, _log) = optimizer.optimize(plan);
    validate(&optimized)?;
    Ok(optimized)
}

/// The republish decision procedure, run on a pool worker. See
/// [`Session::republish`] for the policy; this function implements it:
/// capture versions → collect deltas → propagate to dirty root keys →
/// threshold check → restricted re-tag → splice — with a full
/// segmented recompute at every exit where incremental maintenance is
/// unavailable.
#[allow(clippy::too_many_arguments)]
fn republish_on_worker(
    shared: &ServerShared,
    view: &XmlView,
    pretty: bool,
    cached: Option<PublishedDoc>,
    tables: &[String],
    threshold: f64,
    config: &Config,
    engine: &xmlpub::EngineConfig,
) -> Result<WorkerOutcome> {
    let catalog = shared.db.catalog();
    // Capture versions BEFORE reading any data: a concurrent writer can
    // only make the recorded baseline older than the rows the build
    // sees, so the next republish re-propagates a delta this document
    // already absorbed — conservative, never a missed update.
    let mut versions = BTreeMap::new();
    for t in tables {
        versions.insert(t.clone(), catalog.version(t)?);
    }

    let full = |reason: &'static str| -> Result<WorkerOutcome> {
        let sou = sorted_outer_union(view)?;
        let plan = optimize_on_worker(shared, config, sou.plan)?;
        let (rel, _stats) = execute_with_stats(&plan, catalog, engine)?;
        let doc = incremental::segment_rows(rel.rows(), &sou.tag_plan, pretty)?;
        Ok(WorkerOutcome::Built {
            doc,
            versions: versions.clone(),
            outcome: RepublishOutcome::Full { reason },
        })
    };

    let Some(prev) = cached else {
        return full("first-publish");
    };
    let mut deltas = TableDeltas::new();
    for t in tables {
        let since = prev.versions.get(t).copied().unwrap_or(0);
        match catalog.deltas_since(t, since)? {
            // The bounded log no longer reaches back to the baseline.
            None => return full("delta-log-trimmed"),
            Some(batches) => {
                for batch in batches {
                    deltas.add(t, batch);
                }
            }
        }
    }
    if deltas.is_empty() {
        return Ok(WorkerOutcome::Clean { versions });
    }

    let sou = sorted_outer_union(view)?;
    let dirty = match dirty_keys(&sou.plan, sou.tag_plan.root_key_cols(), catalog, engine, &deltas)
    {
        Ok(Some(keys)) => keys,
        // Plan shape the propagator doesn't handle (or propagation
        // failed): recompute rather than guess.
        Ok(None) | Err(_) => return full("unsupported-plan"),
    };
    if dirty.is_empty() {
        // Deltas exist but touch no output row (e.g. filtered out);
        // the document is unchanged — just advance the baseline.
        return Ok(WorkerOutcome::Clean { versions });
    }
    let total_groups = prev.doc.segments.len().max(1);
    if dirty.len() as f64 / total_groups as f64 > threshold {
        return full("dirty-fraction");
    }

    // The incremental path proper: re-tag only the dirty groups through
    // the key-restricted SOU (optimized per request, deliberately NOT
    // plan-cached — the key list churns every republish), then splice.
    let restricted = sorted_outer_union_for_keys(view, &dirty)?;
    let plan = optimize_on_worker(shared, config, restricted.plan)?;
    let (rel, _stats) = execute_with_stats(&plan, catalog, engine)?;
    let fresh = incremental::segment_rows(rel.rows(), &restricted.tag_plan, pretty)?;
    let doc = incremental::splice(&prev.doc, &dirty, &fresh);
    let spliced_groups = doc.segments.len() - fresh.segments.len();
    Ok(WorkerOutcome::Built {
        doc,
        versions,
        outcome: RepublishOutcome::Incremental { dirty_groups: dirty.len(), spliced_groups },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Server, ServerConfig};
    use xmlpub_common::{DeltaBatch, Tuple, Value};
    use xmlpub_xml::supplier_parts_view;

    const Q: &str = "select gapply(select count(*), avg(p_retailprice) from g) as (n, avgprice) \
                     from partsupp, part where ps_partkey = p_partkey \
                     group by ps_suppkey : g";

    fn server() -> Server {
        Server::new(
            Database::tpch(0.001).unwrap(),
            ServerConfig { workers: 2, queue_depth: 16, ..ServerConfig::default() },
        )
    }

    #[test]
    fn session_execute_matches_direct_database() {
        let server = server();
        let session = server.session();
        let (via_server, stats) = session.execute(Q).unwrap();
        let direct = server.database().sql(Q).unwrap();
        assert_eq!(via_server, direct);
        assert_eq!((stats.plan_cache_hits, stats.plan_cache_misses), (0, 1));
        // Same SQL again: planning is served from the shared cache.
        let (_, stats) = session.execute(Q).unwrap();
        assert_eq!((stats.plan_cache_hits, stats.plan_cache_misses), (1, 0));
    }

    #[test]
    fn prepared_statements_execute_many_times() {
        let server = server();
        let mut session = server.session();
        assert!(!session.prepare("q1", Q).unwrap());
        let direct = server.database().sql(Q).unwrap();
        for _ in 0..3 {
            let (rel, stats) = session.execute_prepared("q1").unwrap();
            assert_eq!(rel, direct);
            assert_eq!(stats.plan_cache_hits, 1);
        }
        // The cached plan is still lint-verifiable.
        let plan = session.prepared_plan("q1").unwrap();
        assert!(plan.verify().is_empty(), "cached plan fails lint: {:?}", plan.verify());
        assert!(!plan.firings.is_empty(), "optimizer audit should ride along");
        // Unknown names fail cleanly.
        assert!(session.execute_prepared("nope").is_err());
    }

    #[test]
    fn per_session_batch_size_overrides_are_isolated() {
        let server = server();
        let mut tuple_at_a_time = server.session();
        tuple_at_a_time.config_mut().engine.batch_size = 1;
        let vectorized = server.session();
        assert_eq!(vectorized.config().engine.batch_size, xmlpub::DEFAULT_BATCH_SIZE);
        let (a, _) = tuple_at_a_time.execute(Q).unwrap();
        let (b, stats_b) = vectorized.execute(Q).unwrap();
        assert_eq!(a, b);
        // batch_size is engine-only: both sessions share one cached plan.
        assert_eq!(stats_b.plan_cache_hits, 1, "engine knobs must not split the plan cache");
        // The override really reaches the engine.
        let (_, report) = tuple_at_a_time.execute_analyzed(Q).unwrap();
        assert!(report.contains("batch size 1\n"), "override missing from report");
    }

    #[test]
    fn sessions_with_different_optimizer_flags_get_different_plans() {
        let server = server();
        let baseline = server.session();
        let mut unoptimized = server.session();
        unoptimized.config_mut().skip_optimizer = true;
        let (a, _) = baseline.execute(Q).unwrap();
        let (b, stats) = unoptimized.execute(Q).unwrap();
        assert_eq!(a, b, "skip_optimizer changes the plan, not the answer");
        assert_eq!(stats.plan_cache_misses, 1, "different config fingerprint, different entry");
    }

    #[test]
    fn analyzed_report_carries_server_counters() {
        let server = server();
        let session = server.session();
        let (_, report) = session.execute_analyzed(Q).unwrap();
        for needle in
            ["== optimized plan ==", "== operators (analyze) ==", "== server counters ==", "pool:"]
        {
            assert!(report.contains(needle), "missing {needle:?} in report");
        }
    }

    #[test]
    fn server_dop_budget_caps_session_dop() {
        let server = Server::new(
            Database::tpch(0.001).unwrap(),
            ServerConfig { workers: 2, queue_depth: 16, dop_budget: 16, ..ServerConfig::default() },
        );
        let mut greedy = server.session();
        greedy.config_mut().engine.dop = 64;
        let (_, report) = greedy.execute_analyzed(Q).unwrap();
        assert!(
            report.contains("dop 8 (session 64, server cap 8)"),
            "expected the clamp in the report:\n{report}"
        );
        // The clamp is execution-side only: a serial session shares the
        // greedy session's cached plan.
        let (_, stats) = server.session().execute(Q).unwrap();
        assert_eq!(stats.plan_cache_hits, 1, "dop must not split the plan cache");
        // The session config itself is untouched by execution.
        assert_eq!(greedy.config().engine.dop, 64);
    }

    /// Stress: many client threads hammer parallel-GApply queries and
    /// publishes through a small pool with an explicit thread budget
    /// (forcing dop > 1 per request even on a single-core CI box). Every
    /// answer must match the serial direct result — under contention,
    /// shedding is the only acceptable failure.
    #[test]
    fn concurrent_parallel_queries_stay_deterministic() {
        let server = Server::new(
            Database::tpch(0.001).unwrap(),
            ServerConfig { workers: 2, queue_depth: 32, dop_budget: 8, ..ServerConfig::default() },
        );
        let direct = server.database().sql(Q).unwrap();
        let view = supplier_parts_view(server.database().catalog()).unwrap();
        let xml = server.database().publish(&view, false).unwrap();
        std::thread::scope(|s| {
            for t in 0..4 {
                let server = &server;
                let direct = &direct;
                let view = &view;
                let xml = &xml;
                s.spawn(move || {
                    let mut session = server.session();
                    session.config_mut().engine.dop = 4;
                    for i in 0..5 {
                        if (t + i) % 2 == 0 {
                            match session.execute(Q) {
                                Ok((rel, _)) => assert_eq!(&rel, direct),
                                Err(e) => assert!(e.to_string().contains(crate::SHED_MSG)),
                            }
                        } else {
                            match session.publish(view, false) {
                                Ok(out) => assert_eq!(&out, xml),
                                Err(e) => assert!(e.to_string().contains(crate::SHED_MSG)),
                            }
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn sessions_record_into_both_registries_and_slow_log() {
        let server = Server::new(
            Database::tpch(0.001).unwrap(),
            ServerConfig {
                workers: 2,
                queue_depth: 16,
                // Threshold 1us: everything observable counts as slow.
                slow_query_us: 1,
                ..ServerConfig::default()
            },
        );
        let a = server.session();
        let b = server.session();
        a.execute(Q).unwrap();
        a.execute(Q).unwrap();
        b.execute(Q).unwrap();
        let view = supplier_parts_view(server.database().catalog()).unwrap();
        b.publish(&view, false).unwrap();

        // Server-wide registry aggregates across sessions.
        let snap = server.metrics().snapshot().unwrap();
        assert_eq!(snap.counter("server.query.count"), Some(3));
        assert_eq!(snap.counter("server.publish.count"), Some(1));
        assert_eq!(snap.histogram("server.query_us").map(|h| h.count), Some(3));
        assert_eq!(snap.histogram("server.publish_us").map(|h| h.count), Some(1));
        // Per-session registries stay private.
        assert_eq!(a.metrics().snapshot().unwrap().counter("session.query.count"), Some(2));
        let b_snap = b.metrics().snapshot().unwrap();
        assert_eq!(b_snap.counter("session.query.count"), Some(1));
        assert_eq!(b_snap.counter("session.publish.count"), Some(1));
        // The slow log saw everything and labels each kind.
        let labels: Vec<String> =
            server.slow_query_log().entries().into_iter().map(|e| e.label).collect();
        assert_eq!(labels.len(), 4, "{labels:?}");
        assert!(labels.iter().any(|l| l.contains("gapply")), "{labels:?}");
        assert!(labels.contains(&"publish".to_string()), "{labels:?}");
        // Prepared executions are labelled by statement name.
        let mut c = server.session();
        c.prepare("q1", Q).unwrap();
        c.execute_prepared("q1").unwrap();
        let labels: Vec<String> =
            server.slow_query_log().entries().into_iter().map(|e| e.label).collect();
        assert!(labels.contains(&"prepared:q1".to_string()), "{labels:?}");
    }

    #[test]
    fn metrics_text_round_trips_with_service_gauges() {
        let server = server();
        server.session().execute(Q).unwrap();
        let text = server.metrics_text();
        let snap = xmlpub::parse_text(&text).expect("exposition must parse");
        assert_eq!(snap.counter("server.query.count"), Some(1));
        assert!(snap.gauge("server.workers").unwrap_or(0) > 0);
        assert!(snap.histogram("server.query_us").is_some());
        // Percentiles are computable from the parsed exposition.
        let h = snap.histogram("server.query_us").unwrap();
        assert!(h.percentile_us(50.0) <= h.percentile_us(99.0));
    }

    /// The incremental republish pipeline end to end: first publish is
    /// a full recompute, a quiescent republish is clean, a one-row
    /// delete dirties exactly one root group and splices the rest, and
    /// every result is byte-identical to a from-scratch publish at the
    /// same catalog state.
    #[test]
    fn republish_is_incremental_and_byte_identical() {
        let server = server();
        let mut session = server.session();
        let view = supplier_parts_view(server.database().catalog()).unwrap();

        let (first, outcome) = session.republish(&view, false).unwrap();
        assert_eq!(outcome, RepublishOutcome::Full { reason: "first-publish" });
        assert_eq!(first, server.database().publish(&view, false).unwrap());
        assert_eq!(session.published_doc_count(), 1);

        let (again, outcome) = session.republish(&view, false).unwrap();
        assert_eq!(outcome, RepublishOutcome::Clean);
        assert_eq!(again, first);

        // Delete one partsupp row: exactly one supplier group dirties.
        let ps = server.database().catalog().data("partsupp").unwrap();
        let victim = ps.rows()[0].clone();
        server.database().apply_delta("partsupp", &DeltaBatch::deletes(vec![victim])).unwrap();
        let (incr, outcome) = session.republish(&view, false).unwrap();
        match outcome {
            RepublishOutcome::Incremental { dirty_groups, spliced_groups } => {
                assert_eq!(dirty_groups, 1);
                assert!(spliced_groups > 0);
            }
            other => panic!("expected incremental republish, got {other}"),
        }
        assert_eq!(incr, server.database().publish(&view, false).unwrap());
        assert_ne!(incr, first, "the delete must be visible in the document");

        // Append a brand-new supplier: a new root group spliced in.
        let sup = server.database().catalog().data("supplier").unwrap();
        let mut vals: Vec<Value> = sup.rows()[0].values().to_vec();
        vals[0] = Value::Int(999_999);
        server
            .database()
            .apply_delta("supplier", &DeltaBatch::appends(vec![Tuple::new(vals)]))
            .unwrap();
        let (ins, outcome) = session.republish(&view, false).unwrap();
        assert!(
            matches!(outcome, RepublishOutcome::Incremental { dirty_groups: 1, .. }),
            "expected one dirty group, got {outcome}"
        );
        assert_eq!(ins, server.database().publish(&view, false).unwrap());

        // Every path left its counter.
        let snap = server.metrics().snapshot().unwrap();
        assert_eq!(snap.counter("server.republish.count"), Some(4));
        assert_eq!(snap.counter("server.republish.incremental.count"), Some(2));
        assert_eq!(snap.counter("server.republish.fallback.count"), Some(1));
        assert_eq!(snap.counter("server.republish.fallback.first-publish"), Some(1));
        assert_eq!(snap.counter("server.republish.clean.count"), Some(1));
        assert_eq!(snap.counter("server.republish.dirty_groups"), Some(2));
    }

    /// A zero threshold forces the dirty-fraction fallback; the answer
    /// is still exact.
    #[test]
    fn republish_threshold_zero_forces_full_recompute() {
        let server = server();
        let mut session = server.session();
        session.set_republish_threshold(0.0);
        assert_eq!(session.republish_threshold(), 0.0);
        let view = supplier_parts_view(server.database().catalog()).unwrap();
        session.republish(&view, false).unwrap();
        let ps = server.database().catalog().data("partsupp").unwrap();
        let victim = ps.rows()[0].clone();
        server.database().apply_delta("partsupp", &DeltaBatch::deletes(vec![victim])).unwrap();
        let (out, outcome) = session.republish(&view, false).unwrap();
        assert_eq!(outcome, RepublishOutcome::Full { reason: "dirty-fraction" });
        assert_eq!(out, server.database().publish(&view, false).unwrap());
    }

    /// Overrun the bounded delta log between republishes: the session
    /// must detect the trimmed history and fall back, not splice stale
    /// bytes.
    #[test]
    fn republish_falls_back_when_delta_log_trims() {
        let server = server();
        let mut session = server.session();
        let view = supplier_parts_view(server.database().catalog()).unwrap();
        session.republish(&view, false).unwrap();
        let ps = server.database().catalog().data("partsupp").unwrap();
        let row = ps.rows()[0].clone();
        // Churn one row in and out until the log forgets the baseline.
        for _ in 0..(xmlpub_algebra::DELTA_LOG_CAPACITY / 2 + 1) {
            server
                .database()
                .apply_delta("partsupp", &DeltaBatch::deletes(vec![row.clone()]))
                .unwrap();
            server
                .database()
                .apply_delta("partsupp", &DeltaBatch::appends(vec![row.clone()]))
                .unwrap();
        }
        let (out, outcome) = session.republish(&view, false).unwrap();
        assert_eq!(outcome, RepublishOutcome::Full { reason: "delta-log-trimmed" });
        assert_eq!(out, server.database().publish(&view, false).unwrap());
        // And the fallback re-established a usable baseline.
        let (_, outcome) = session.republish(&view, false).unwrap();
        assert_eq!(outcome, RepublishOutcome::Clean);
    }

    #[test]
    fn publish_through_session_matches_database_publish() {
        let server = server();
        let session = server.session();
        let view = supplier_parts_view(server.database().catalog()).unwrap();
        for pretty in [false, true] {
            let via_server = session.publish(&view, pretty).unwrap();
            let direct = server.database().publish(&view, pretty).unwrap();
            assert_eq!(via_server, direct);
        }
        // Second publish hits the cached SOU plan.
        let before = server.stats().cache.hits;
        session.publish(&view, false).unwrap();
        assert!(server.stats().cache.hits > before);
    }
}
