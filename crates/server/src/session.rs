//! Sessions: the per-client face of the service.
//!
//! A [`Session`] is cheap to open and owns nothing shared: a clone of the
//! server's default [`Config`] (override freely — `batch_size`, rule
//! flags, `skip_optimizer` — without affecting other clients), a handle
//! for submitting work to the bounded pool, and a private map of
//! prepared statements. Planning — parse, bind, optimize — happens on
//! the *client* thread through the shared [`PlanCache`]; only execution
//! is shipped to a worker, so a shed request costs no planning work and
//! a cache hit skips planning entirely.

use std::collections::HashMap;
use std::sync::{mpsc, Arc};
use std::time::Instant;

use xmlpub::{Config, Database};
use xmlpub_algebra::{validate, LogicalPlan};
use xmlpub_common::{Error, Relation, Result};
use xmlpub_engine::{
    emit_operator_spans, execute_analyzed, execute_stream_with_obs, execute_with_stats,
    render_profiles, ExecStats, ObsContext,
};
use xmlpub_obs::{saturating_us_since, MetricsHandle};
use xmlpub_optimizer::{Optimizer, RuleFiring};
use xmlpub_xml::souq::sorted_outer_union;
use xmlpub_xml::view::XmlView;
use xmlpub_xml::StreamingTagger;

use crate::cache::{cache_key, CachedPlan};
use crate::pool::PoolHandle;
use crate::ServerShared;

/// A client connection to a [`crate::Server`].
pub struct Session {
    shared: Arc<ServerShared>,
    pool: PoolHandle,
    config: Config,
    prepared: HashMap<String, Arc<CachedPlan>>,
    /// Per-session metrics registry: the same families as the
    /// server-wide one (`session.*` instead of `server.*`), scoped to
    /// this client's requests.
    metrics: MetricsHandle,
}

impl Session {
    pub(crate) fn new(shared: Arc<ServerShared>, pool: PoolHandle, config: Config) -> Self {
        Session {
            shared,
            pool,
            config,
            prepared: HashMap::new(),
            metrics: MetricsHandle::new_registry(),
        }
    }

    /// This session's private metrics registry.
    pub fn metrics(&self) -> &MetricsHandle {
        &self.metrics
    }

    /// The observability context session executions run under: the
    /// *server-wide* metrics registry (so engine-level counters
    /// aggregate across sessions) plus the shared database's tracer.
    fn exec_obs(&self) -> ObsContext {
        ObsContext {
            metrics: self.shared.metrics.clone(),
            tracer: self.shared.db.observability().tracer.clone(),
            parent_span: 0,
        }
    }

    /// Fold one finished request into the per-session and server-wide
    /// registries and the shared slow-query log.
    fn observe_request(&self, kind: &str, label: &str, us: u64, rows: u64) {
        self.shared.metrics.add(&format!("server.{kind}.count"), 1);
        self.shared.metrics.record_us(&format!("server.{kind}_us"), us);
        self.metrics.add(&format!("session.{kind}.count"), 1);
        self.metrics.record_us(&format!("session.{kind}_us"), us);
        self.shared.slow.observe(label, us, rows);
    }

    /// This session's configuration.
    pub fn config(&self) -> Config {
        self.config
    }

    /// Override this session's configuration (other sessions and the
    /// server defaults are unaffected). Plans are cached per config
    /// fingerprint, so changing plan-relevant flags mid-session simply
    /// routes to different cache entries.
    pub fn config_mut(&mut self) -> &mut Config {
        &mut self.config
    }

    /// The shared database (read-only).
    pub fn database(&self) -> &Database {
        &self.shared.db
    }

    /// The engine config a worker will actually run with: the session's,
    /// with `dop` clamped to the server-wide per-request cap so
    /// concurrent requests can't oversubscribe the machine no matter
    /// what a session asks for. The session config itself is untouched.
    fn engine_for_exec(&self) -> xmlpub::EngineConfig {
        let mut engine = self.config.engine;
        engine.dop = engine.dop.min(self.shared.dop_cap).max(1);
        engine
    }

    /// Optimize a bound plan under *this session's* config — sessions
    /// may flip rule flags the server default doesn't have.
    fn optimize_for_session(&self, plan: LogicalPlan) -> Result<(LogicalPlan, Vec<RuleFiring>)> {
        if self.config.skip_optimizer {
            return Ok((plan, Vec::new()));
        }
        let optimizer = Optimizer::new(self.config.optimizer, self.shared.db.statistics());
        let (optimized, log) = optimizer.optimize(plan);
        validate(&optimized)?;
        Ok((optimized, log))
    }

    /// Plan through the shared cache. Returns the entry and whether it
    /// was a hit.
    fn plan_cached(&self, sql: &str) -> Result<(Arc<CachedPlan>, bool)> {
        let key = cache_key(sql, &self.config);
        self.shared.cache.get_or_build(key.clone(), || {
            let bound = self.shared.db.plan(sql)?;
            let (plan, firings) = self.optimize_for_session(bound)?;
            Ok(CachedPlan { key, plan, firings })
        })
    }

    /// Prepare a statement under `name`: parse, bind and optimize now
    /// (through the shared cache), execute later any number of times.
    /// Returns whether planning was answered from the cache.
    pub fn prepare(&mut self, name: &str, sql: &str) -> Result<bool> {
        let (plan, hit) = self.plan_cached(sql)?;
        self.prepared.insert(name.to_string(), plan);
        Ok(hit)
    }

    /// The cached plan behind a prepared statement (for inspection and
    /// lint verification via [`CachedPlan::verify`]).
    pub fn prepared_plan(&self, name: &str) -> Option<&Arc<CachedPlan>> {
        self.prepared.get(name)
    }

    /// Run a SQL query: plan through the shared cache, execute on the
    /// worker pool. `stats.plan_cache_hits`/`misses` record how planning
    /// was served for *this* request.
    pub fn execute(&self, sql: &str) -> Result<(Relation, ExecStats)> {
        let (plan, hit) = self.plan_cached(sql)?;
        self.execute_cached(plan, hit, sql)
    }

    /// Execute a previously prepared statement. Planning was done at
    /// prepare time, so this always counts as a plan-cache hit.
    pub fn execute_prepared(&self, name: &str) -> Result<(Relation, ExecStats)> {
        let plan = self
            .prepared
            .get(name)
            .ok_or_else(|| Error::exec(format!("no prepared statement named {name:?}")))?;
        self.execute_cached(Arc::clone(plan), true, &format!("prepared:{name}"))
    }

    fn execute_cached(
        &self,
        plan: Arc<CachedPlan>,
        hit: bool,
        label: &str,
    ) -> Result<(Relation, ExecStats)> {
        let engine = self.engine_for_exec();
        let obs = self.exec_obs();
        let start = Instant::now();
        let (rel, mut stats) = self.run_on_pool(move |shared| {
            if !obs.tracer.enabled() {
                return execute_with_stats(&plan.plan, shared.db.catalog(), &engine);
            }
            // Tracing implies per-operator profiling so `op:*` spans can
            // be synthesized after the run.
            let mut engine = engine;
            engine.profile_ops = true;
            let mut span = obs.tracer.span("query", obs.parent_span, &[]);
            let stream = execute_stream_with_obs(
                &plan.plan,
                shared.db.catalog(),
                &engine,
                obs.under(span.id()),
            )?;
            let (rel, stats, profiles) = stream.materialize()?;
            emit_operator_spans(&obs.tracer, span.id(), &profiles);
            span.annotate("rows", &rel.rows().len().to_string());
            Ok((rel, stats))
        })?;
        self.observe_request("query", label, saturating_us_since(start), rel.rows().len() as u64);
        stats.plan_cache_hits = u64::from(hit);
        stats.plan_cache_misses = u64::from(!hit);
        Ok((rel, stats))
    }

    /// `\explain --analyze` through the service: the optimized plan, the
    /// per-operator breakdown and engine counters — plus the server-side
    /// counters (plan cache, pool) the standalone engine can't know.
    pub fn execute_analyzed(&self, sql: &str) -> Result<(Relation, String)> {
        let (cached, hit) = self.plan_cached(sql)?;
        let engine = self.engine_for_exec();
        let worker_plan = Arc::clone(&cached);
        let start = Instant::now();
        let (rel, mut stats, profiles) = self.run_on_pool(move |shared| {
            execute_analyzed(&worker_plan.plan, shared.db.catalog(), &engine)
        })?;
        self.observe_request("query", sql, saturating_us_since(start), rel.rows().len() as u64);
        stats.plan_cache_hits = u64::from(hit);
        stats.plan_cache_misses = u64::from(!hit);
        let mut out = String::from("== optimized plan ==\n");
        out.push_str(&cached.plan.explain());
        out.push_str("\n== operators (analyze) ==\n");
        out.push_str(&render_profiles(&profiles));
        out.push_str(&format!(
            "\n== engine counters ==\n  batch size {}\n  dop {} (session {}, server cap {})\n  {stats:?}\n",
            engine.batch_size, engine.dop, self.config.engine.dop, self.shared.dop_cap
        ));
        let cache = self.shared.cache.counters();
        let pool = self.pool.counters();
        out.push_str(&format!(
            "\n== server counters ==\n  this query: plan cache {}\n  plan cache: {} entries, {} hits, {} misses, {} evictions\n  pool: {} admitted, {} executed, {} shed, {} panicked, {} in queue\n",
            if hit { "hit" } else { "miss" },
            cache.entries,
            cache.hits,
            cache.misses,
            cache.evictions,
            pool.admitted,
            pool.executed,
            pool.shed,
            pool.panicked,
            pool.in_queue
        ));
        Ok((rel, out))
    }

    /// Publish an XML view through the service: the sorted-outer-union
    /// plan goes through the shared cache (keyed by the plan's rendered
    /// form — views have no SQL text) and a worker streams batches
    /// straight into the tagger, so even concurrent publishes hold at
    /// most one batch plus the open-element stack per request.
    pub fn publish(&self, view: &XmlView, pretty: bool) -> Result<String> {
        let (bytes, _rows, _stats) = self.publish_to(view, pretty, Vec::new())?;
        Ok(String::from_utf8(bytes).expect("tagger emits UTF-8 only"))
    }

    /// Publish an XML view straight into an arbitrary sink: the worker
    /// thread writes tagged XML into `sink` as batches stream out of the
    /// engine, so the full document is never materialised. This is how
    /// the network layer streams XML to a socket — the sink there wraps
    /// a `TcpStream` and flushes chunk frames as the tagger produces
    /// bytes. Returns the sink, the number of tagged rows, and the
    /// request's engine counters (so transports can report real stats,
    /// e.g. in an `End` frame).
    ///
    /// The sink crosses onto a pool worker, hence `Send + 'static`; the
    /// calling thread blocks until the request finishes, so a sink
    /// borrowing from the *connection* (via clones/Arcs) sees no
    /// concurrent use.
    pub fn publish_to<W>(
        &self,
        view: &XmlView,
        pretty: bool,
        sink: W,
    ) -> Result<(W, u64, ExecStats)>
    where
        W: std::io::Write + Send + 'static,
    {
        let sou = sorted_outer_union(view)?;
        // "\u{1}publish" cannot collide with any normalized SQL key, and
        // the explain text pins the exact bound plan (tables, join
        // columns, projected fields).
        let key = format!(
            "\u{1}publish\u{1f}{}\u{1f}{:?}\u{1f}{}",
            sou.plan.explain(),
            self.config.optimizer,
            self.config.skip_optimizer
        );
        let (cached, hit) = self.shared.cache.get_or_build(key.clone(), || {
            let (plan, firings) = self.optimize_for_session(sou.plan.clone())?;
            Ok(CachedPlan { key, plan, firings })
        })?;
        let engine = self.engine_for_exec();
        let tag_plan = sou.tag_plan;
        let obs = self.exec_obs();
        let start = Instant::now();
        let (sink, rows, mut stats) = self.run_on_pool(move |shared| {
            let mut span = obs.tracer.span("publish", obs.parent_span, &[]);
            let mut stream = execute_stream_with_obs(
                &cached.plan,
                shared.db.catalog(),
                &engine,
                obs.under(span.id()),
            )?;
            let mut tagger = StreamingTagger::new(sink, &tag_plan, pretty);
            let mut rows = 0u64;
            while let Some(batch) = stream.next_batch()? {
                for row in batch.rows() {
                    tagger.write_row(row)?;
                }
                rows += batch.rows().len() as u64;
            }
            let stats = stream.stats().clone();
            let sink = tagger.finish()?;
            span.annotate("rows", &rows.to_string());
            Ok((sink, rows, stats))
        })?;
        self.observe_request("publish", "publish", saturating_us_since(start), rows);
        stats.plan_cache_hits = u64::from(hit);
        stats.plan_cache_misses = u64::from(!hit);
        Ok((sink, rows, stats))
    }

    /// Ship `work` to the pool and wait for its result. The closure runs
    /// on a worker thread against the shared state; admission-control
    /// shedding surfaces here as an [`Error`] carrying
    /// [`crate::SHED_MSG`].
    fn run_on_pool<T, F>(&self, work: F) -> Result<T>
    where
        T: Send + 'static,
        F: FnOnce(&ServerShared) -> Result<T> + Send + 'static,
    {
        let (tx, rx) = mpsc::channel();
        let shared = Arc::clone(&self.shared);
        if let Err(e) = self.pool.submit(Box::new(move || {
            // The client may have given up; a closed channel is fine.
            let _ = tx.send(work(&shared));
        })) {
            self.shared.metrics.add("server.shed.count", 1);
            self.metrics.add("session.shed.count", 1);
            return Err(e);
        }
        rx.recv().map_err(|_| {
            Error::exec("worker dropped the request (job panicked or server shutting down)")
        })?
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Server, ServerConfig};
    use xmlpub_xml::supplier_parts_view;

    const Q: &str = "select gapply(select count(*), avg(p_retailprice) from g) as (n, avgprice) \
                     from partsupp, part where ps_partkey = p_partkey \
                     group by ps_suppkey : g";

    fn server() -> Server {
        Server::new(
            Database::tpch(0.001).unwrap(),
            ServerConfig { workers: 2, queue_depth: 16, ..ServerConfig::default() },
        )
    }

    #[test]
    fn session_execute_matches_direct_database() {
        let server = server();
        let session = server.session();
        let (via_server, stats) = session.execute(Q).unwrap();
        let direct = server.database().sql(Q).unwrap();
        assert_eq!(via_server, direct);
        assert_eq!((stats.plan_cache_hits, stats.plan_cache_misses), (0, 1));
        // Same SQL again: planning is served from the shared cache.
        let (_, stats) = session.execute(Q).unwrap();
        assert_eq!((stats.plan_cache_hits, stats.plan_cache_misses), (1, 0));
    }

    #[test]
    fn prepared_statements_execute_many_times() {
        let server = server();
        let mut session = server.session();
        assert!(!session.prepare("q1", Q).unwrap());
        let direct = server.database().sql(Q).unwrap();
        for _ in 0..3 {
            let (rel, stats) = session.execute_prepared("q1").unwrap();
            assert_eq!(rel, direct);
            assert_eq!(stats.plan_cache_hits, 1);
        }
        // The cached plan is still lint-verifiable.
        let plan = session.prepared_plan("q1").unwrap();
        assert!(plan.verify().is_empty(), "cached plan fails lint: {:?}", plan.verify());
        assert!(!plan.firings.is_empty(), "optimizer audit should ride along");
        // Unknown names fail cleanly.
        assert!(session.execute_prepared("nope").is_err());
    }

    #[test]
    fn per_session_batch_size_overrides_are_isolated() {
        let server = server();
        let mut tuple_at_a_time = server.session();
        tuple_at_a_time.config_mut().engine.batch_size = 1;
        let vectorized = server.session();
        assert_eq!(vectorized.config().engine.batch_size, xmlpub::DEFAULT_BATCH_SIZE);
        let (a, _) = tuple_at_a_time.execute(Q).unwrap();
        let (b, stats_b) = vectorized.execute(Q).unwrap();
        assert_eq!(a, b);
        // batch_size is engine-only: both sessions share one cached plan.
        assert_eq!(stats_b.plan_cache_hits, 1, "engine knobs must not split the plan cache");
        // The override really reaches the engine.
        let (_, report) = tuple_at_a_time.execute_analyzed(Q).unwrap();
        assert!(report.contains("batch size 1\n"), "override missing from report");
    }

    #[test]
    fn sessions_with_different_optimizer_flags_get_different_plans() {
        let server = server();
        let baseline = server.session();
        let mut unoptimized = server.session();
        unoptimized.config_mut().skip_optimizer = true;
        let (a, _) = baseline.execute(Q).unwrap();
        let (b, stats) = unoptimized.execute(Q).unwrap();
        assert_eq!(a, b, "skip_optimizer changes the plan, not the answer");
        assert_eq!(stats.plan_cache_misses, 1, "different config fingerprint, different entry");
    }

    #[test]
    fn analyzed_report_carries_server_counters() {
        let server = server();
        let session = server.session();
        let (_, report) = session.execute_analyzed(Q).unwrap();
        for needle in
            ["== optimized plan ==", "== operators (analyze) ==", "== server counters ==", "pool:"]
        {
            assert!(report.contains(needle), "missing {needle:?} in report");
        }
    }

    #[test]
    fn server_dop_budget_caps_session_dop() {
        let server = Server::new(
            Database::tpch(0.001).unwrap(),
            ServerConfig { workers: 2, queue_depth: 16, dop_budget: 16, ..ServerConfig::default() },
        );
        let mut greedy = server.session();
        greedy.config_mut().engine.dop = 64;
        let (_, report) = greedy.execute_analyzed(Q).unwrap();
        assert!(
            report.contains("dop 8 (session 64, server cap 8)"),
            "expected the clamp in the report:\n{report}"
        );
        // The clamp is execution-side only: a serial session shares the
        // greedy session's cached plan.
        let (_, stats) = server.session().execute(Q).unwrap();
        assert_eq!(stats.plan_cache_hits, 1, "dop must not split the plan cache");
        // The session config itself is untouched by execution.
        assert_eq!(greedy.config().engine.dop, 64);
    }

    /// Stress: many client threads hammer parallel-GApply queries and
    /// publishes through a small pool with an explicit thread budget
    /// (forcing dop > 1 per request even on a single-core CI box). Every
    /// answer must match the serial direct result — under contention,
    /// shedding is the only acceptable failure.
    #[test]
    fn concurrent_parallel_queries_stay_deterministic() {
        let server = Server::new(
            Database::tpch(0.001).unwrap(),
            ServerConfig { workers: 2, queue_depth: 32, dop_budget: 8, ..ServerConfig::default() },
        );
        let direct = server.database().sql(Q).unwrap();
        let view = supplier_parts_view(server.database().catalog()).unwrap();
        let xml = server.database().publish(&view, false).unwrap();
        std::thread::scope(|s| {
            for t in 0..4 {
                let server = &server;
                let direct = &direct;
                let view = &view;
                let xml = &xml;
                s.spawn(move || {
                    let mut session = server.session();
                    session.config_mut().engine.dop = 4;
                    for i in 0..5 {
                        if (t + i) % 2 == 0 {
                            match session.execute(Q) {
                                Ok((rel, _)) => assert_eq!(&rel, direct),
                                Err(e) => assert!(e.to_string().contains(crate::SHED_MSG)),
                            }
                        } else {
                            match session.publish(view, false) {
                                Ok(out) => assert_eq!(&out, xml),
                                Err(e) => assert!(e.to_string().contains(crate::SHED_MSG)),
                            }
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn sessions_record_into_both_registries_and_slow_log() {
        let server = Server::new(
            Database::tpch(0.001).unwrap(),
            ServerConfig {
                workers: 2,
                queue_depth: 16,
                // Threshold 1us: everything observable counts as slow.
                slow_query_us: 1,
                ..ServerConfig::default()
            },
        );
        let a = server.session();
        let b = server.session();
        a.execute(Q).unwrap();
        a.execute(Q).unwrap();
        b.execute(Q).unwrap();
        let view = supplier_parts_view(server.database().catalog()).unwrap();
        b.publish(&view, false).unwrap();

        // Server-wide registry aggregates across sessions.
        let snap = server.metrics().snapshot().unwrap();
        assert_eq!(snap.counter("server.query.count"), Some(3));
        assert_eq!(snap.counter("server.publish.count"), Some(1));
        assert_eq!(snap.histogram("server.query_us").map(|h| h.count), Some(3));
        assert_eq!(snap.histogram("server.publish_us").map(|h| h.count), Some(1));
        // Per-session registries stay private.
        assert_eq!(a.metrics().snapshot().unwrap().counter("session.query.count"), Some(2));
        let b_snap = b.metrics().snapshot().unwrap();
        assert_eq!(b_snap.counter("session.query.count"), Some(1));
        assert_eq!(b_snap.counter("session.publish.count"), Some(1));
        // The slow log saw everything and labels each kind.
        let labels: Vec<String> =
            server.slow_query_log().entries().into_iter().map(|e| e.label).collect();
        assert_eq!(labels.len(), 4, "{labels:?}");
        assert!(labels.iter().any(|l| l.contains("gapply")), "{labels:?}");
        assert!(labels.contains(&"publish".to_string()), "{labels:?}");
        // Prepared executions are labelled by statement name.
        let mut c = server.session();
        c.prepare("q1", Q).unwrap();
        c.execute_prepared("q1").unwrap();
        let labels: Vec<String> =
            server.slow_query_log().entries().into_iter().map(|e| e.label).collect();
        assert!(labels.contains(&"prepared:q1".to_string()), "{labels:?}");
    }

    #[test]
    fn metrics_text_round_trips_with_service_gauges() {
        let server = server();
        server.session().execute(Q).unwrap();
        let text = server.metrics_text();
        let snap = xmlpub::parse_text(&text).expect("exposition must parse");
        assert_eq!(snap.counter("server.query.count"), Some(1));
        assert!(snap.gauge("server.workers").unwrap_or(0) > 0);
        assert!(snap.histogram("server.query_us").is_some());
        // Percentiles are computable from the parsed exposition.
        let h = snap.histogram("server.query_us").unwrap();
        assert!(h.percentile_us(50.0) <= h.percentile_us(99.0));
    }

    #[test]
    fn publish_through_session_matches_database_publish() {
        let server = server();
        let session = server.session();
        let view = supplier_parts_view(server.database().catalog()).unwrap();
        for pretty in [false, true] {
            let via_server = session.publish(&view, pretty).unwrap();
            let direct = server.database().publish(&view, pretty).unwrap();
            assert_eq!(via_server, direct);
        }
        // Second publish hits the cached SOU plan.
        let before = server.stats().cache.hits;
        session.publish(&view, false).unwrap();
        assert!(server.stats().cache.hits > before);
    }
}
