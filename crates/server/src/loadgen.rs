//! Closed-loop load generator over the paper's Figure 8 workloads.
//!
//! Each client thread opens its own [`Session`], prepares the five
//! Figure 8 queries (Q1–Q4 plus the reordered Q4 variant) in their
//! `gapply` form, then issues them round-robin as fast as the service
//! answers — *closed loop*: a client never has more than one request in
//! flight, so offered load scales with client count and queue depth
//! rather than running open-loop and measuring its own backlog. Shed
//! requests ([`SHED_MSG`]) are retried after a short exponential
//! backoff and counted; every completed request contributes a latency
//! sample.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use xmlpub_common::{Error, Result};
use xmlpub_obs::HistogramSnapshot;
use xmlpub_xml::workloads::figure8_workloads;

use crate::pool::SHED_MSG;
use crate::Server;

/// Load-run shape.
#[derive(Debug, Clone, Copy)]
pub struct LoadOptions {
    /// Concurrent client threads (each with its own session).
    pub clients: usize,
    /// Round-robin passes over the workload set per client.
    pub iters: usize,
    /// Prepare statements first (warm plan cache / warm path). When
    /// false every request re-plans through the cache by SQL text.
    pub warm: bool,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions { clients: 4, iters: 20, warm: true }
    }
}

/// Latency summary for one workload query.
#[derive(Debug, Clone)]
pub struct QueryStats {
    /// Workload name (Q1…Q4R).
    pub name: &'static str,
    /// Completed requests.
    pub requests: u64,
    /// Mean latency in microseconds.
    pub mean_us: f64,
    /// Median latency.
    pub p50_us: f64,
    /// 95th-percentile latency.
    pub p95_us: f64,
    /// 99th-percentile latency.
    pub p99_us: f64,
}

/// The full report of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// The options the run used.
    pub options: LoadOptions,
    /// Per-query latency summaries, in workload order.
    pub per_query: Vec<QueryStats>,
    /// Total completed requests across all clients and queries.
    pub total_requests: u64,
    /// Requests shed by admission control and retried.
    pub shed_retries: u64,
    /// Wall time spent sleeping in shed backoff, summed across clients.
    /// Together with `shed_retries` this is the full cost of admission
    /// control — it is *excluded* from the per-query service-time
    /// percentiles, which time only the attempt that completed.
    pub retry_backoff: Duration,
    /// Wall-clock duration of the whole run.
    pub wall: Duration,
    /// Completed requests per second of wall time.
    pub throughput_qps: f64,
    /// The server's own `server.query_us` histogram after the run —
    /// percentiles as the *service* measured them (including queueing),
    /// independent of the client-side samples above. `None` only if the
    /// registry recorded nothing.
    pub server_query_us: Option<HistogramSnapshot>,
}

impl std::fmt::Display for LoadReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "== load report ==  {} clients x {} iters ({} path)",
            self.options.clients,
            self.options.iters,
            if self.options.warm { "prepared/warm" } else { "ad-hoc/cold" }
        )?;
        writeln!(
            f,
            "  {:>5}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}",
            "query", "requests", "mean_us", "p50_us", "p95_us", "p99_us"
        )?;
        for q in &self.per_query {
            writeln!(
                f,
                "  {:>5}  {:>8}  {:>10.1}  {:>10.1}  {:>10.1}  {:>10.1}",
                q.name, q.requests, q.mean_us, q.p50_us, q.p95_us, q.p99_us
            )?;
        }
        write!(
            f,
            "  total {} requests in {:.3}s -> {:.1} q/s ({} shed-then-retried, {:.3}s backoff, excluded from percentiles)",
            self.total_requests,
            self.wall.as_secs_f64(),
            self.throughput_qps,
            self.shed_retries,
            self.retry_backoff.as_secs_f64()
        )?;
        if let Some(h) = &self.server_query_us {
            write!(
                f,
                "\n  server registry: {} samples, mean {:.1}us, p50<={}us, p95<={}us, p99<={}us",
                h.count,
                h.mean_us(),
                h.percentile_us(50.0),
                h.percentile_us(95.0),
                h.percentile_us(99.0)
            )?;
        }
        Ok(())
    }
}

/// Nearest-rank percentile over an ascending-sorted sample, `p` in 0–100.
/// Shared with the socket load harness in `xmlpub-net`.
pub fn percentile(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted_us[idx] as f64
}

/// Run the Figure 8 workloads closed-loop against `server`.
pub fn run_fig8_load(server: &Server, options: LoadOptions) -> Result<LoadReport> {
    let workloads = figure8_workloads();
    let shed_retries = AtomicU64::new(0);
    let backoff_us = AtomicU64::new(0);
    let start = Instant::now();

    let per_client: Vec<Result<BTreeMap<&'static str, Vec<u64>>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..options.clients.max(1))
            .map(|_| {
                let mut session = server.session();
                let workloads = &workloads;
                let shed_retries = &shed_retries;
                let backoff_us = &backoff_us;
                s.spawn(move || -> Result<BTreeMap<&'static str, Vec<u64>>> {
                    if options.warm {
                        for w in workloads {
                            session.prepare(w.name, &w.gapply_sql)?;
                        }
                    }
                    let mut samples: BTreeMap<&'static str, Vec<u64>> = BTreeMap::new();
                    for _ in 0..options.iters {
                        for w in workloads {
                            // Closed loop with retry-on-shed: backpressure
                            // slows the client down instead of losing work.
                            // Back off exponentially (capped at ~1ms) so shed
                            // clients sleep instead of busy-spinning a core
                            // away from the workers they are waiting on.
                            //
                            // Each attempt is timed on its own so sheds and
                            // backoff sleeps never inflate the service-time
                            // percentiles; only the attempt that completed
                            // contributes a sample. The retry cost surfaces
                            // separately as `shed_retries`/`retry_backoff`.
                            let mut backoff = Duration::from_micros(10);
                            let us = loop {
                                let t = Instant::now();
                                let attempt = if options.warm {
                                    session.execute_prepared(w.name)
                                } else {
                                    session.execute(&w.gapply_sql)
                                };
                                match attempt {
                                    Ok(_) => break t.elapsed().as_micros() as u64,
                                    Err(Error::Execution(msg)) if msg.contains(SHED_MSG) => {
                                        shed_retries.fetch_add(1, Ordering::Relaxed);
                                        let slept = Instant::now();
                                        std::thread::sleep(backoff);
                                        backoff_us.fetch_add(
                                            slept.elapsed().as_micros() as u64,
                                            Ordering::Relaxed,
                                        );
                                        backoff = (backoff * 2).min(Duration::from_millis(1));
                                    }
                                    Err(e) => return Err(e),
                                }
                            };
                            samples.entry(w.name).or_default().push(us);
                        }
                    }
                    Ok(samples)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("load client panicked")).collect()
    });

    let wall = start.elapsed();

    let mut merged: BTreeMap<&'static str, Vec<u64>> = BTreeMap::new();
    for client in per_client {
        for (name, mut samples) in client? {
            merged.entry(name).or_default().append(&mut samples);
        }
    }

    let mut per_query = Vec::new();
    let mut total_requests = 0u64;
    for w in &workloads {
        let mut samples = merged.remove(w.name).unwrap_or_default();
        samples.sort_unstable();
        total_requests += samples.len() as u64;
        let mean_us = if samples.is_empty() {
            0.0
        } else {
            samples.iter().sum::<u64>() as f64 / samples.len() as f64
        };
        per_query.push(QueryStats {
            name: w.name,
            requests: samples.len() as u64,
            mean_us,
            p50_us: percentile(&samples, 50.0),
            p95_us: percentile(&samples, 95.0),
            p99_us: percentile(&samples, 99.0),
        });
    }

    let secs = wall.as_secs_f64();
    // The service's own view of the run, read back through the text
    // exposition — the same path `\metrics` and external scrapers use.
    let server_query_us = xmlpub::parse_text(&server.metrics_text())
        .ok()
        .and_then(|snap| snap.histogram("server.query_us").cloned());
    Ok(LoadReport {
        options,
        per_query,
        total_requests,
        shed_retries: shed_retries.load(Ordering::Relaxed),
        retry_backoff: Duration::from_micros(backoff_us.load(Ordering::Relaxed)),
        wall,
        throughput_qps: if secs > 0.0 { total_requests as f64 / secs } else { 0.0 },
        server_query_us,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServerConfig;
    use xmlpub::Database;

    #[test]
    fn tiny_load_run_completes_and_reports() {
        let server = Server::new(
            Database::tpch(0.001).unwrap(),
            ServerConfig { workers: 2, queue_depth: 8, ..ServerConfig::default() },
        );
        let report =
            run_fig8_load(&server, LoadOptions { clients: 2, iters: 2, warm: true }).unwrap();
        // 2 clients x 2 iters x 5 workloads.
        assert_eq!(report.total_requests, 20);
        assert_eq!(report.per_query.len(), 5);
        for q in &report.per_query {
            assert_eq!(q.requests, 4);
            assert!(q.p50_us <= q.p95_us && q.p95_us <= q.p99_us);
        }
        assert!(report.throughput_qps > 0.0);
        // The server-side histogram saw every completed request.
        let h = report.server_query_us.as_ref().expect("server registry histogram");
        assert_eq!(h.count, report.total_requests);
        assert!(h.percentile_us(50.0) <= h.percentile_us(99.0));
        let text = report.to_string();
        assert!(text.contains("p95_us") && text.contains("q/s"), "{text}");
        assert!(text.contains("server registry:"), "{text}");
        // Retry cost is reported separately from the service-time
        // percentiles; a run with no sheds slept for nothing.
        assert!(text.contains("backoff, excluded from percentiles"), "{text}");
        if report.shed_retries == 0 {
            assert_eq!(report.retry_backoff, Duration::ZERO);
        }
        // The warm path really warmed the cache. The five workloads
        // share four distinct gapply plans (Q4r re-prepares Q4's text),
        // and both clients warm *concurrently*: simultaneous misses on
        // one key both build (the loser adopts the winner's entry), so
        // the exact hit/miss split is timing-dependent. Assert the
        // race-free invariants instead: every lookup accounted, all
        // four plans resident, and each client's own Q4r prepare hits
        // the Q4 entry it just planted.
        let stats = server.stats();
        assert_eq!(stats.cache.entries, 4, "expected 4 distinct warm plans, got {stats}");
        assert_eq!(stats.cache.evictions, 0, "nothing should be evicted, got {stats}");
        assert_eq!(
            stats.cache.hits + stats.cache.misses,
            10,
            "2 clients x 5 prepares, got {stats}"
        );
        assert!(stats.cache.hits >= 2, "expected at least the intra-client hits, got {stats}");
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let samples: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&samples, 50.0), 51.0);
        assert_eq!(percentile(&samples, 99.0), 99.0);
        assert_eq!(percentile(&samples, 100.0), 100.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7], 99.0), 7.0);
    }
}
