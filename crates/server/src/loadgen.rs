//! Closed-loop load generator over the paper's Figure 8 workloads.
//!
//! Each client thread opens its own [`Session`], prepares the five
//! Figure 8 queries (Q1–Q4 plus the reordered Q4 variant) in their
//! `gapply` form, then issues them round-robin as fast as the service
//! answers — *closed loop*: a client never has more than one request in
//! flight, so offered load scales with client count and queue depth
//! rather than running open-loop and measuring its own backlog. Shed
//! requests ([`SHED_MSG`]) are retried after a short exponential
//! backoff and counted; every completed request contributes a latency
//! sample.
//!
//! With a non-zero `update_mix` the clients interleave **writes**: a
//! deterministic fraction of requests become update-then-republish
//! operations (rename one supplier, then [`Session::republish`] the
//! Figure 1 view), exercising the delta-maintained document path under
//! concurrent query load. Update latencies are reported separately.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use xmlpub_common::{DeltaBatch, Error, Result, Tuple, Value};
use xmlpub_obs::HistogramSnapshot;
use xmlpub_xml::workloads::figure8_workloads;

use crate::pool::SHED_MSG;
use crate::{Server, Session};

/// Load-run shape.
#[derive(Debug, Clone, Copy)]
pub struct LoadOptions {
    /// Concurrent client threads (each with its own session).
    pub clients: usize,
    /// Round-robin passes over the workload set per client.
    pub iters: usize,
    /// Prepare statements first (warm plan cache / warm path). When
    /// false every request re-plans through the cache by SQL text.
    pub warm: bool,
    /// Fraction of requests (0.0–1.0) that are update-then-republish
    /// operations instead of queries. 0 disables writes entirely.
    pub update_mix: f64,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions { clients: 4, iters: 20, warm: true, update_mix: 0.0 }
    }
}

/// Serialized churn source shared by all writer clients: renames one
/// supplier per tick, reading the current tuple under the lock so the
/// delete side of the batch always matches.
pub struct ChurnSource {
    tick: Mutex<u64>,
}

impl Default for ChurnSource {
    fn default() -> Self {
        ChurnSource { tick: Mutex::new(0) }
    }
}

impl ChurnSource {
    /// Rename one supplier (round-robin by tick) through
    /// [`crate::Server::database`]'s delta path.
    pub fn mutate_one(&self, server: &Server) -> Result<()> {
        let mut tick = self.tick.lock().map_err(|_| Error::exec("churn lock poisoned"))?;
        *tick += 1;
        let db = server.database();
        let name_col = db.catalog().table("supplier")?.schema.resolve(None, "s_name")?;
        let data = db.catalog().data("supplier")?;
        let rows = data.rows();
        if rows.is_empty() {
            return Err(Error::exec("supplier table is empty; nothing to churn"));
        }
        let old = rows[(*tick as usize) % rows.len()].clone();
        let mut vals = old.values().to_vec();
        let base = match &vals[name_col] {
            Value::Str(s) => s.split(" u#").next().unwrap_or(s).to_string(),
            other => return Err(Error::exec(format!("s_name should be a string, got {other:?}"))),
        };
        vals[name_col] = Value::str(format!("{base} u#{}", *tick));
        let batch = DeltaBatch::new(vec![Tuple::new(vals)], vec![old]);
        db.apply_delta("supplier", &batch)?;
        Ok(())
    }
}

/// Latency summary for one workload query.
#[derive(Debug, Clone)]
pub struct QueryStats {
    /// Workload name (Q1…Q4R).
    pub name: &'static str,
    /// Completed requests.
    pub requests: u64,
    /// Mean latency in microseconds.
    pub mean_us: f64,
    /// Median latency.
    pub p50_us: f64,
    /// 95th-percentile latency.
    pub p95_us: f64,
    /// 99th-percentile latency.
    pub p99_us: f64,
}

/// The full report of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// The options the run used.
    pub options: LoadOptions,
    /// Per-query latency summaries, in workload order.
    pub per_query: Vec<QueryStats>,
    /// Update-then-republish latency summary, present when the run had
    /// a non-zero `update_mix`. Not counted in `total_requests`.
    pub update_stats: Option<QueryStats>,
    /// Completed update-then-republish operations.
    pub updates: u64,
    /// Republishes that took the incremental (splice) path rather than
    /// recomputing the document.
    pub incremental_republishes: u64,
    /// Total completed requests across all clients and queries.
    pub total_requests: u64,
    /// Requests shed by admission control and retried.
    pub shed_retries: u64,
    /// Wall time spent sleeping in shed backoff, summed across clients.
    /// Together with `shed_retries` this is the full cost of admission
    /// control — it is *excluded* from the per-query service-time
    /// percentiles, which time only the attempt that completed.
    pub retry_backoff: Duration,
    /// Wall-clock duration of the whole run.
    pub wall: Duration,
    /// Completed requests per second of wall time.
    pub throughput_qps: f64,
    /// The server's own `server.query_us` histogram after the run —
    /// percentiles as the *service* measured them (including queueing),
    /// independent of the client-side samples above. `None` only if the
    /// registry recorded nothing.
    pub server_query_us: Option<HistogramSnapshot>,
}

impl std::fmt::Display for LoadReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "== load report ==  {} clients x {} iters ({} path)",
            self.options.clients,
            self.options.iters,
            if self.options.warm { "prepared/warm" } else { "ad-hoc/cold" }
        )?;
        writeln!(
            f,
            "  {:>5}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}",
            "query", "requests", "mean_us", "p50_us", "p95_us", "p99_us"
        )?;
        for q in &self.per_query {
            writeln!(
                f,
                "  {:>5}  {:>8}  {:>10.1}  {:>10.1}  {:>10.1}  {:>10.1}",
                q.name, q.requests, q.mean_us, q.p50_us, q.p95_us, q.p99_us
            )?;
        }
        if let Some(q) = &self.update_stats {
            writeln!(
                f,
                "  {:>5}  {:>8}  {:>10.1}  {:>10.1}  {:>10.1}  {:>10.1}  ({} of {} republishes incremental)",
                q.name, q.requests, q.mean_us, q.p50_us, q.p95_us, q.p99_us,
                self.incremental_republishes, self.updates
            )?;
        }
        write!(
            f,
            "  total {} requests in {:.3}s -> {:.1} q/s ({} shed-then-retried, {:.3}s backoff, excluded from percentiles)",
            self.total_requests,
            self.wall.as_secs_f64(),
            self.throughput_qps,
            self.shed_retries,
            self.retry_backoff.as_secs_f64()
        )?;
        if let Some(h) = &self.server_query_us {
            write!(
                f,
                "\n  server registry: {} samples, mean {:.1}us, p50<={}us, p95<={}us, p99<={}us",
                h.count,
                h.mean_us(),
                h.percentile_us(50.0),
                h.percentile_us(95.0),
                h.percentile_us(99.0)
            )?;
        }
        Ok(())
    }
}

/// Nearest-rank percentile over an ascending-sorted sample, `p` in 0–100.
/// Shared with the socket load harness in `xmlpub-net`.
pub fn percentile(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted_us[idx] as f64
}

/// Pseudo-query name update-then-republish samples are reported under.
const UPDATE_NAME: &str = "upd";

/// One update-then-republish operation: mutate a supplier through the
/// serialized churn source, then republish the view (retrying on shed
/// like a query). Returns the latency of the whole operation in
/// microseconds, excluding shed backoff sleeps.
fn run_update(
    server: &Server,
    session: &mut Session,
    view: &xmlpub_xml::XmlView,
    churn: &ChurnSource,
    incremental_republishes: &AtomicU64,
    shed_retries: &AtomicU64,
    backoff_us: &AtomicU64,
) -> Result<u64> {
    let mutate_start = Instant::now();
    churn.mutate_one(server)?;
    let mutate_us = mutate_start.elapsed().as_micros() as u64;
    let mut backoff = Duration::from_micros(10);
    loop {
        // Time each attempt on its own, like the query loop: shed
        // backoff surfaces through the shared counters, not the sample.
        let attempt = Instant::now();
        match session.republish(view, false) {
            Ok((_, outcome)) => {
                if outcome.is_incremental() {
                    incremental_republishes.fetch_add(1, Ordering::Relaxed);
                }
                return Ok(mutate_us + attempt.elapsed().as_micros() as u64);
            }
            Err(Error::Execution(msg)) if msg.contains(SHED_MSG) => {
                shed_retries.fetch_add(1, Ordering::Relaxed);
                let slept = Instant::now();
                std::thread::sleep(backoff);
                backoff_us.fetch_add(slept.elapsed().as_micros() as u64, Ordering::Relaxed);
                backoff = (backoff * 2).min(Duration::from_millis(1));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Run the Figure 8 workloads closed-loop against `server`.
pub fn run_fig8_load(server: &Server, options: LoadOptions) -> Result<LoadReport> {
    let workloads = figure8_workloads();
    let shed_retries = AtomicU64::new(0);
    let backoff_us = AtomicU64::new(0);
    let incremental_republishes = AtomicU64::new(0);
    let churn = ChurnSource::default();
    let update_view = if options.update_mix > 0.0 {
        Some(xmlpub_xml::supplier_parts_view(server.database().catalog())?)
    } else {
        None
    };
    let start = Instant::now();

    let per_client: Vec<Result<BTreeMap<&'static str, Vec<u64>>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..options.clients.max(1))
            .map(|_| {
                let mut session = server.session();
                let workloads = &workloads;
                let shed_retries = &shed_retries;
                let backoff_us = &backoff_us;
                let incremental_republishes = &incremental_republishes;
                let churn = &churn;
                let update_view = update_view.as_ref();
                s.spawn(move || -> Result<BTreeMap<&'static str, Vec<u64>>> {
                    if options.warm {
                        for w in workloads {
                            session.prepare(w.name, &w.gapply_sql)?;
                        }
                        // Warm the document cache too, so measured
                        // republishes start from a baseline.
                        if let Some(view) = update_view {
                            session.republish(view, false)?;
                        }
                    }
                    let mut samples: BTreeMap<&'static str, Vec<u64>> = BTreeMap::new();
                    // Deterministic update schedule: accumulate the mix
                    // fraction per request and fire on whole-number
                    // crossings — no RNG, exact ratio over the run.
                    let mut update_acc = 0.0f64;
                    for _ in 0..options.iters {
                        for w in workloads {
                            if let Some(view) = update_view {
                                update_acc += options.update_mix;
                                while update_acc >= 1.0 {
                                    update_acc -= 1.0;
                                    let us = run_update(
                                        server,
                                        &mut session,
                                        view,
                                        churn,
                                        incremental_republishes,
                                        shed_retries,
                                        backoff_us,
                                    )?;
                                    samples.entry(UPDATE_NAME).or_default().push(us);
                                }
                            }
                            // Closed loop with retry-on-shed: backpressure
                            // slows the client down instead of losing work.
                            // Back off exponentially (capped at ~1ms) so shed
                            // clients sleep instead of busy-spinning a core
                            // away from the workers they are waiting on.
                            //
                            // Each attempt is timed on its own so sheds and
                            // backoff sleeps never inflate the service-time
                            // percentiles; only the attempt that completed
                            // contributes a sample. The retry cost surfaces
                            // separately as `shed_retries`/`retry_backoff`.
                            let mut backoff = Duration::from_micros(10);
                            let us = loop {
                                let t = Instant::now();
                                let attempt = if options.warm {
                                    session.execute_prepared(w.name)
                                } else {
                                    session.execute(&w.gapply_sql)
                                };
                                match attempt {
                                    Ok(_) => break t.elapsed().as_micros() as u64,
                                    Err(Error::Execution(msg)) if msg.contains(SHED_MSG) => {
                                        shed_retries.fetch_add(1, Ordering::Relaxed);
                                        let slept = Instant::now();
                                        std::thread::sleep(backoff);
                                        backoff_us.fetch_add(
                                            slept.elapsed().as_micros() as u64,
                                            Ordering::Relaxed,
                                        );
                                        backoff = (backoff * 2).min(Duration::from_millis(1));
                                    }
                                    Err(e) => return Err(e),
                                }
                            };
                            samples.entry(w.name).or_default().push(us);
                        }
                    }
                    Ok(samples)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("load client panicked")).collect()
    });

    let wall = start.elapsed();

    let mut merged: BTreeMap<&'static str, Vec<u64>> = BTreeMap::new();
    for client in per_client {
        for (name, mut samples) in client? {
            merged.entry(name).or_default().append(&mut samples);
        }
    }

    fn summarize(name: &'static str, mut samples: Vec<u64>) -> QueryStats {
        samples.sort_unstable();
        let mean_us = if samples.is_empty() {
            0.0
        } else {
            samples.iter().sum::<u64>() as f64 / samples.len() as f64
        };
        QueryStats {
            name,
            requests: samples.len() as u64,
            mean_us,
            p50_us: percentile(&samples, 50.0),
            p95_us: percentile(&samples, 95.0),
            p99_us: percentile(&samples, 99.0),
        }
    }

    let update_stats = merged.remove(UPDATE_NAME).map(|s| summarize(UPDATE_NAME, s));
    let updates = update_stats.as_ref().map(|s| s.requests).unwrap_or(0);
    let mut per_query = Vec::new();
    let mut total_requests = 0u64;
    for w in &workloads {
        let samples = merged.remove(w.name).unwrap_or_default();
        let stats = summarize(w.name, samples);
        total_requests += stats.requests;
        per_query.push(stats);
    }

    let secs = wall.as_secs_f64();
    // The service's own view of the run, read back through the text
    // exposition — the same path `\metrics` and external scrapers use.
    let server_query_us = xmlpub::parse_text(&server.metrics_text())
        .ok()
        .and_then(|snap| snap.histogram("server.query_us").cloned());
    Ok(LoadReport {
        options,
        per_query,
        update_stats,
        updates,
        incremental_republishes: incremental_republishes.load(Ordering::Relaxed),
        total_requests,
        shed_retries: shed_retries.load(Ordering::Relaxed),
        retry_backoff: Duration::from_micros(backoff_us.load(Ordering::Relaxed)),
        wall,
        throughput_qps: if secs > 0.0 { total_requests as f64 / secs } else { 0.0 },
        server_query_us,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServerConfig;
    use xmlpub::Database;

    #[test]
    fn tiny_load_run_completes_and_reports() {
        let server = Server::new(
            Database::tpch(0.001).unwrap(),
            ServerConfig { workers: 2, queue_depth: 8, ..ServerConfig::default() },
        );
        let report = run_fig8_load(
            &server,
            LoadOptions { clients: 2, iters: 2, warm: true, ..LoadOptions::default() },
        )
        .unwrap();
        // 2 clients x 2 iters x 5 workloads.
        assert_eq!(report.total_requests, 20);
        assert_eq!(report.per_query.len(), 5);
        for q in &report.per_query {
            assert_eq!(q.requests, 4);
            assert!(q.p50_us <= q.p95_us && q.p95_us <= q.p99_us);
        }
        assert!(report.throughput_qps > 0.0);
        // The server-side histogram saw every completed request.
        let h = report.server_query_us.as_ref().expect("server registry histogram");
        assert_eq!(h.count, report.total_requests);
        assert!(h.percentile_us(50.0) <= h.percentile_us(99.0));
        let text = report.to_string();
        assert!(text.contains("p95_us") && text.contains("q/s"), "{text}");
        assert!(text.contains("server registry:"), "{text}");
        // Retry cost is reported separately from the service-time
        // percentiles; a run with no sheds slept for nothing.
        assert!(text.contains("backoff, excluded from percentiles"), "{text}");
        if report.shed_retries == 0 {
            assert_eq!(report.retry_backoff, Duration::ZERO);
        }
        // The warm path really warmed the cache. The five workloads
        // share four distinct gapply plans (Q4r re-prepares Q4's text),
        // and both clients warm *concurrently*: simultaneous misses on
        // one key both build (the loser adopts the winner's entry), so
        // the exact hit/miss split is timing-dependent. Assert the
        // race-free invariants instead: every lookup accounted, all
        // four plans resident, and each client's own Q4r prepare hits
        // the Q4 entry it just planted.
        let stats = server.stats();
        assert_eq!(stats.cache.entries, 4, "expected 4 distinct warm plans, got {stats}");
        assert_eq!(stats.cache.evictions, 0, "nothing should be evicted, got {stats}");
        assert_eq!(
            stats.cache.hits + stats.cache.misses,
            10,
            "2 clients x 5 prepares, got {stats}"
        );
        assert!(stats.cache.hits >= 2, "expected at least the intra-client hits, got {stats}");
    }

    #[test]
    fn update_mix_interleaves_writes_and_republishes() {
        let server = Server::new(
            Database::tpch(0.001).unwrap(),
            ServerConfig { workers: 2, queue_depth: 16, ..ServerConfig::default() },
        );
        let options = LoadOptions { clients: 2, iters: 3, warm: true, update_mix: 0.5 };
        let report = run_fig8_load(&server, options).unwrap();
        // 2 clients x 3 iters x 5 workloads x mix 0.5 => 7 updates each
        // (the accumulator fires on whole-number crossings of 0.5/step).
        assert_eq!(report.updates, 14, "{report}");
        let upd = report.update_stats.as_ref().expect("update stats present");
        assert_eq!(upd.name, "upd");
        assert_eq!(upd.requests, report.updates);
        assert!(upd.p50_us > 0.0);
        // Queries are unaffected by the interleaved writes.
        assert_eq!(report.total_requests, 30);
        // Warm sessions republish from a baseline, so single-supplier
        // churn should take the incremental path nearly always (a
        // concurrent writer can at worst force a conservative re-check,
        // never a wrong answer).
        assert!(
            report.incremental_republishes > 0,
            "no republish took the incremental path: {report}"
        );
        let text = report.to_string();
        assert!(text.contains("republishes incremental"), "{text}");
        // The session metrics saw the writes too.
        let snap = xmlpub::parse_text(&server.metrics_text()).unwrap();
        assert_eq!(snap.counter("server.republish.count").unwrap_or(0), report.updates + 2);
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let samples: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&samples, 50.0), 51.0);
        assert_eq!(percentile(&samples, 99.0), 99.0);
        assert_eq!(percentile(&samples, 100.0), 100.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7], 99.0), 7.0);
    }
}
