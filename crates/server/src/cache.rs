//! Shared LRU plan cache.
//!
//! Parsing, binding and optimizing a query is pure work over immutable
//! inputs (the catalog and its statistics), so the server does it once
//! per distinct *(normalized SQL, plan-relevant config)* pair and shares
//! the result across every session. Each entry keeps the optimized
//! [`LogicalPlan`] **and** the [`RuleFiring`] audit that produced it, so
//! a cached plan remains lint-verifiable long after the optimizer ran —
//! [`CachedPlan::verify`] replays the full lint registry on demand.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use xmlpub::Config;
use xmlpub_algebra::LogicalPlan;
use xmlpub_common::Result;
use xmlpub_lint::{Diagnostic, LintRegistry};
use xmlpub_optimizer::RuleFiring;

/// Strip comments and collapse whitespace so trivially reformatted
/// queries share a cache entry. This is *not* semantic equivalence —
/// `SELECT` vs `select` still differ — just the cheap normalization a
/// prepared-statement layer can do without re-parsing.
///
/// The scan is quote-aware to match the lexer: single-quoted string
/// literals (with `''` escaping, possibly spanning lines) are copied
/// verbatim, so `'a--b'` and `'a  b'` keep their exact text and
/// distinct literals never collide on one cache key. An unterminated
/// literal is copied through to the end; the lexer reports that error.
pub fn normalize_sql(sql: &str) -> String {
    let chars: Vec<char> = sql.chars().collect();
    let mut out = String::with_capacity(sql.len());
    let mut pending_space = false;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\'' {
            if pending_space && !out.is_empty() {
                out.push(' ');
            }
            pending_space = false;
            out.push('\'');
            i += 1;
            while i < chars.len() {
                if chars[i] == '\'' {
                    if chars.get(i + 1) == Some(&'\'') {
                        out.push_str("''");
                        i += 2;
                        continue;
                    }
                    out.push('\'');
                    i += 1;
                    break;
                }
                out.push(chars[i]);
                i += 1;
            }
        } else if c == '-' && chars.get(i + 1) == Some(&'-') {
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
        } else if c.is_whitespace() {
            pending_space = true;
            i += 1;
        } else {
            if pending_space && !out.is_empty() {
                out.push(' ');
            }
            pending_space = false;
            out.push(c);
            i += 1;
        }
    }
    out
}

/// The full cache key: normalized SQL plus every config field that can
/// change the optimized plan (rule flags and the optimizer bypass).
/// Engine-only knobs like `batch_size` are deliberately excluded — two
/// sessions differing only in batch size share a plan.
pub fn cache_key(sql: &str, config: &Config) -> String {
    format!("{}\u{1f}{:?}\u{1f}{}", normalize_sql(sql), config.optimizer, config.skip_optimizer)
}

/// An optimized plan plus the audit trail that justifies it.
#[derive(Debug)]
pub struct CachedPlan {
    /// The cache key this entry was stored under.
    pub key: String,
    /// The optimized logical plan, ready for the physical planner.
    pub plan: LogicalPlan,
    /// The optimizer's rule-firing log from when the plan was built.
    pub firings: Vec<RuleFiring>,
}

impl CachedPlan {
    /// Re-lint the cached plan with the full registry. Empty means the
    /// plan still satisfies every structural invariant — the same check
    /// `\explain --verify` runs on a freshly optimized plan.
    pub fn verify(&self) -> Vec<Diagnostic> {
        LintRegistry::default().lint_plan(&self.plan)
    }
}

struct Entry {
    plan: Arc<CachedPlan>,
    last_used: u64,
}

struct Inner {
    map: HashMap<String, Entry>,
    tick: u64,
}

/// Counter snapshot for [`crate::ServerStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to build a plan.
    pub misses: u64,
    /// Entries displaced by the LRU policy.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

/// A mutex-protected LRU map from cache key to [`CachedPlan`].
///
/// Plan *building* happens outside the lock: two sessions missing on the
/// same key may both optimize, but the second insert adopts the first
/// entry, so the cache never holds duplicates and the lock is never held
/// across parse/bind/optimize.
pub struct PlanCache {
    capacity: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (minimum 1).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner { map: HashMap::new(), tick: 0 }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Look up `key`, building and inserting on a miss. Returns the
    /// entry and whether it was a hit.
    pub fn get_or_build(
        &self,
        key: String,
        build: impl FnOnce() -> Result<CachedPlan>,
    ) -> Result<(Arc<CachedPlan>, bool)> {
        {
            let mut inner = self.inner.lock().expect("plan cache mutex poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.map.get_mut(&key) {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok((Arc::clone(&entry.plan), true));
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(build()?);
        let mut inner = self.inner.lock().expect("plan cache mutex poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.map.get_mut(&key) {
            // A concurrent miss won the race; adopt its entry.
            entry.last_used = tick;
            return Ok((Arc::clone(&entry.plan), false));
        }
        if inner.map.len() >= self.capacity {
            // Linear LRU scan: capacities are small and eviction is the
            // rare path, so an ordered index isn't worth the bookkeeping.
            if let Some(victim) =
                inner.map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
            {
                inner.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.map.insert(key, Entry { plan: Arc::clone(&built), last_used: tick });
        Ok((built, false))
    }

    /// Current counter values.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.inner.lock().expect("plan cache mutex poisoned").map.len(),
        }
    }

    /// Drop every entry (counters are preserved).
    pub fn clear(&self) {
        self.inner.lock().expect("plan cache mutex poisoned").map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlpub_algebra::LogicalPlan;

    fn dummy(key: &str) -> CachedPlan {
        // Never executed — the cache tests only exercise the map itself.
        CachedPlan {
            key: key.to_string(),
            plan: LogicalPlan::Scan {
                table: key.to_string(),
                schema: xmlpub_common::Schema::new(vec![]),
            },
            firings: Vec::new(),
        }
    }

    #[test]
    fn normalization_collapses_whitespace_and_comments() {
        assert_eq!(
            normalize_sql("select *\n  from part -- trailing comment\n where 1 = 1"),
            "select * from part where 1 = 1"
        );
        assert_eq!(normalize_sql("select 1"), normalize_sql("  select\t1  "));
    }

    #[test]
    fn normalization_preserves_string_literals() {
        // '--' and whitespace inside literals are content, not syntax.
        assert_ne!(normalize_sql("select 'a--x'"), normalize_sql("select 'a--y'"));
        assert_ne!(normalize_sql("select 'a b'"), normalize_sql("select 'a  b'"));
        assert_eq!(normalize_sql("select  'a -- b'  "), "select 'a -- b'");
        // '' escaping keeps the scanner in-string across the quote pair.
        assert_eq!(normalize_sql("select 'it''s -- fine' -- cut"), "select 'it''s -- fine'");
        // Literals may span lines; the newline is preserved verbatim.
        assert_eq!(normalize_sql("select 'a\nb'"), "select 'a\nb'");
        // Unterminated literal: copied through (the lexer will reject it).
        assert_eq!(normalize_sql("select 'oops -- not a comment"), "select 'oops -- not a comment");
    }

    #[test]
    fn config_participates_in_the_key() {
        let a = Config::default();
        let b = Config { skip_optimizer: true, ..Config::default() };
        assert_ne!(cache_key("select 1", &a), cache_key("select 1", &b));
        assert_eq!(cache_key("select  1", &a), cache_key("select 1", &a));
    }

    #[test]
    fn hit_miss_and_eviction_counters() {
        let cache = PlanCache::new(2);
        let (_, hit) = cache.get_or_build("a".into(), || Ok(dummy("a"))).unwrap();
        assert!(!hit);
        let (_, hit) = cache.get_or_build("a".into(), || panic!("must not rebuild")).unwrap();
        assert!(hit);
        cache.get_or_build("b".into(), || Ok(dummy("b"))).unwrap();
        // "a" was touched more recently than "b"? No: order is a(hit), b(miss).
        // Inserting "c" must evict the least recently used — "a" was used at
        // tick 2, "b" at tick 3, so "a" goes.
        cache.get_or_build("c".into(), || Ok(dummy("c"))).unwrap();
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.evictions, c.entries), (1, 3, 1, 2));
        // "a" is gone (miss), "b" survived (hit).
        let (_, hit) = cache.get_or_build("b".into(), || panic!("b was evicted")).unwrap();
        assert!(hit);
        let (_, hit) = cache.get_or_build("a".into(), || Ok(dummy("a"))).unwrap();
        assert!(!hit);
    }

    #[test]
    fn build_errors_are_not_cached() {
        let cache = PlanCache::new(4);
        let err = cache
            .get_or_build("bad".into(), || Err(xmlpub_common::Error::exec("boom")))
            .unwrap_err();
        assert!(err.to_string().contains("boom"));
        // The next lookup builds again (and may succeed).
        let (_, hit) = cache.get_or_build("bad".into(), || Ok(dummy("bad"))).unwrap();
        assert!(!hit);
        assert_eq!(cache.counters().misses, 2);
    }
}
