//! A small blocking client for the framed protocol.
//!
//! One request in flight at a time: each call writes a request frame
//! and reads frames until the response terminator (`Ok`, `End`,
//! `Error`, `Busy`, or `Goodbye`). Pipelining is a *server* capability
//! — clients that want it write raw frames back-to-back (the tests
//! do); this client keeps the call-site simple for the CLI, the load
//! harness, and the differential tests.

use std::io::Write;
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use xmlpub_common::{Error, Relation, Result, Schema, Tuple};
use xmlpub_engine::ExecStats;

use crate::frame::{
    decode_error, encode_request, read_frame, Frame, ProtocolError, Request, Response,
    PROTOCOL_VERSION,
};

/// A request's outcome: done, or shed by admission control (nothing
/// executed; retry after a backoff if you want the answer).
#[derive(Debug)]
pub enum Reply<T> {
    /// The request executed.
    Done(T),
    /// The server answered BUSY; the message carries the shed detail.
    Busy(String),
}

impl<T> Reply<T> {
    /// Unwrap `Done`, turning `Busy` into an error — for callers that
    /// did not expect to be shed (tests, the CLI's single-shot mode).
    pub fn expect_done(self) -> Result<T> {
        match self {
            Reply::Done(v) => Ok(v),
            Reply::Busy(msg) => Err(Error::exec(format!("server busy: {msg}"))),
        }
    }
}

/// Retry bookkeeping for BUSY answers, kept separate from service
/// times: a shed request costs a retry and a backoff sleep, never a
/// latency sample.
#[derive(Debug, Clone, Copy, Default)]
pub struct RetryStats {
    /// BUSY answers received (each one retried).
    pub busy_retries: u64,
    /// Total time slept backing off.
    pub backoff: Duration,
}

impl RetryStats {
    /// Fold another accumulator into this one.
    pub fn merge(&mut self, other: &RetryStats) {
        self.busy_retries += other.busy_retries;
        self.backoff += other.backoff;
    }
}

/// A connected client (handshake already done).
pub struct NetClient {
    stream: TcpStream,
}

impl NetClient {
    /// Connect and handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<NetClient> {
        let stream =
            TcpStream::connect(addr).map_err(|e| Error::exec(format!("connect failed: {e}")))?;
        let _ = stream.set_nodelay(true);
        let mut client = NetClient { stream };
        client.send(&Request::Hello { version: PROTOCOL_VERSION })?;
        match client.next_response()? {
            Response::Ok { .. } => Ok(client),
            Response::Error { code, message } => Err(decode_error(code, message)),
            other => Err(unexpected(&other, "Ok")),
        }
    }

    fn send(&mut self, req: &Request) -> Result<()> {
        self.stream
            .write_all(&encode_request(req))
            .map_err(|e| Error::exec(format!("socket write failed: {e}")))
    }

    fn next_response(&mut self) -> Result<Response> {
        match read_frame(&mut self.stream)? {
            Some(Frame::Response(resp)) => Ok(resp),
            Some(Frame::Request(_)) => {
                Err(ProtocolError::Malformed("request frame from server".to_string()).into())
            }
            None => Err(Error::exec("server closed the connection mid-response")),
        }
    }

    /// Run a SQL query; `Busy` if it was shed.
    pub fn sql(&mut self, sql: &str) -> Result<Reply<(Relation, ExecStats)>> {
        self.send(&Request::Sql { sql: sql.to_string() })?;
        self.read_rows()
    }

    /// Prepare a named statement; `Done(true)` if planning hit the
    /// shared cache.
    pub fn prepare(&mut self, name: &str, sql: &str) -> Result<Reply<bool>> {
        self.send(&Request::Prepare { name: name.to_string(), sql: sql.to_string() })?;
        match self.next_response()? {
            Response::Ok { info, .. } => Ok(Reply::Done(info == "hit")),
            Response::Busy { message } => Ok(Reply::Busy(message)),
            Response::Error { code, message } => Err(decode_error(code, message)),
            other => Err(unexpected(&other, "Ok")),
        }
    }

    /// Execute a prepared statement; `Busy` if it was shed.
    pub fn exec_prepared(&mut self, name: &str) -> Result<Reply<(Relation, ExecStats)>> {
        self.send(&Request::ExecPrepared { name: name.to_string() })?;
        self.read_rows()
    }

    /// Publish a named view, collecting the streamed chunks into a
    /// document. Returns the XML plus the row count and engine counters
    /// from the End frame.
    pub fn publish(&mut self, view: &str, pretty: bool) -> Result<Reply<(String, u64, ExecStats)>> {
        self.send(&Request::Publish { view: view.to_string(), pretty })?;
        let mut xml = Vec::new();
        loop {
            match self.next_response()? {
                Response::XmlChunk(mut bytes) => xml.append(&mut bytes),
                Response::End { rows, stats } => {
                    let xml = String::from_utf8(xml)
                        .map_err(|_| Error::Xml("published document is not UTF-8".to_string()))?;
                    return Ok(Reply::Done((xml, rows, stats)));
                }
                Response::Busy { message } => return Ok(Reply::Busy(message)),
                Response::Error { code, message } => return Err(decode_error(code, message)),
                other => return Err(unexpected(&other, "XmlChunk/End")),
            }
        }
    }

    /// Retry `op` until it is not shed, with capped exponential backoff,
    /// folding the retry cost into `retries` (never into the caller's
    /// service-time clock — re-time the successful attempt yourself).
    pub fn retry_busy<T>(
        &mut self,
        retries: &mut RetryStats,
        mut op: impl FnMut(&mut NetClient) -> Result<Reply<T>>,
    ) -> Result<T> {
        let mut backoff = Duration::from_micros(10);
        loop {
            match op(self)? {
                Reply::Done(v) => return Ok(v),
                Reply::Busy(_) => {
                    retries.busy_retries += 1;
                    let slept = Instant::now();
                    std::thread::sleep(backoff);
                    retries.backoff += slept.elapsed();
                    backoff = (backoff * 2).min(Duration::from_millis(1));
                }
            }
        }
    }

    /// Say goodbye and wait for the server's goodbye + FIN.
    pub fn goodbye(mut self) -> Result<()> {
        self.send(&Request::Goodbye)?;
        match self.next_response()? {
            Response::Goodbye => {}
            other => return Err(unexpected(&other, "Goodbye")),
        }
        let _ = self.stream.shutdown(Shutdown::Both);
        Ok(())
    }

    fn read_rows(&mut self) -> Result<Reply<(Relation, ExecStats)>> {
        let mut schema: Option<Schema> = None;
        let mut rows: Vec<Tuple> = Vec::new();
        loop {
            match self.next_response()? {
                Response::Schema(s) => schema = Some(s),
                Response::RowBatch(mut batch) => rows.append(&mut batch),
                Response::End { stats, .. } => {
                    let schema = schema.ok_or_else(|| {
                        Error::from(ProtocolError::Malformed("End before Schema".to_string()))
                    })?;
                    let rel = Relation::new(schema, rows)?;
                    return Ok(Reply::Done((rel, stats)));
                }
                Response::Busy { message } => return Ok(Reply::Busy(message)),
                Response::Error { code, message } => return Err(decode_error(code, message)),
                other => return Err(unexpected(&other, "Schema/RowBatch/End")),
            }
        }
    }
}

fn unexpected(got: &Response, wanted: &str) -> Error {
    let kind = match got {
        Response::Ok { .. } => "Ok",
        Response::Schema(_) => "Schema",
        Response::RowBatch(_) => "RowBatch",
        Response::XmlChunk(_) => "XmlChunk",
        Response::End { .. } => "End",
        Response::Error { .. } => "Error",
        Response::Busy { .. } => "Busy",
        Response::Goodbye => "Goodbye",
    };
    ProtocolError::Malformed(format!("unexpected {kind} frame (wanted {wanted})")).into()
}
