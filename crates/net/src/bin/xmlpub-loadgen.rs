//! `xmlpub-loadgen` — headless load harness and concurrent smoke test,
//! in-process or over TCP.
//!
//! ```text
//! # in-process closed loop (the PR-3 harness):
//! cargo run --release -p xmlpub-net --bin xmlpub-loadgen -- \
//!     --scale 0.005 --workers 8 --clients 8 --iters 20 [--cold] [--verify]
//!
//! # open loop over a socket (spawns its own TCP server on `auto`):
//! cargo run --release -p xmlpub-net --bin xmlpub-loadgen -- \
//!     --connect auto --workers 2 --dop 2 --clients 4 --requests 200 \
//!     --rate 200 [--verify]
//!
//! # open loop against an already-running server:
//! cargo run --release -p xmlpub-net --bin xmlpub-loadgen -- \
//!     --connect 127.0.0.1:7878 --clients 4 --requests 200 --rate 200
//! ```
//!
//! `--verify` is the differential mode CI runs: every socket answer must
//! be identical to a serial in-process execution over the same
//! (deterministic) TPC-H data — relations for the five Figure 8
//! queries, *byte-identical XML* for the published views — and the
//! metrics exposition must parse back and account for every request.
//! With `--connect auto` the run also drains the server it spawned and
//! exits non-zero unless the drain was clean (no aborted connections,
//! no lingering server threads past the deadline).

use std::sync::Arc;
use std::time::Duration;

use xmlpub::Database;
use xmlpub_net::{
    resolve_view, run_fig8_socket_load, NetClient, NetConfig, NetLoadOptions, NetServer,
};
use xmlpub_server::{run_fig8_load, LoadOptions, Server, ServerConfig};
use xmlpub_xml::workloads::figure8_workloads;

fn num_arg<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, what: &str) -> T {
    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("{what} needs a number");
        std::process::exit(2);
    })
}

fn main() {
    let mut scale = 0.005f64;
    let mut workers = 4usize;
    let mut clients = 4usize;
    let mut iters = 20usize;
    let mut queue_depth = 64usize;
    let mut warm = true;
    let mut verify = false;
    let mut connect: Option<String> = None;
    let mut requests = 200usize;
    let mut rate = 200.0f64;
    let mut dop = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => scale = num_arg(&mut args, "--scale"),
            "--workers" => workers = num_arg(&mut args, "--workers"),
            "--clients" => clients = num_arg(&mut args, "--clients"),
            "--iters" => iters = num_arg(&mut args, "--iters"),
            "--queue-depth" => queue_depth = num_arg(&mut args, "--queue-depth"),
            "--requests" => requests = num_arg(&mut args, "--requests"),
            "--rate" => rate = num_arg(&mut args, "--rate"),
            "--dop" => dop = num_arg(&mut args, "--dop"),
            "--connect" => {
                connect = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--connect needs an address (or 'auto')");
                    std::process::exit(2);
                }))
            }
            "--cold" => warm = false,
            "--verify" => verify = true,
            other => {
                eprintln!(
                    "unknown argument '{other}'\nusage: xmlpub-loadgen [--scale F] [--workers N] \
                     [--clients N] [--iters N] [--queue-depth N] [--cold] [--verify] \
                     [--connect ADDR|auto] [--requests N] [--rate R] [--dop N]"
                );
                std::process::exit(2);
            }
        }
    }

    match connect {
        Some(target) => socket_mode(
            &target,
            scale,
            workers,
            queue_depth,
            dop,
            clients,
            requests,
            rate,
            warm,
            verify,
        ),
        None => in_process_mode(scale, workers, queue_depth, clients, iters, warm, verify),
    }
}

// ---------------------------------------------------------------------
// Socket mode: open-loop load (and differential verify) over TCP.

#[allow(clippy::too_many_arguments)]
fn socket_mode(
    target: &str,
    scale: f64,
    workers: usize,
    queue_depth: usize,
    dop: usize,
    clients: usize,
    requests: usize,
    rate: f64,
    warm: bool,
    verify: bool,
) {
    // `auto`: host the server ourselves on an ephemeral localhost port —
    // the single-command shape the CI net-smoke job runs.
    let hosted = if target == "auto" {
        eprintln!("generating TPC-H at scale {scale}...");
        let db = Database::tpch(scale).expect("generate TPC-H");
        let mut defaults = db.config();
        defaults.engine.dop = dop.max(1);
        let server = Arc::new(Server::new(
            db,
            ServerConfig { workers, queue_depth, defaults, ..ServerConfig::default() },
        ));
        let net =
            NetServer::start(Arc::clone(&server), NetConfig::default()).expect("start TCP server");
        eprintln!(
            "serving on {} ({} workers, dop {}, queue depth {queue_depth})",
            net.local_addr(),
            workers,
            dop.max(1)
        );
        Some((server, net))
    } else {
        None
    };
    let addr = match &hosted {
        Some((_, net)) => net.local_addr(),
        None => target.parse().unwrap_or_else(|_| {
            eprintln!("--connect: '{target}' is not a socket address");
            std::process::exit(2);
        }),
    };

    if verify {
        verify_socket_differential(addr, scale);
    }

    let options = NetLoadOptions { clients, requests, rate_per_sec: rate, warm };
    match run_fig8_socket_load(addr, options) {
        Ok(report) => println!("{report}"),
        Err(e) => {
            eprintln!("socket load run failed: {e}");
            std::process::exit(1);
        }
    }

    if let Some((server, net)) = hosted {
        if verify {
            verify_metrics(&server, requests as u64);
        }
        println!("{}", server.stats());
        print!("{}", server.metrics_text());
        let report = net.drain(Duration::from_secs(10));
        if !report.drained || report.aborted > 0 {
            eprintln!("DRAIN: not clean: {report:?}");
            std::process::exit(1);
        }
        eprintln!("drain ok: all connections closed gracefully");
    }
}

/// The CI differential: socket answers must be identical to serial
/// in-process execution over the same deterministic data — relations
/// for the Figure 8 queries, byte-identical XML for the published views.
fn verify_socket_differential(addr: std::net::SocketAddr, scale: f64) {
    eprintln!("verifying socket answers against in-process execution...");
    let local = Database::tpch(scale).expect("generate TPC-H");
    let reference =
        Server::new(Database::tpch(scale).expect("generate TPC-H"), ServerConfig::default());
    let session = reference.session();
    let mut client = NetClient::connect(addr).expect("connect for verify");
    for w in figure8_workloads() {
        let expected = local.sql(&w.gapply_sql).expect("serial execution");
        let (got, _) = client
            .sql(&w.gapply_sql)
            .expect("socket execution")
            .expect_done()
            .expect("verify run shed");
        if got != expected {
            eprintln!("DIVERGENCE on {}: socket result differs from in-process", w.name);
            std::process::exit(1);
        }
    }
    for pretty in [false, true] {
        let view = resolve_view(&local, "supplier_parts").expect("resolve view");
        let expected = session.publish(&view, pretty).expect("in-process publish");
        let (got, rows, stats) = client
            .publish("supplier_parts", pretty)
            .expect("socket publish")
            .expect_done()
            .expect("verify publish shed");
        if stats.rows_scanned == 0 {
            eprintln!("publish(pretty={pretty}) End frame carried empty engine counters");
            std::process::exit(1);
        }
        if got != expected {
            eprintln!("DIVERGENCE on publish(pretty={pretty}): socket XML differs byte-for-byte");
            std::process::exit(1);
        }
        if rows == 0 {
            eprintln!("publish(pretty={pretty}) reported zero rows");
            std::process::exit(1);
        }
    }
    client.goodbye().expect("goodbye");
    eprintln!(
        "verify ok: {} workloads + publish (compact & pretty) byte-identical over TCP",
        figure8_workloads().len()
    );
}

/// Metrics smoke for the hosted server: the exposition must parse and
/// the net layer must have accounted for the traffic.
fn verify_metrics(server: &Server, min_requests: u64) {
    let text = server.metrics_text();
    let snap = match xmlpub::parse_text(&text) {
        Ok(snap) => snap,
        Err(e) => {
            eprintln!("METRICS: exposition does not parse: {e}");
            std::process::exit(1);
        }
    };
    let net_requests = snap.counter("server.net.requests").unwrap_or(0);
    let frames_out = snap.counter("server.net.frames_out").unwrap_or(0);
    let opened = snap.counter("server.net.connections.opened").unwrap_or(0);
    if net_requests < min_requests || frames_out == 0 || opened == 0 {
        eprintln!(
            "METRICS: net layer unaccounted: requests {net_requests} (expected >= \
             {min_requests}), frames_out {frames_out}, connections.opened {opened}"
        );
        std::process::exit(1);
    }
    eprintln!("metrics ok: {net_requests} net requests, {opened} connections in the exposition");
}

// ---------------------------------------------------------------------
// In-process mode: the original closed-loop harness, unchanged behaviour.

fn in_process_mode(
    scale: f64,
    workers: usize,
    queue_depth: usize,
    clients: usize,
    iters: usize,
    warm: bool,
    verify: bool,
) {
    eprintln!("generating TPC-H at scale {scale}...");
    let db = Database::tpch(scale).expect("generate TPC-H");
    let server = Server::new(db, ServerConfig { workers, queue_depth, ..ServerConfig::default() });

    if verify {
        // Differential check: each workload's concurrent answer must be
        // identical to a serial execution against the same data.
        eprintln!("verifying concurrent answers against serial execution...");
        let serial = Database::tpch(scale).expect("generate TPC-H");
        let session = server.session();
        for w in figure8_workloads() {
            let expected = serial.sql(&w.gapply_sql).expect("serial execution");
            let (got, _) = session.execute(&w.gapply_sql).expect("server execution");
            if got != expected {
                eprintln!("DIVERGENCE on {}: concurrent result differs from serial", w.name);
                std::process::exit(1);
            }
        }
        eprintln!("verify ok: all {} workloads match serial", figure8_workloads().len());
    }

    match run_fig8_load(&server, LoadOptions { clients, iters, warm }) {
        Ok(report) => {
            println!("{report}");
            println!("{}", server.stats());
            let text = server.metrics_text();
            println!("{text}");
            if verify {
                // Metrics smoke: the exposition must be non-empty,
                // parse back, and account for every completed request.
                let snap = match xmlpub::parse_text(&text) {
                    Ok(snap) => snap,
                    Err(e) => {
                        eprintln!("METRICS: exposition does not parse: {e}");
                        std::process::exit(1);
                    }
                };
                let queries = snap.counter("server.query.count").unwrap_or(0);
                let hist = snap.histogram("server.query_us").map(|h| h.count).unwrap_or(0);
                if queries < report.total_requests || hist != queries {
                    eprintln!(
                        "METRICS: registry lost requests: counter {queries}, histogram {hist}, \
                         load report {}",
                        report.total_requests
                    );
                    std::process::exit(1);
                }
                eprintln!("metrics ok: {queries} requests accounted for in the exposition");
            }
        }
        Err(e) => {
            eprintln!("load run failed: {e}");
            std::process::exit(1);
        }
    }
}
