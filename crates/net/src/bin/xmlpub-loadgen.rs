//! `xmlpub-loadgen` — headless load harness and concurrent smoke test,
//! in-process or over TCP.
//!
//! ```text
//! # in-process closed loop (the PR-3 harness):
//! cargo run --release -p xmlpub-net --bin xmlpub-loadgen -- \
//!     --scale 0.005 --workers 8 --clients 8 --iters 20 [--cold] [--verify]
//!
//! # open loop over a socket (spawns its own TCP server on `auto`):
//! cargo run --release -p xmlpub-net --bin xmlpub-loadgen -- \
//!     --connect auto --workers 2 --dop 2 --clients 4 --requests 200 \
//!     --rate 200 [--verify]
//!
//! # open loop against an already-running server:
//! cargo run --release -p xmlpub-net --bin xmlpub-loadgen -- \
//!     --connect 127.0.0.1:7878 --clients 4 --requests 200 --rate 200
//! ```
//!
//! `--update-mix R` adds writes: in-process, a fraction `R` of each
//! client's requests become update-then-republish operations through
//! the delta-maintained document path; in socket mode (`--connect
//! auto` only — the wire protocol has no update verb) a writer thread
//! churns the hosted server at `rate * R` updates/s while the query
//! load runs, and `--verify` then also checks the final document is
//! byte-identical to a full recompute.
//!
//! `--verify` is the differential mode CI runs: every socket answer must
//! be identical to a serial in-process execution over the same
//! (deterministic) TPC-H data — relations for the five Figure 8
//! queries, *byte-identical XML* for the published views — and the
//! metrics exposition must parse back and account for every request.
//! With `--connect auto` the run also drains the server it spawned and
//! exits non-zero unless the drain was clean (no aborted connections,
//! no lingering server threads past the deadline).

use std::sync::Arc;
use std::time::Duration;

use xmlpub::Database;
use xmlpub_net::{
    resolve_view, run_fig8_socket_load, NetClient, NetConfig, NetLoadOptions, NetServer,
};
use xmlpub_server::{run_fig8_load, ChurnSource, LoadOptions, Server, ServerConfig, SHED_MSG};
use xmlpub_xml::workloads::figure8_workloads;

fn num_arg<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, what: &str) -> T {
    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("{what} needs a number");
        std::process::exit(2);
    })
}

fn main() {
    let mut scale = 0.005f64;
    let mut workers = 4usize;
    let mut clients = 4usize;
    let mut iters = 20usize;
    let mut queue_depth = 64usize;
    let mut warm = true;
    let mut verify = false;
    let mut connect: Option<String> = None;
    let mut requests = 200usize;
    let mut rate = 200.0f64;
    let mut dop = 1usize;
    let mut update_mix = 0.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => scale = num_arg(&mut args, "--scale"),
            "--workers" => workers = num_arg(&mut args, "--workers"),
            "--clients" => clients = num_arg(&mut args, "--clients"),
            "--iters" => iters = num_arg(&mut args, "--iters"),
            "--queue-depth" => queue_depth = num_arg(&mut args, "--queue-depth"),
            "--requests" => requests = num_arg(&mut args, "--requests"),
            "--rate" => rate = num_arg(&mut args, "--rate"),
            "--dop" => dop = num_arg(&mut args, "--dop"),
            "--update-mix" => {
                update_mix = num_arg::<f64>(&mut args, "--update-mix").clamp(0.0, 1.0)
            }
            "--connect" => {
                connect = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--connect needs an address (or 'auto')");
                    std::process::exit(2);
                }))
            }
            "--cold" => warm = false,
            "--verify" => verify = true,
            other => {
                eprintln!(
                    "unknown argument '{other}'\nusage: xmlpub-loadgen [--scale F] [--workers N] \
                     [--clients N] [--iters N] [--queue-depth N] [--cold] [--verify] \
                     [--connect ADDR|auto] [--requests N] [--rate R] [--dop N] [--update-mix R]"
                );
                std::process::exit(2);
            }
        }
    }

    match connect {
        Some(target) => socket_mode(
            &target,
            scale,
            workers,
            queue_depth,
            dop,
            clients,
            requests,
            rate,
            warm,
            verify,
            update_mix,
        ),
        None => {
            in_process_mode(scale, workers, queue_depth, clients, iters, warm, verify, update_mix)
        }
    }
}

// ---------------------------------------------------------------------
// Socket mode: open-loop load (and differential verify) over TCP.

#[allow(clippy::too_many_arguments)]
fn socket_mode(
    target: &str,
    scale: f64,
    workers: usize,
    queue_depth: usize,
    dop: usize,
    clients: usize,
    requests: usize,
    rate: f64,
    warm: bool,
    verify: bool,
    update_mix: f64,
) {
    // `auto`: host the server ourselves on an ephemeral localhost port —
    // the single-command shape the CI net-smoke job runs.
    let hosted = if target == "auto" {
        eprintln!("generating TPC-H at scale {scale}...");
        let db = Database::tpch(scale).expect("generate TPC-H");
        let mut defaults = db.config();
        defaults.engine.dop = dop.max(1);
        let server = Arc::new(Server::new(
            db,
            ServerConfig { workers, queue_depth, defaults, ..ServerConfig::default() },
        ));
        let net =
            NetServer::start(Arc::clone(&server), NetConfig::default()).expect("start TCP server");
        eprintln!(
            "serving on {} ({} workers, dop {}, queue depth {queue_depth})",
            net.local_addr(),
            workers,
            dop.max(1)
        );
        Some((server, net))
    } else {
        None
    };
    let addr = match &hosted {
        Some((_, net)) => net.local_addr(),
        None => target.parse().unwrap_or_else(|_| {
            eprintln!("--connect: '{target}' is not a socket address");
            std::process::exit(2);
        }),
    };

    if verify {
        verify_socket_differential(addr, scale);
    }

    // `--update-mix` in socket mode: a writer thread churns the hosted
    // server's database and republishes the Figure 1 view while the
    // open-loop query load runs over TCP. The wire protocol has no
    // update verb, so this only works for the server we host ourselves.
    if update_mix > 0.0 && hosted.is_none() {
        eprintln!("--update-mix needs --connect auto (the writer mutates the hosted server)");
        std::process::exit(2);
    }
    let writer = hosted.as_ref().filter(|_| update_mix > 0.0).map(|(server, _)| {
        let server = Arc::clone(server);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        // Offered write rate rides the query rate: `rate * update_mix`
        // updates per second, each followed by a republish.
        let interval = Duration::from_secs_f64(1.0 / (rate * update_mix).max(1.0));
        let handle = std::thread::spawn(move || -> Result<(u64, u64), String> {
            let churn = ChurnSource::default();
            let view = resolve_view(server.database(), "supplier_parts")
                .map_err(|e| format!("resolve view: {e}"))?;
            let mut session = server.session();
            session.republish(&view, false).map_err(|e| format!("warm republish: {e}"))?;
            let (mut updates, mut incremental) = (0u64, 0u64);
            while !stop_flag.load(std::sync::atomic::Ordering::Relaxed) {
                churn.mutate_one(&server).map_err(|e| format!("update: {e}"))?;
                match session.republish(&view, false) {
                    Ok((_, outcome)) => {
                        updates += 1;
                        if outcome.is_incremental() {
                            incremental += 1;
                        }
                    }
                    // Shed under load: the delta stays queued for the
                    // next round trip, nothing is lost.
                    Err(e) if e.to_string().contains(SHED_MSG) => {}
                    Err(e) => return Err(format!("republish: {e}")),
                }
                std::thread::sleep(interval);
            }
            Ok((updates, incremental))
        });
        (stop, handle)
    });

    let options = NetLoadOptions { clients, requests, rate_per_sec: rate, warm };
    match run_fig8_socket_load(addr, options) {
        Ok(report) => println!("{report}"),
        Err(e) => {
            eprintln!("socket load run failed: {e}");
            std::process::exit(1);
        }
    }

    if let Some((stop, handle)) = writer {
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        match handle.join().expect("writer thread panicked") {
            Ok((updates, incremental)) => {
                let (server, _) = hosted.as_ref().expect("writer implies hosted");
                println!("writer: {updates} update+republish ops, {incremental} incremental");
                if verify {
                    verify_republish_differential(server, updates, incremental);
                }
            }
            Err(e) => {
                eprintln!("WRITER: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some((server, net)) = hosted {
        if verify {
            verify_metrics(&server, requests as u64);
        }
        println!("{}", server.stats());
        print!("{}", server.metrics_text());
        let report = net.drain(Duration::from_secs(10));
        if !report.drained || report.aborted > 0 {
            eprintln!("DRAIN: not clean: {report:?}");
            std::process::exit(1);
        }
        eprintln!("drain ok: all connections closed gracefully");
    }
}

/// The CI differential: socket answers must be identical to serial
/// in-process execution over the same deterministic data — relations
/// for the Figure 8 queries, byte-identical XML for the published views.
fn verify_socket_differential(addr: std::net::SocketAddr, scale: f64) {
    eprintln!("verifying socket answers against in-process execution...");
    let local = Database::tpch(scale).expect("generate TPC-H");
    let reference =
        Server::new(Database::tpch(scale).expect("generate TPC-H"), ServerConfig::default());
    let session = reference.session();
    let mut client = NetClient::connect(addr).expect("connect for verify");
    for w in figure8_workloads() {
        let expected = local.sql(&w.gapply_sql).expect("serial execution");
        let (got, _) = client
            .sql(&w.gapply_sql)
            .expect("socket execution")
            .expect_done()
            .expect("verify run shed");
        if got != expected {
            eprintln!("DIVERGENCE on {}: socket result differs from in-process", w.name);
            std::process::exit(1);
        }
    }
    for pretty in [false, true] {
        let view = resolve_view(&local, "supplier_parts").expect("resolve view");
        let expected = session.publish(&view, pretty).expect("in-process publish");
        let (got, rows, stats) = client
            .publish("supplier_parts", pretty)
            .expect("socket publish")
            .expect_done()
            .expect("verify publish shed");
        if stats.rows_scanned == 0 {
            eprintln!("publish(pretty={pretty}) End frame carried empty engine counters");
            std::process::exit(1);
        }
        if got != expected {
            eprintln!("DIVERGENCE on publish(pretty={pretty}): socket XML differs byte-for-byte");
            std::process::exit(1);
        }
        if rows == 0 {
            eprintln!("publish(pretty={pretty}) reported zero rows");
            std::process::exit(1);
        }
    }
    client.goodbye().expect("goodbye");
    eprintln!(
        "verify ok: {} workloads + publish (compact & pretty) byte-identical over TCP",
        figure8_workloads().len()
    );
}

/// After a writer run: churn once more, then a warmed incremental
/// session and a threshold-0 full-recompute session must produce
/// byte-identical documents over the same final data — the delta-
/// maintained document differential, under whatever state the
/// concurrent run left behind.
fn verify_republish_differential(server: &Server, updates: u64, incremental: u64) {
    if updates == 0 {
        eprintln!("WRITER: no updates completed; raise --rate or --update-mix");
        std::process::exit(1);
    }
    let view = resolve_view(server.database(), "supplier_parts").expect("resolve view");
    let mut incr = server.session();
    incr.republish(&view, false).expect("warm incremental session");
    let churn = ChurnSource::default();
    churn.mutate_one(server).expect("final churn");
    let (incr_doc, outcome) = incr.republish(&view, false).expect("incremental republish");
    if !outcome.is_incremental() {
        eprintln!("WRITER: final republish fell back ({outcome}); expected the incremental path");
        std::process::exit(1);
    }
    let mut full = server.session();
    full.set_republish_threshold(0.0);
    let (full_doc, _) = full.republish(&view, false).expect("full republish");
    if incr_doc != full_doc {
        eprintln!("DIVERGENCE: incremental republish differs byte-for-byte from full recompute");
        std::process::exit(1);
    }
    eprintln!(
        "republish ok: {updates} update+republish ops under load ({incremental} incremental), \
         final document byte-identical to full recompute"
    );
}

/// Metrics smoke for the hosted server: the exposition must parse and
/// the net layer must have accounted for the traffic.
fn verify_metrics(server: &Server, min_requests: u64) {
    let text = server.metrics_text();
    let snap = match xmlpub::parse_text(&text) {
        Ok(snap) => snap,
        Err(e) => {
            eprintln!("METRICS: exposition does not parse: {e}");
            std::process::exit(1);
        }
    };
    let net_requests = snap.counter("server.net.requests").unwrap_or(0);
    let frames_out = snap.counter("server.net.frames_out").unwrap_or(0);
    let opened = snap.counter("server.net.connections.opened").unwrap_or(0);
    if net_requests < min_requests || frames_out == 0 || opened == 0 {
        eprintln!(
            "METRICS: net layer unaccounted: requests {net_requests} (expected >= \
             {min_requests}), frames_out {frames_out}, connections.opened {opened}"
        );
        std::process::exit(1);
    }
    eprintln!("metrics ok: {net_requests} net requests, {opened} connections in the exposition");
}

// ---------------------------------------------------------------------
// In-process mode: the original closed-loop harness, unchanged behaviour.

#[allow(clippy::too_many_arguments)]
fn in_process_mode(
    scale: f64,
    workers: usize,
    queue_depth: usize,
    clients: usize,
    iters: usize,
    warm: bool,
    verify: bool,
    update_mix: f64,
) {
    eprintln!("generating TPC-H at scale {scale}...");
    let db = Database::tpch(scale).expect("generate TPC-H");
    let server = Server::new(db, ServerConfig { workers, queue_depth, ..ServerConfig::default() });

    if verify {
        // Differential check: each workload's concurrent answer must be
        // identical to a serial execution against the same data.
        eprintln!("verifying concurrent answers against serial execution...");
        let serial = Database::tpch(scale).expect("generate TPC-H");
        let session = server.session();
        for w in figure8_workloads() {
            let expected = serial.sql(&w.gapply_sql).expect("serial execution");
            let (got, _) = session.execute(&w.gapply_sql).expect("server execution");
            if got != expected {
                eprintln!("DIVERGENCE on {}: concurrent result differs from serial", w.name);
                std::process::exit(1);
            }
        }
        eprintln!("verify ok: all {} workloads match serial", figure8_workloads().len());
    }

    match run_fig8_load(&server, LoadOptions { clients, iters, warm, update_mix }) {
        Ok(report) => {
            println!("{report}");
            println!("{}", server.stats());
            let text = server.metrics_text();
            println!("{text}");
            if verify {
                // Metrics smoke: the exposition must be non-empty,
                // parse back, and account for every completed request.
                let snap = match xmlpub::parse_text(&text) {
                    Ok(snap) => snap,
                    Err(e) => {
                        eprintln!("METRICS: exposition does not parse: {e}");
                        std::process::exit(1);
                    }
                };
                let queries = snap.counter("server.query.count").unwrap_or(0);
                let hist = snap.histogram("server.query_us").map(|h| h.count).unwrap_or(0);
                if queries < report.total_requests || hist != queries {
                    eprintln!(
                        "METRICS: registry lost requests: counter {queries}, histogram {hist}, \
                         load report {}",
                        report.total_requests
                    );
                    std::process::exit(1);
                }
                eprintln!("metrics ok: {queries} requests accounted for in the exposition");
            }
        }
        Err(e) => {
            eprintln!("load run failed: {e}");
            std::process::exit(1);
        }
    }
}
