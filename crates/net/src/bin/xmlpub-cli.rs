//! `xmlpub-cli` — an interactive SQL shell over a generated TPC-H
//! database, with the paper's `gapply` syntax available.
//!
//! ```text
//! cargo run --release -p xmlpub-net --bin xmlpub-cli [-- --scale 0.01 --full]
//! cargo run --release -p xmlpub-net --bin xmlpub-cli -- --connect 127.0.0.1:7878
//! ```
//!
//! Meta commands:
//!   \d              list tables
//!   \explain [--verify|--analyze] <sql>
//!                   show bound plan, optimized plan, fired rules (with
//!                   --verify: lint every rewrite and the final plan;
//!                   with --analyze: run the query and show per-operator
//!                   runtime counters — through the server when one is
//!                   running, adding plan-cache and pool counters)
//!   \props <sql>    show the bound and optimized plans annotated with
//!                   inferred properties (keys, order, nullability,
//!                   cardinality intervals) at every operator
//!   \lint <sql>     run the plan linter on the bound plan
//!   \stats <sql>    run and show engine counters
//!   \batch [<n>]    set (or show) the engine batch-size target; 1 is
//!                   tuple-at-a-time
//!   \dop [<n>]      set (or show) the GApply degree of parallelism;
//!                   1 is serial (a running server still clamps each
//!                   request to its thread budget)
//!   \publish        publish the Figure 1 supplier/part view as XML
//!   \update [table] [n]
//!                   rename n rows (default: 1 supplier) through the
//!                   versioned delta path; targets the server's
//!                   database when one is running
//!   \republish [--pretty]
//!                   publish the Figure 1 view through the session's
//!                   delta-maintained document cache — after \update
//!                   only the dirty groups are re-tagged and the rest
//!                   of the bytes are spliced from the cached document
//!                   (starts a default server if none is running)
//!   \raw on|off     toggle the optimizer
//!   \sort | \hash   GApply partition strategy
//!   \serve [workers [depth]]
//!                   start (or restart) the concurrent publishing
//!                   service over a fresh copy of the database
//!   \listen [addr]  put the running server on the wire: bind a TCP
//!                   listener (default 127.0.0.1:0 — an ephemeral port,
//!                   printed) speaking the framed protocol; starts a
//!                   server with defaults if none is running
//!   \drain [secs]   gracefully shut the listener down: stop accepting,
//!                   finish in-flight requests, GOODBYE + FIN, bounded
//!                   by the deadline (default 10s)
//!   \workload [clients [iters]] [--cold] [--update-mix R]
//!                   run the Figure 8 closed-loop load harness against
//!                   the running server (--cold: skip prepared warmup;
//!                   --update-mix: fraction of requests that become
//!                   update-then-republish write operations)
//!   \server-stats   plan-cache and worker-pool counters
//!   \metrics        server metrics exposition (counters, gauges,
//!                   latency histograms) in the v1 text format —
//!                   includes server.net.* once a listener has traffic
//!   \slow [<us>]    show the server's slow-query log (with a number:
//!                   set the threshold in microseconds; 0 disables)
//!   \trace on|off   toggle span emission on the local database's
//!                   tracer (needs a sink: run with XMLPUB_TRACE=1 and
//!                   XMLPUB_TRACE_FILE=<path>)
//!   \q              quit
//!
//! Plain SQL runs directly against the local database; `\explain
//! --analyze` and `\workload` exercise the server when one is running.
//!
//! With `--connect ADDR` the shell is a *client*: SQL and `\publish`
//! travel over the framed TCP protocol to a remote `\listen` (or
//! loadgen-hosted) server, and `\q` says goodbye on the wire.

use std::io::{BufRead, Write};
use std::sync::Arc;
use std::time::Duration;
use xmlpub::{Database, PartitionStrategy};
use xmlpub_net::{NetClient, NetConfig, NetServer, Reply};
use xmlpub_server::{run_fig8_load, LoadOptions, Server, ServerConfig};

/// The shell's state: a directly-owned database for ad-hoc SQL plus an
/// optional running server (which owns its own copy — the TPC-H
/// generator is deterministic, so both see identical data) and an
/// optional TCP listener over that server.
struct Shell {
    db: Database,
    server: Option<Arc<Server>>,
    listener: Option<NetServer>,
    /// Persistent publishing session for `\republish`: it owns the
    /// cached segmented document, so successive republishes after
    /// `\update` take the incremental splice path. Reset by `\serve`.
    pub_session: Option<xmlpub_server::Session>,
    /// Monotonic tick for `\update`'s renames.
    update_tick: u64,
    scale: f64,
    full: bool,
}

impl Shell {
    fn fresh_db(&self) -> Database {
        if self.full {
            Database::tpch_full(self.scale).expect("generate TPC-H")
        } else {
            Database::tpch(self.scale).expect("generate TPC-H")
        }
    }
}

fn main() {
    let mut scale = 0.005f64;
    let mut full = false;
    let mut connect: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                scale = args.next().and_then(|v| v.parse().ok()).expect("--scale needs a number")
            }
            "--full" => full = true,
            "--connect" => {
                connect = Some(args.next().expect("--connect needs an address"));
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    if let Some(addr) = connect {
        remote_shell(&addr);
        return;
    }
    let db = if full {
        Database::tpch_full(scale).expect("generate TPC-H")
    } else {
        Database::tpch(scale).expect("generate TPC-H")
    };
    let mut shell =
        Shell { db, server: None, listener: None, pub_session: None, update_tick: 0, scale, full };
    println!("xmlpub — GApply SQL shell (TPC-H scale {scale}). \\q to quit, \\d for tables.");

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("xmlpub> ");
        } else {
            print!("   ...> ");
        }
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('\\') {
            if !meta_command(trimmed, &mut shell) {
                break;
            }
            continue;
        }
        buffer.push_str(&line);
        // Execute on a terminating semicolon (or a blank line).
        if trimmed.ends_with(';') || (trimmed.is_empty() && !buffer.trim().is_empty()) {
            run_sql(&shell.db, buffer.trim());
            buffer.clear();
        }
    }
    if let Some(listener) = shell.listener.take() {
        let report = listener.drain(Duration::from_secs(10));
        eprintln!("listener drained on exit: {report:?}");
    }
}

/// `--connect`: a thin remote shell speaking the framed protocol. SQL
/// statements and `\publish [view]` go over the wire; `\q` (or EOF)
/// says goodbye.
fn remote_shell(addr: &str) {
    let mut client = match NetClient::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    println!("connected to {addr}. \\q to quit; SQL ends with ';', \\publish [view] for XML.");
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("xmlpub({addr})> ");
        } else {
            print!("   ...> ");
        }
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('\\') {
            let (name, rest) = match trimmed.split_once(' ') {
                Some((n, r)) => (n, r.trim()),
                None => (trimmed, ""),
            };
            match name {
                "\\q" => break,
                "\\publish" => {
                    let view = if rest.is_empty() { "supplier_parts" } else { rest };
                    match client.publish(view, true) {
                        Ok(Reply::Done((xml, rows, _stats))) => {
                            for l in xml.lines().take(30) {
                                println!("{l}");
                            }
                            println!("... ({} lines, {rows} rows tagged)", xml.lines().count());
                        }
                        Ok(Reply::Busy(msg)) => eprintln!("server busy: {msg}"),
                        Err(e) => eprintln!("{e}"),
                    }
                }
                other => eprintln!("remote shell knows \\q and \\publish [view]; got {other}"),
            }
            continue;
        }
        buffer.push_str(&line);
        if trimmed.ends_with(';') || (trimmed.is_empty() && !buffer.trim().is_empty()) {
            let sql = buffer.trim().trim_end_matches(';').to_string();
            buffer.clear();
            if sql.is_empty() {
                continue;
            }
            match client.sql(&sql) {
                Ok(Reply::Done((rel, _stats))) => {
                    print!("{}", rel.to_table_string());
                    println!("({} rows)", rel.len());
                }
                Ok(Reply::Busy(msg)) => eprintln!("server busy: {msg}"),
                Err(e) => eprintln!("{e}"),
            }
        }
    }
    if let Err(e) = client.goodbye() {
        eprintln!("goodbye: {e}");
    }
}

fn run_sql(db: &Database, sql: &str) {
    if sql.is_empty() {
        return;
    }
    match db.sql(sql) {
        Ok(result) => {
            let shown = result.rows().len().min(40);
            let preview = xmlpub::Relation::from_rows_unchecked(
                result.schema().clone(),
                result.rows()[..shown].to_vec(),
            );
            print!("{}", preview.to_table_string());
            if shown < result.len() {
                println!("({} rows, showing first {shown})", result.len());
            } else {
                println!("({} rows)", result.len());
            }
        }
        Err(e) => eprintln!("{e}"),
    }
}

/// Returns false to quit.
fn meta_command(cmd: &str, shell: &mut Shell) -> bool {
    let (name, rest) = match cmd.split_once(' ') {
        Some((n, r)) => (n, r.trim()),
        None => (cmd, ""),
    };
    let db = &shell.db;
    match name {
        "\\q" => return false,
        "\\d" => {
            for t in db.catalog().tables() {
                println!(
                    "  {:<10} {:>8} rows   {}",
                    t.name,
                    db.statistics().rows(&t.name),
                    t.schema
                );
            }
        }
        "\\explain" => {
            if let Some(s) = rest.strip_prefix("--analyze") {
                if s.is_empty() || s.starts_with(char::is_whitespace) {
                    // Through the server when available: the report then
                    // carries plan-cache and pool counters too.
                    let analyzed = match &shell.server {
                        Some(server) => server.session().execute_analyzed(s.trim()),
                        None => db.sql_analyzed(s.trim()),
                    };
                    match analyzed {
                        Ok((result, report)) => {
                            println!("{report}");
                            println!("({} rows)", result.len());
                        }
                        Err(e) => eprintln!("{e}"),
                    }
                    return true;
                }
            }
            let (verify, sql) = match rest.strip_prefix("--verify") {
                Some(s) if s.is_empty() || s.starts_with(char::is_whitespace) => (true, s.trim()),
                _ => (false, rest),
            };
            match db.explain_with(sql, verify) {
                Ok(text) => println!("{text}"),
                Err(e) => eprintln!("{e}"),
            }
        }
        "\\props" => match db.props(rest) {
            Ok(text) => println!("{text}"),
            Err(e) => eprintln!("{e}"),
        },
        "\\lint" => match db.lint(rest) {
            Ok(diags) if diags.is_empty() => println!("clean: no lint diagnostics"),
            Ok(diags) => {
                for d in &diags {
                    println!("{d}");
                }
                println!("({} diagnostic(s))", diags.len());
            }
            Err(e) => eprintln!("{e}"),
        },
        "\\stats" => match db.sql_with_stats(rest) {
            Ok((result, stats)) => {
                println!("{} rows", result.len());
                println!("{stats:#?}");
            }
            Err(e) => eprintln!("{e}"),
        },
        "\\batch" => {
            if rest.is_empty() {
                println!("batch size {}", db.config().engine.batch_size);
            } else {
                match rest.parse::<usize>() {
                    Ok(n) => {
                        let n = n.max(1);
                        shell.db.config_mut().engine.batch_size = n;
                        println!(
                            "batch size {n}{}",
                            if n == 1 { " (tuple-at-a-time)" } else { "" }
                        );
                    }
                    Err(_) => eprintln!("\\batch needs a positive integer"),
                }
            }
        }
        "\\dop" => {
            if rest.is_empty() {
                println!("dop {}", db.config().engine.dop);
            } else {
                match rest.parse::<usize>() {
                    Ok(n) => {
                        let n = n.max(1);
                        shell.db.config_mut().engine.dop = n;
                        println!("dop {n}{}", if n == 1 { " (serial)" } else { "" });
                    }
                    Err(_) => eprintln!("\\dop needs a positive integer"),
                }
            }
        }
        "\\publish" => {
            match xmlpub::xml::supplier_parts_view(db.catalog())
                .and_then(|view| db.publish(&view, true))
            {
                Ok(xml) => {
                    for line in xml.lines().take(30) {
                        println!("{line}");
                    }
                    println!("... ({} lines total)", xml.lines().count());
                }
                Err(e) => eprintln!("{e}"),
            }
        }
        "\\update" => {
            let mut parts = rest.split_whitespace();
            let table = parts.next().unwrap_or("supplier").to_string();
            let n = parts.next().and_then(|v| v.parse::<usize>().ok()).unwrap_or(1).max(1);
            // Mutate the server's copy when one is running (that is the
            // copy \republish publishes); the standalone local database
            // otherwise.
            let target: &Database = match &shell.server {
                Some(server) => server.database(),
                None => &shell.db,
            };
            match apply_update(target, &table, n, &mut shell.update_tick) {
                Ok(applied) => println!(
                    "updated {applied} row(s) of {table}{} — \\republish to refresh the document",
                    if shell.server.is_some() { " (server database)" } else { "" }
                ),
                Err(e) => eprintln!("{e}"),
            }
        }
        "\\republish" => {
            let pretty = rest == "--pretty";
            if !rest.is_empty() && !pretty {
                eprintln!("\\republish [--pretty]");
                return true;
            }
            if shell.server.is_none() {
                let config =
                    ServerConfig { defaults: shell.db.config(), ..ServerConfig::default() };
                shell.server = Some(Arc::new(Server::new(shell.fresh_db(), config)));
                println!("server started with defaults (\\update mutates its database now)");
            }
            let server = shell.server.as_ref().unwrap();
            let session = shell.pub_session.get_or_insert_with(|| server.session());
            match xmlpub::xml::supplier_parts_view(server.database().catalog())
                .and_then(|view| session.republish(&view, pretty))
            {
                Ok((xml, outcome)) => {
                    for line in xml.lines().take(10) {
                        println!("{line}");
                    }
                    println!(
                        "... ({} lines, {} bytes) [{outcome}]",
                        xml.lines().count(),
                        xml.len()
                    );
                }
                Err(e) => eprintln!("{e}"),
            }
        }
        "\\raw" => {
            let on = rest.eq_ignore_ascii_case("on");
            shell.db.config_mut().skip_optimizer = on;
            println!("optimizer {}", if on { "disabled" } else { "enabled" });
        }
        "\\sort" => {
            shell.db.config_mut().engine.partition_strategy = PartitionStrategy::Sort;
            println!("GApply partitioning: sort");
        }
        "\\hash" => {
            shell.db.config_mut().engine.partition_strategy = PartitionStrategy::Hash;
            println!("GApply partitioning: hash");
        }
        "\\serve" => {
            if shell.listener.is_some() {
                eprintln!("a listener is attached to the running server; \\drain it first");
                return true;
            }
            let mut parts = rest.split_whitespace();
            let workers = parts.next().and_then(|v| v.parse().ok()).unwrap_or(4usize);
            let queue_depth = parts.next().and_then(|v| v.parse().ok()).unwrap_or(64usize);
            let config = ServerConfig {
                workers,
                queue_depth,
                defaults: shell.db.config(),
                ..ServerConfig::default()
            };
            shell.server = Some(Arc::new(Server::new(shell.fresh_db(), config)));
            // The old session's cached documents belong to the old server.
            shell.pub_session = None;
            println!(
                "server started: {workers} workers, queue depth {queue_depth} \
                 (\\workload to drive it, \\listen to put it on the wire, \
                 \\server-stats for counters)"
            );
        }
        "\\listen" => {
            if shell.listener.is_some() {
                eprintln!("already listening; \\drain first");
                return true;
            }
            if shell.server.is_none() {
                let config =
                    ServerConfig { defaults: shell.db.config(), ..ServerConfig::default() };
                shell.server = Some(Arc::new(Server::new(shell.fresh_db(), config)));
                println!("server started with defaults");
            }
            let server = Arc::clone(shell.server.as_ref().unwrap());
            let addr = if rest.is_empty() { "127.0.0.1:0".to_string() } else { rest.to_string() };
            match NetServer::start(server, NetConfig { addr, ..NetConfig::default() }) {
                Ok(net) => {
                    println!(
                        "listening on {} (framed protocol v{}; \\drain to stop)",
                        net.local_addr(),
                        xmlpub_net::PROTOCOL_VERSION
                    );
                    shell.listener = Some(net);
                }
                Err(e) => eprintln!("{e}"),
            }
        }
        "\\drain" => match shell.listener.take() {
            None => eprintln!("no listener running; start one with \\listen"),
            Some(net) => {
                let secs = rest.parse::<u64>().unwrap_or(10);
                let report = net.drain(Duration::from_secs(secs));
                if report.drained {
                    println!("drained cleanly (deadline {secs}s)");
                } else {
                    println!("drain hit the deadline: {} connection(s) aborted", report.aborted);
                }
            }
        },
        "\\workload" => match &shell.server {
            None => eprintln!("no server running; start one with \\serve"),
            Some(server) => {
                let mut clients = 4usize;
                let mut iters = 20usize;
                let mut warm = true;
                let mut update_mix = 0.0f64;
                let mut positional = 0;
                let mut parts = rest.split_whitespace();
                while let Some(part) = parts.next() {
                    if part == "--cold" {
                        warm = false;
                    } else if part == "--update-mix" {
                        match parts.next().and_then(|v| v.parse::<f64>().ok()) {
                            Some(r) => update_mix = r.clamp(0.0, 1.0),
                            None => {
                                eprintln!("--update-mix needs a fraction in 0..1");
                                return true;
                            }
                        }
                    } else if let Ok(n) = part.parse::<usize>() {
                        match positional {
                            0 => clients = n.max(1),
                            _ => iters = n.max(1),
                        }
                        positional += 1;
                    } else {
                        eprintln!("\\workload [clients [iters]] [--cold] [--update-mix R]");
                        return true;
                    }
                }
                match run_fig8_load(server, LoadOptions { clients, iters, warm, update_mix }) {
                    Ok(report) => {
                        println!("{report}");
                        println!("{}", server.stats());
                    }
                    Err(e) => eprintln!("{e}"),
                }
            }
        },
        "\\server-stats" => match &shell.server {
            None => eprintln!("no server running; start one with \\serve"),
            Some(server) => println!("{}", server.stats()),
        },
        "\\metrics" => match &shell.server {
            None => eprintln!("no server running; start one with \\serve"),
            Some(server) => print!("{}", server.metrics_text()),
        },
        "\\slow" => match &shell.server {
            None => eprintln!("no server running; start one with \\serve"),
            Some(server) => {
                if rest.is_empty() {
                    println!("{}", server.slow_query_log());
                } else {
                    match rest.parse::<u64>() {
                        Ok(us) => {
                            server.slow_query_log().set_threshold_us(us);
                            if us == 0 {
                                println!("slow-query log disabled");
                            } else {
                                println!("slow-query threshold {us}us");
                            }
                        }
                        Err(_) => eprintln!("\\slow [<threshold_us>]"),
                    }
                }
            }
        },
        "\\trace" => {
            let tracer = &db.observability().tracer;
            match rest {
                "on" | "off" => {
                    let on = rest == "on";
                    tracer.set_enabled(on);
                    if on && !tracer.enabled() {
                        eprintln!(
                            "no trace sink configured; restart with XMLPUB_TRACE=1 \
                             XMLPUB_TRACE_FILE=<path>"
                        );
                    } else {
                        println!("tracing {rest}");
                    }
                }
                _ => eprintln!("\\trace on|off"),
            }
        }
        other => {
            eprintln!(
                "unknown command {other}; try \\d \\explain \\props \\lint \\stats \\batch \\dop \
                 \\publish \\update \\republish \\serve \\listen \\drain \\workload \
                 \\server-stats \\metrics \\slow \\trace \\q"
            )
        }
    }
    true
}

/// `\update`: rename `n` rows of `table` (round-robin, first string
/// column) through the versioned delta path, so a subsequent
/// `\republish` sees a small dirty set rather than a cold cache.
fn apply_update(
    db: &Database,
    table: &str,
    n: usize,
    tick: &mut u64,
) -> xmlpub_common::Result<usize> {
    use xmlpub_common::{DeltaBatch, Error, Tuple, Value};
    let data = db.catalog().data(table)?;
    let rows = data.rows();
    if rows.is_empty() {
        return Err(Error::exec(format!("table '{table}' is empty; nothing to update")));
    }
    let Some(name_col) = rows[0].values().iter().position(|v| matches!(v, Value::Str(_))) else {
        return Err(Error::exec(format!("table '{table}' has no string column to rename")));
    };
    let mut batch = DeltaBatch::default();
    for _ in 0..n.min(rows.len()) {
        let idx = (*tick as usize) % rows.len();
        *tick += 1;
        let old = rows[idx].clone();
        let mut vals = old.values().to_vec();
        let base = match &vals[name_col] {
            Value::Str(s) => s.split(" u#").next().unwrap_or(s).to_string(),
            _ => unreachable!("name_col points at a string column"),
        };
        vals[name_col] = Value::str(format!("{base} u#{}", *tick));
        batch.deleted.push(old);
        batch.appended.push(Tuple::new(vals));
    }
    let applied = batch.appended.len();
    db.apply_delta(table, &batch)?;
    Ok(applied)
}
