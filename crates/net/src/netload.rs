//! Open-loop socket load harness over the Figure 8 workloads.
//!
//! The in-process harness (`xmlpub_server::run_fig8_load`) is *closed
//! loop*: each client waits for its answer before sending the next
//! request, so offered load sags exactly when the server slows down —
//! good for throughput ceilings, useless for latency under a fixed
//! arrival process. This harness is *open loop*: request `k` of `n` is
//! scheduled at `t0 + k/rate` regardless of how request `k-1` fared,
//! the way real traffic arrives. Threads split the global schedule
//! round-robin (thread `t` issues requests `t, t+clients, ...`), each
//! over its own TCP connection. `t0` is taken at a barrier *after*
//! every thread has connected and run its warm-up prepares, so setup
//! cost is outside the measured window — the scheduler never starts
//! with a sleep deficit and early requests are not branded late.
//!
//! Accounting follows the in-process harness's fixed rules: a service
//! time is the successful attempt alone, measured send-to-`End`; BUSY
//! answers and backoff sleeps are counted separately and never become
//! latency samples. Lateness (the scheduler falling behind the arrival
//! process because every connection is stuck waiting) is reported so a
//! saturated run is visibly not measuring the rate it claims.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use xmlpub_common::{Error, Result};
use xmlpub_server::loadgen::{percentile, QueryStats};
use xmlpub_xml::workloads::figure8_workloads;

use crate::client::{NetClient, RetryStats};

/// Open-loop run shape.
#[derive(Debug, Clone, Copy)]
pub struct NetLoadOptions {
    /// Client threads, each with its own connection.
    pub clients: usize,
    /// Total requests across all threads.
    pub requests: usize,
    /// Target arrival rate, requests/second, across all threads.
    pub rate_per_sec: f64,
    /// Prepare statements per connection first (warm path).
    pub warm: bool,
}

impl Default for NetLoadOptions {
    fn default() -> Self {
        NetLoadOptions { clients: 4, requests: 200, rate_per_sec: 200.0, warm: true }
    }
}

/// The report of one open-loop socket run.
#[derive(Debug, Clone)]
pub struct NetLoadReport {
    /// The options the run used.
    pub options: NetLoadOptions,
    /// Per-query service-time summaries (socket round-trip), workload
    /// order.
    pub per_query: Vec<QueryStats>,
    /// Completed requests.
    pub total_requests: u64,
    /// BUSY answers received and retried.
    pub busy_retries: u64,
    /// Total backoff sleep across all clients (excluded from the
    /// percentiles above).
    pub retry_backoff: Duration,
    /// Requests issued more than 1ms after their scheduled arrival —
    /// when this is a large fraction, the run was not actually open
    /// loop at the target rate.
    pub late_arrivals: u64,
    /// Wall clock for the measured window: from the post-connect,
    /// post-warmup barrier to the last thread finishing.
    pub wall: Duration,
    /// Completed requests per second of wall time.
    pub throughput_qps: f64,
}

impl std::fmt::Display for NetLoadReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "== socket load report ==  open loop: {} clients, {} requests at {:.0}/s ({} path)",
            self.options.clients,
            self.options.requests,
            self.options.rate_per_sec,
            if self.options.warm { "prepared/warm" } else { "ad-hoc/cold" }
        )?;
        writeln!(
            f,
            "  {:>5}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}",
            "query", "requests", "mean_us", "p50_us", "p95_us", "p99_us"
        )?;
        for q in &self.per_query {
            writeln!(
                f,
                "  {:>5}  {:>8}  {:>10.1}  {:>10.1}  {:>10.1}  {:>10.1}",
                q.name, q.requests, q.mean_us, q.p50_us, q.p95_us, q.p99_us
            )?;
        }
        write!(
            f,
            "  total {} requests in {:.3}s -> {:.1} q/s ({} busy-retried, {:.3}s backoff, \
             excluded from percentiles; {} late arrivals)",
            self.total_requests,
            self.wall.as_secs_f64(),
            self.throughput_qps,
            self.busy_retries,
            self.retry_backoff.as_secs_f64(),
            self.late_arrivals
        )
    }
}

struct ThreadOutcome {
    samples: BTreeMap<&'static str, Vec<u64>>,
    retries: RetryStats,
    late: u64,
}

/// Run the Figure 8 workloads open-loop against a listening
/// [`crate::NetServer`] at `addr`.
pub fn run_fig8_socket_load(addr: SocketAddr, options: NetLoadOptions) -> Result<NetLoadReport> {
    if options.rate_per_sec <= 0.0 {
        return Err(Error::exec("open-loop rate must be positive"));
    }
    let workloads = figure8_workloads();
    let clients = options.clients.max(1);
    let interval = Duration::from_secs_f64(1.0 / options.rate_per_sec);
    // Threads park here once their connection is ready (warm-up
    // prepares included); the arrival clock starts only after release.
    // The extra participant is the coordinating thread, which takes the
    // wall-clock origin at the same instant.
    let barrier = std::sync::Barrier::new(clients + 1);

    let (wall, outcomes): (Duration, Vec<Result<ThreadOutcome>>) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|t| {
                let workloads = &workloads;
                let barrier = &barrier;
                s.spawn(move || -> Result<ThreadOutcome> {
                    // Setup failures still hit the barrier — a thread
                    // that can't connect must not strand the others.
                    let setup = (|| -> Result<NetClient> {
                        let mut client = NetClient::connect(addr)?;
                        if options.warm {
                            for w in workloads {
                                client.prepare(w.name, &w.gapply_sql)?.expect_done()?;
                            }
                        }
                        Ok(client)
                    })();
                    barrier.wait();
                    let start = Instant::now();
                    let mut client = setup?;
                    let mut out = ThreadOutcome {
                        samples: BTreeMap::new(),
                        retries: RetryStats::default(),
                        late: 0,
                    };
                    // This thread owns global request indices t, t+C, ...
                    let mut k = t;
                    while k < options.requests {
                        let scheduled = interval.mul_f64(k as f64);
                        let now = start.elapsed();
                        if now < scheduled {
                            std::thread::sleep(scheduled - now);
                        } else if now > scheduled + Duration::from_millis(1) {
                            out.late += 1;
                        }
                        let w = &workloads[k % workloads.len()];
                        // Service time = the successful attempt alone:
                        // each attempt restarts the clock, so BUSY
                        // round-trips and backoff never pollute samples.
                        let mut attempt_us = 0u64;
                        client.retry_busy(&mut out.retries, |c| {
                            let t = Instant::now();
                            let r = if options.warm {
                                c.exec_prepared(w.name)
                            } else {
                                c.sql(&w.gapply_sql)
                            };
                            attempt_us = t.elapsed().as_micros() as u64;
                            r
                        })?;
                        out.samples.entry(w.name).or_default().push(attempt_us);
                        k += clients;
                    }
                    client.goodbye()?;
                    Ok(out)
                })
            })
            .collect();
        barrier.wait();
        let run_start = Instant::now();
        let outcomes =
            handles.into_iter().map(|h| h.join().expect("socket load client panicked")).collect();
        (run_start.elapsed(), outcomes)
    });
    let mut merged: BTreeMap<&'static str, Vec<u64>> = BTreeMap::new();
    let mut retries = RetryStats::default();
    let mut late = 0u64;
    for outcome in outcomes {
        let mut outcome = outcome?;
        for (name, samples) in std::mem::take(&mut outcome.samples) {
            merged.entry(name).or_default().extend(samples);
        }
        retries.merge(&outcome.retries);
        late += outcome.late;
    }

    let mut per_query = Vec::new();
    let mut total_requests = 0u64;
    for w in &workloads {
        let mut samples = merged.remove(w.name).unwrap_or_default();
        samples.sort_unstable();
        total_requests += samples.len() as u64;
        let mean_us = if samples.is_empty() {
            0.0
        } else {
            samples.iter().sum::<u64>() as f64 / samples.len() as f64
        };
        per_query.push(QueryStats {
            name: w.name,
            requests: samples.len() as u64,
            mean_us,
            p50_us: percentile(&samples, 50.0),
            p95_us: percentile(&samples, 95.0),
            p99_us: percentile(&samples, 99.0),
        });
    }

    let secs = wall.as_secs_f64();
    Ok(NetLoadReport {
        options,
        per_query,
        total_requests,
        busy_retries: retries.busy_retries,
        retry_backoff: retries.backoff,
        late_arrivals: late,
        wall,
        throughput_qps: if secs > 0.0 { total_requests as f64 / secs } else { 0.0 },
    })
}
