//! The framed wire protocol.
//!
//! Every message on the socket is one *frame*:
//!
//! ```text
//! frame   := len:u32be  kind:u8  payload:bytes[len-1]
//! ```
//!
//! `len` counts the kind byte plus the payload, so a frame occupies
//! `4 + len` bytes on the wire. `len == 0` and `len > MAX_FRAME_LEN` are
//! protocol errors — a decoder never allocates based on an unvalidated
//! length, and a reader that hits EOF mid-frame reports a typed
//! [`ProtocolError::Truncated`] instead of hanging or panicking.
//!
//! Payloads are built from four primitives, all big-endian:
//! `u8`, `u32`, `u64`/`i64`, and `str` (`u32` length + UTF-8 bytes).
//! Values carry a one-byte type tag. The grammar of every frame kind is
//! documented on [`Request`] and [`Response`]; `docs/serving.md` has the
//! prose version.
//!
//! The decoder is deliberately *pull-based and incremental*
//! ([`FrameDecoder::feed`] / [`FrameDecoder::next_frame`]): the
//! connection reader can hand it arbitrary byte slices as they arrive
//! from the socket, and fuzzing random prefixes through it
//! (`tests/frame_fuzz.rs`) shows it either yields frames, asks for more
//! bytes, or fails with a typed error — never panics, never loops.

use std::io::{Read, Write};

use xmlpub_common::{DataType, Error, Field, Relation, Result, Schema, Tuple, Value};
use xmlpub_engine::ExecStats;

/// Protocol version exchanged in `Hello`/`Ok`.
pub const PROTOCOL_VERSION: u32 = 1;

/// Hard ceiling on `len` (kind + payload). Anything larger is rejected
/// at the length word, *before* any allocation, so a hostile or corrupt
/// peer cannot make the server reserve gigabytes. 16 MiB comfortably
/// fits the largest row batch / XML chunk the server emits (batches are
/// re-chunked at [`ROW_BATCH_ROWS`] rows and [`ROW_BATCH_BYTE_BUDGET`]
/// encoded bytes, XML at [`XML_CHUNK_BYTES`]).
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Rows per `RowBatch` frame when the server serialises a result.
pub const ROW_BATCH_ROWS: usize = 1024;

/// Target XML bytes per `XmlChunk` frame (the streaming tagger's sink
/// flushes at this granularity).
pub const XML_CHUNK_BYTES: usize = 32 * 1024;

/// A typed protocol-level failure. Distinct from [`Error`] so the
/// connection layer can count malformed traffic (`server.net.malformed`)
/// and answer with a protocol error frame instead of tearing down the
/// process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The length word was zero — every frame has at least a kind byte.
    ZeroLength,
    /// The length word exceeded [`MAX_FRAME_LEN`].
    Oversized {
        /// The advertised length.
        len: u64,
    },
    /// The stream ended (or a payload ran out) mid-frame.
    Truncated,
    /// The kind byte is not a known frame kind.
    UnknownKind(u8),
    /// The payload did not match the frame kind's grammar.
    Malformed(String),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::ZeroLength => write!(f, "zero-length frame"),
            ProtocolError::Oversized { len } => {
                write!(f, "oversized frame: {len} bytes > max {MAX_FRAME_LEN}")
            }
            ProtocolError::Truncated => write!(f, "truncated frame"),
            ProtocolError::UnknownKind(k) => write!(f, "unknown frame kind 0x{k:02x}"),
            ProtocolError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
        }
    }
}

impl From<ProtocolError> for Error {
    fn from(e: ProtocolError) -> Error {
        Error::exec(format!("protocol: {e}"))
    }
}

// Frame kind bytes. Requests are < 0x80, responses >= 0x80.
const K_HELLO: u8 = 0x01;
const K_SQL: u8 = 0x02;
const K_PREPARE: u8 = 0x03;
const K_EXEC_PREPARED: u8 = 0x04;
const K_PUBLISH: u8 = 0x05;
const K_GOODBYE: u8 = 0x06;

const K_OK: u8 = 0x81;
const K_SCHEMA: u8 = 0x82;
const K_ROW_BATCH: u8 = 0x83;
const K_XML_CHUNK: u8 = 0x84;
const K_END: u8 = 0x85;
const K_ERROR: u8 = 0x86;
const K_BUSY: u8 = 0x87;
const K_SRV_GOODBYE: u8 = 0x88;

/// A client → server frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `0x01` — handshake: `version:u32`. Answered with [`Response::Ok`].
    Hello {
        /// Client protocol version.
        version: u32,
    },
    /// `0x02` — run SQL: `sql:str`. Answered with `Schema RowBatch* End`
    /// (or `Busy`/`Error`).
    Sql {
        /// Query text (the `gapply` extension included).
        sql: String,
    },
    /// `0x03` — prepare a named statement: `name:str sql:str`. Answered
    /// with [`Response::Ok`] whose info is `"hit"` or `"miss"`.
    Prepare {
        /// Statement name.
        name: String,
        /// Query text.
        sql: String,
    },
    /// `0x04` — execute a prepared statement: `name:str`. Answered like
    /// [`Request::Sql`].
    ExecPrepared {
        /// Statement name.
        name: String,
    },
    /// `0x05` — publish a named XML view: `view:str pretty:u8`.
    /// Answered with `XmlChunk* End` (or `Busy`/`Error`).
    Publish {
        /// Registered view name (`supplier_parts`, `customer_orders`).
        view: String,
        /// Indented output when true.
        pretty: bool,
    },
    /// `0x06` — client is done; the server answers [`Response::Goodbye`]
    /// and closes.
    Goodbye,
}

/// A server → client frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `0x81` — generic acknowledgement: `version:u32 info:str`.
    Ok {
        /// Server protocol version.
        version: u32,
        /// Human-readable detail (handshake banner, prepare hit/miss).
        info: String,
    },
    /// `0x82` — result schema, sent once before the first `RowBatch`:
    /// `nfields:u32 (has_qual:u8 [qual:str] name:str dtype:u8)*`.
    Schema(Schema),
    /// `0x83` — a slice of result rows: `nrows:u32 ncols:u32 value*`
    /// (row-major).
    RowBatch(Vec<Tuple>),
    /// `0x84` — a slice of the XML document: raw UTF-8 bytes.
    XmlChunk(Vec<u8>),
    /// `0x85` — end of one response: `rows:u64 nstats:u8 u64*` (engine
    /// counters in [`encode_stats`] order).
    End {
        /// Rows in the full result (or rows streamed through the tagger).
        rows: u64,
        /// Engine counters for the request.
        stats: ExecStats,
    },
    /// `0x86` — the request failed: `code:u8 msg:str`.
    Error {
        /// Maps onto [`Error`] variants (see [`encode_error_code`]).
        code: u8,
        /// The error message.
        message: String,
    },
    /// `0x87` — the request was shed by admission control: `msg:str`.
    /// The client may retry after a backoff; nothing was executed.
    Busy {
        /// The shed message.
        message: String,
    },
    /// `0x88` — the server is draining; no more requests will be
    /// answered on this connection. FIN follows.
    Goodbye,
}

// ---------------------------------------------------------------------
// Payload primitives.

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// A cursor over a frame payload; every getter is bounds-checked and
/// returns [`ProtocolError::Truncated`]/[`ProtocolError::Malformed`]
/// instead of slicing out of range.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> std::result::Result<&'a [u8], ProtocolError> {
        if self.buf.len() - self.pos < n {
            return Err(ProtocolError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> std::result::Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> std::result::Result<u32, ProtocolError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> std::result::Result<u64, ProtocolError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> std::result::Result<String, ProtocolError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ProtocolError::Malformed("string is not UTF-8".into()))
    }

    fn finish(self) -> std::result::Result<(), ProtocolError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtocolError::Malformed(format!(
                "{} trailing payload bytes",
                self.buf.len() - self.pos
            )))
        }
    }
}

// ---------------------------------------------------------------------
// Value / schema / stats codecs.

const V_NULL: u8 = 0;
const V_BOOL: u8 = 1;
const V_INT: u8 = 2;
const V_FLOAT: u8 = 3;
const V_STR: u8 = 4;

fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(V_NULL),
        Value::Bool(b) => {
            buf.push(V_BOOL);
            buf.push(u8::from(*b));
        }
        Value::Int(i) => {
            buf.push(V_INT);
            buf.extend_from_slice(&i.to_be_bytes());
        }
        Value::Float(f) => {
            buf.push(V_FLOAT);
            buf.extend_from_slice(&f.to_bits().to_be_bytes());
        }
        Value::Str(s) => {
            buf.push(V_STR);
            put_str(buf, s);
        }
    }
}

fn get_value(c: &mut Cursor<'_>) -> std::result::Result<Value, ProtocolError> {
    match c.u8()? {
        V_NULL => Ok(Value::Null),
        V_BOOL => Ok(Value::Bool(c.u8()? != 0)),
        V_INT => Ok(Value::Int(c.u64()? as i64)),
        V_FLOAT => Ok(Value::Float(f64::from_bits(c.u64()?))),
        V_STR => Ok(Value::str(c.str()?)),
        tag => Err(ProtocolError::Malformed(format!("unknown value tag {tag}"))),
    }
}

fn dtype_code(t: DataType) -> u8 {
    match t {
        DataType::Bool => 0,
        DataType::Int => 1,
        DataType::Float => 2,
        DataType::Str => 3,
        DataType::Null => 4,
    }
}

fn dtype_of(code: u8) -> std::result::Result<DataType, ProtocolError> {
    Ok(match code {
        0 => DataType::Bool,
        1 => DataType::Int,
        2 => DataType::Float,
        3 => DataType::Str,
        4 => DataType::Null,
        other => return Err(ProtocolError::Malformed(format!("unknown dtype code {other}"))),
    })
}

fn put_schema(buf: &mut Vec<u8>, schema: &Schema) {
    put_u32(buf, schema.len() as u32);
    for f in schema.fields() {
        match &f.qualifier {
            Some(q) => {
                buf.push(1);
                put_str(buf, q);
            }
            None => buf.push(0),
        }
        put_str(buf, &f.name);
        buf.push(dtype_code(f.data_type));
    }
}

fn get_schema(c: &mut Cursor<'_>) -> std::result::Result<Schema, ProtocolError> {
    let n = c.u32()? as usize;
    // A schema is tiny; cap the count so a corrupt length can't force a
    // huge reservation even inside an otherwise-valid frame.
    if n > 1 << 16 {
        return Err(ProtocolError::Malformed(format!("schema with {n} fields")));
    }
    let mut fields = Vec::with_capacity(n);
    for _ in 0..n {
        let qualifier = if c.u8()? != 0 { Some(c.str()?) } else { None };
        let name = c.str()?;
        let data_type = dtype_of(c.u8()?)?;
        fields.push(match qualifier {
            Some(q) => Field::qualified(q, name, data_type),
            None => Field::new(name, data_type),
        });
    }
    Ok(Schema::new(fields))
}

/// The engine counters carried by an `End` frame, in wire order. The
/// count prefix makes the format forward-compatible: a newer server may
/// append counters and an older client skips the extras.
fn stats_fields(s: &ExecStats) -> [u64; 11] {
    [
        s.rows_scanned,
        s.group_rows_scanned,
        s.join_probes,
        s.groups_processed,
        s.pgq_executions,
        s.apply_inner_executions,
        s.apply_cache_hits,
        s.rows_sorted,
        s.rows_hashed,
        s.plan_cache_hits,
        s.plan_cache_misses,
    ]
}

fn put_stats(buf: &mut Vec<u8>, s: &ExecStats) {
    let fields = stats_fields(s);
    buf.push(fields.len() as u8);
    for v in fields {
        put_u64(buf, v);
    }
}

fn get_stats(c: &mut Cursor<'_>) -> std::result::Result<ExecStats, ProtocolError> {
    let n = c.u8()? as usize;
    let mut vals = [0u64; 11];
    for i in 0..n {
        let v = c.u64()?;
        if i < vals.len() {
            vals[i] = v;
        }
    }
    let mut s = ExecStats::default();
    [
        s.rows_scanned,
        s.group_rows_scanned,
        s.join_probes,
        s.groups_processed,
        s.pgq_executions,
        s.apply_inner_executions,
        s.apply_cache_hits,
        s.rows_sorted,
        s.rows_hashed,
        s.plan_cache_hits,
        s.plan_cache_misses,
    ] = vals;
    Ok(s)
}

/// Map an [`Error`] variant onto a wire code (and back, lossily: parse
/// positions are folded into the message).
pub fn encode_error_code(e: &Error) -> u8 {
    match e {
        Error::Parse { .. } => 0,
        Error::Bind(_) => 1,
        Error::Plan(_) => 2,
        Error::Execution(_) => 3,
        Error::Catalog(_) => 4,
        Error::Xml(_) => 5,
        Error::Unsupported(_) => 6,
    }
}

/// Reconstruct an [`Error`] from a wire code + message.
pub fn decode_error(code: u8, message: String) -> Error {
    match code {
        0 => Error::Parse { message, line: 0, column: 0 },
        1 => Error::Bind(message),
        2 => Error::Plan(message),
        4 => Error::Catalog(message),
        5 => Error::Xml(message),
        6 => Error::Unsupported(message),
        _ => Error::Execution(message),
    }
}

// ---------------------------------------------------------------------
// Frame encode.

fn frame_bytes(kind: u8, payload: &[u8]) -> Vec<u8> {
    let len = 1 + payload.len();
    debug_assert!(len <= MAX_FRAME_LEN, "emitting an oversized frame ({len} bytes)");
    let mut out = Vec::with_capacity(4 + len);
    put_u32(&mut out, len as u32);
    out.push(kind);
    out.extend_from_slice(payload);
    out
}

/// Encode a request into its on-wire bytes (length word included).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut p = Vec::new();
    let kind = match req {
        Request::Hello { version } => {
            put_u32(&mut p, *version);
            K_HELLO
        }
        Request::Sql { sql } => {
            put_str(&mut p, sql);
            K_SQL
        }
        Request::Prepare { name, sql } => {
            put_str(&mut p, name);
            put_str(&mut p, sql);
            K_PREPARE
        }
        Request::ExecPrepared { name } => {
            put_str(&mut p, name);
            K_EXEC_PREPARED
        }
        Request::Publish { view, pretty } => {
            put_str(&mut p, view);
            p.push(u8::from(*pretty));
            K_PUBLISH
        }
        Request::Goodbye => K_GOODBYE,
    };
    frame_bytes(kind, &p)
}

/// Encode a response into its on-wire bytes (length word included).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut p = Vec::new();
    let kind = match resp {
        Response::Ok { version, info } => {
            put_u32(&mut p, *version);
            put_str(&mut p, info);
            K_OK
        }
        Response::Schema(schema) => {
            put_schema(&mut p, schema);
            K_SCHEMA
        }
        Response::RowBatch(rows) => {
            put_u32(&mut p, rows.len() as u32);
            let ncols = rows.first().map(|r| r.len()).unwrap_or(0);
            put_u32(&mut p, ncols as u32);
            for row in rows {
                debug_assert_eq!(row.len(), ncols, "ragged row batch");
                for v in row.values() {
                    put_value(&mut p, v);
                }
            }
            K_ROW_BATCH
        }
        Response::XmlChunk(bytes) => {
            p.extend_from_slice(bytes);
            K_XML_CHUNK
        }
        Response::End { rows, stats } => {
            put_u64(&mut p, *rows);
            put_stats(&mut p, stats);
            K_END
        }
        Response::Error { code, message } => {
            p.push(*code);
            put_str(&mut p, message);
            K_ERROR
        }
        Response::Busy { message } => {
            put_str(&mut p, message);
            K_BUSY
        }
        Response::Goodbye => K_SRV_GOODBYE,
    };
    frame_bytes(kind, &p)
}

// ---------------------------------------------------------------------
// Frame decode.

/// Either side's frame, as decoded off the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A client → server frame.
    Request(Request),
    /// A server → client frame.
    Response(Response),
}

fn decode_payload(kind: u8, payload: &[u8]) -> std::result::Result<Frame, ProtocolError> {
    let mut c = Cursor::new(payload);
    let frame = match kind {
        K_HELLO => Frame::Request(Request::Hello { version: c.u32()? }),
        K_SQL => Frame::Request(Request::Sql { sql: c.str()? }),
        K_PREPARE => Frame::Request(Request::Prepare { name: c.str()?, sql: c.str()? }),
        K_EXEC_PREPARED => Frame::Request(Request::ExecPrepared { name: c.str()? }),
        K_PUBLISH => Frame::Request(Request::Publish { view: c.str()?, pretty: c.u8()? != 0 }),
        K_GOODBYE => Frame::Request(Request::Goodbye),
        K_OK => Frame::Response(Response::Ok { version: c.u32()?, info: c.str()? }),
        K_SCHEMA => Frame::Response(Response::Schema(get_schema(&mut c)?)),
        K_ROW_BATCH => {
            let nrows = c.u32()? as usize;
            let ncols = c.u32()? as usize;
            // Guard the reservation: every value occupies at least its
            // one-byte type tag, so the claimed shape must fit in the
            // bytes that actually arrived. Zero-column rows carry no
            // bytes at all, so a nonzero row count there is unbounded
            // by the payload and rejected outright — the reservation
            // below never exceeds the (already length-checked) payload.
            let remaining = payload.len().saturating_sub(8);
            if (ncols == 0 && nrows > 0) || nrows.saturating_mul(ncols) > remaining {
                return Err(ProtocolError::Malformed(format!(
                    "row batch claims {nrows} x {ncols} values in {remaining} payload bytes"
                )));
            }
            let mut rows = Vec::with_capacity(nrows);
            for _ in 0..nrows {
                let mut vals = Vec::with_capacity(ncols);
                for _ in 0..ncols {
                    vals.push(get_value(&mut c)?);
                }
                rows.push(Tuple::new(vals));
            }
            Frame::Response(Response::RowBatch(rows))
        }
        K_XML_CHUNK => {
            let bytes = payload.to_vec();
            c.pos = payload.len();
            Frame::Response(Response::XmlChunk(bytes))
        }
        K_END => Frame::Response(Response::End { rows: c.u64()?, stats: get_stats(&mut c)? }),
        K_ERROR => Frame::Response(Response::Error { code: c.u8()?, message: c.str()? }),
        K_BUSY => Frame::Response(Response::Busy { message: c.str()? }),
        K_SRV_GOODBYE => Frame::Response(Response::Goodbye),
        other => return Err(ProtocolError::UnknownKind(other)),
    };
    c.finish()?;
    Ok(frame)
}

/// Incremental frame decoder over a growing byte buffer.
///
/// Feed it whatever the socket produced; [`next_frame`] yields complete
/// frames and compacts the buffer. All length validation happens here,
/// so the connection layer sees either a valid [`Frame`] or a typed
/// [`ProtocolError`] — a decoder error is terminal for the stream (the
/// bytes after a malformed frame cannot be trusted to re-align).
#[derive(Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Append raw socket bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete frame.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Decode the next complete frame, `Ok(None)` if more bytes are
    /// needed. Length-word validation (zero, oversized) happens before
    /// any payload is awaited, so a hostile length fails fast.
    pub fn next_frame(&mut self) -> std::result::Result<Option<Frame>, ProtocolError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            self.compact();
            return Ok(None);
        }
        let len = u32::from_be_bytes(avail[..4].try_into().unwrap()) as usize;
        if len == 0 {
            return Err(ProtocolError::ZeroLength);
        }
        if len > MAX_FRAME_LEN {
            return Err(ProtocolError::Oversized { len: len as u64 });
        }
        if avail.len() < 4 + len {
            self.compact();
            return Ok(None);
        }
        let kind = avail[4];
        let frame = decode_payload(kind, &avail[5..4 + len])?;
        self.pos += 4 + len;
        self.compact();
        Ok(Some(frame))
    }

    fn compact(&mut self) {
        // Reclaim consumed prefix once it dominates the buffer.
        if self.pos > 4096 && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

// ---------------------------------------------------------------------
// Blocking IO helpers.

/// Write one encoded frame (as produced by [`encode_request`] /
/// [`encode_response`]) to a sink in a single `write_all`.
pub fn write_frame(w: &mut impl Write, encoded: &[u8]) -> std::io::Result<()> {
    w.write_all(encoded)
}

/// Read one frame from a blocking reader. `Ok(None)` on clean EOF at a
/// frame boundary; EOF mid-frame is [`ProtocolError::Truncated`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>> {
    let mut len_buf = [0u8; 4];
    match read_exact_or_eof(r, &mut len_buf)? {
        ReadOutcome::Eof => return Ok(None),
        ReadOutcome::Partial => return Err(ProtocolError::Truncated.into()),
        ReadOutcome::Full => {}
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len == 0 {
        return Err(ProtocolError::ZeroLength.into());
    }
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::Oversized { len: len as u64 }.into());
    }
    let mut body = vec![0u8; len];
    match read_exact_or_eof(r, &mut body)? {
        ReadOutcome::Full => {}
        _ => return Err(ProtocolError::Truncated.into()),
    }
    decode_payload(body[0], &body[1..]).map(Some).map_err(Error::from)
}

enum ReadOutcome {
    Full,
    Partial,
    Eof,
}

fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<ReadOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Ok(if filled == 0 { ReadOutcome::Eof } else { ReadOutcome::Partial }),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(Error::exec(format!("socket read failed: {e}"))),
        }
    }
    Ok(ReadOutcome::Full)
}

/// Encoded payload bytes of one value, mirroring [`put_value`].
fn encoded_value_len(v: &Value) -> usize {
    match v {
        Value::Null => 1,
        Value::Bool(_) => 2,
        Value::Int(_) | Value::Float(_) => 9,
        Value::Str(s) => 5 + s.len(),
    }
}

/// Byte budget for one `RowBatch` payload: comfortably under
/// [`MAX_FRAME_LEN`] so the frame (kind byte included) always encodes.
pub const ROW_BATCH_BYTE_BUDGET: usize = MAX_FRAME_LEN - 1024;

/// Chunk a materialised relation into `Schema RowBatch* End` frames.
///
/// Batches split at [`ROW_BATCH_ROWS`] rows *and* at
/// [`ROW_BATCH_BYTE_BUDGET`] encoded bytes — rows carrying large
/// strings must not push a frame past [`MAX_FRAME_LEN`], which the
/// client would reject as a protocol violation. A single row too big
/// for any frame becomes an in-band [`Response::Error`] instead.
pub fn result_frames(rel: &Relation, stats: &ExecStats) -> Vec<Response> {
    let mut out = Vec::with_capacity(2 + rel.len() / ROW_BATCH_ROWS);
    out.push(Response::Schema(rel.schema().clone()));
    let mut batch: Vec<Tuple> = Vec::new();
    let mut batch_bytes = 8usize; // the nrows + ncols words
    for row in rel.rows() {
        let row_bytes: usize = row.values().iter().map(encoded_value_len).sum();
        if 8 + row_bytes > ROW_BATCH_BYTE_BUDGET {
            out.push(Response::Error {
                code: encode_error_code(&Error::exec("")),
                message: format!(
                    "result row encodes to {row_bytes} bytes, exceeding the \
                     {MAX_FRAME_LEN}-byte frame limit"
                ),
            });
            return out;
        }
        if !batch.is_empty()
            && (batch.len() == ROW_BATCH_ROWS || batch_bytes + row_bytes > ROW_BATCH_BYTE_BUDGET)
        {
            out.push(Response::RowBatch(std::mem::take(&mut batch)));
            batch_bytes = 8;
        }
        batch_bytes += row_bytes;
        batch.push(row.clone());
    }
    if !batch.is_empty() {
        out.push(Response::RowBatch(batch));
    }
    out.push(Response::End { rows: rel.len() as u64, stats: stats.clone() });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlpub_common::row;

    fn round_trip(frame: Frame) {
        let bytes = match &frame {
            Frame::Request(r) => encode_request(r),
            Frame::Response(r) => encode_response(r),
        };
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        assert_eq!(dec.next_frame().unwrap(), Some(frame));
        assert_eq!(dec.next_frame().unwrap(), None);
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn all_frame_kinds_round_trip() {
        round_trip(Frame::Request(Request::Hello { version: PROTOCOL_VERSION }));
        round_trip(Frame::Request(Request::Sql { sql: "select 1".into() }));
        round_trip(Frame::Request(Request::Prepare { name: "q1".into(), sql: "select 2".into() }));
        round_trip(Frame::Request(Request::ExecPrepared { name: "q1".into() }));
        round_trip(Frame::Request(Request::Publish {
            view: "supplier_parts".into(),
            pretty: true,
        }));
        round_trip(Frame::Request(Request::Goodbye));
        round_trip(Frame::Response(Response::Ok { version: 1, info: "hello".into() }));
        let schema = Schema::new(vec![
            Field::qualified("s", "s_suppkey", DataType::Int),
            Field::new("avgprice", DataType::Float),
            Field::new("pad", DataType::Null),
        ]);
        round_trip(Frame::Response(Response::Schema(schema)));
        round_trip(Frame::Response(Response::RowBatch(vec![
            row![1, 2.5, "a&b"],
            row![Value::Null, Value::Bool(true), Value::Float(-0.0)],
        ])));
        round_trip(Frame::Response(Response::XmlChunk(b"<a>x</a>".to_vec())));
        let stats = ExecStats { rows_scanned: 7, plan_cache_hits: 1, ..Default::default() };
        round_trip(Frame::Response(Response::End { rows: 42, stats }));
        round_trip(Frame::Response(Response::Error { code: 3, message: "boom".into() }));
        round_trip(Frame::Response(Response::Busy { message: "queue full".into() }));
        round_trip(Frame::Response(Response::Goodbye));
    }

    #[test]
    fn empty_row_batch_and_empty_chunk_round_trip() {
        round_trip(Frame::Response(Response::RowBatch(Vec::new())));
        round_trip(Frame::Response(Response::XmlChunk(Vec::new())));
    }

    #[test]
    fn zero_length_frame_is_rejected() {
        let mut dec = FrameDecoder::new();
        dec.feed(&[0, 0, 0, 0, K_GOODBYE]);
        assert_eq!(dec.next_frame(), Err(ProtocolError::ZeroLength));
    }

    #[test]
    fn oversized_frame_is_rejected_at_the_length_word() {
        let mut dec = FrameDecoder::new();
        // Claims 1 GiB; only 4 bytes ever arrive. The decoder must
        // reject at the length word, not wait for a payload.
        dec.feed(&(1u32 << 30).to_be_bytes());
        assert!(matches!(dec.next_frame(), Err(ProtocolError::Oversized { .. })));
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let mut dec = FrameDecoder::new();
        dec.feed(&frame_bytes(0x7f, &[]));
        assert_eq!(dec.next_frame(), Err(ProtocolError::UnknownKind(0x7f)));
    }

    #[test]
    fn truncated_payload_is_a_typed_error() {
        // A Sql frame whose string length runs past the payload.
        let mut p = Vec::new();
        put_u32(&mut p, 100); // string claims 100 bytes
        p.extend_from_slice(b"short");
        let bytes = frame_bytes(K_SQL, &p);
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        assert_eq!(dec.next_frame(), Err(ProtocolError::Truncated));
    }

    #[test]
    fn trailing_garbage_in_payload_is_malformed() {
        let mut p = Vec::new();
        put_u32(&mut p, PROTOCOL_VERSION);
        p.push(0xee); // one extra byte
        let bytes = frame_bytes(K_HELLO, &p);
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        assert!(matches!(dec.next_frame(), Err(ProtocolError::Malformed(_))));
    }

    #[test]
    fn byte_at_a_time_feeding_decodes_identically() {
        let frames = [
            encode_request(&Request::Sql { sql: "select count(*) from part".into() }),
            encode_response(&Response::Busy { message: "full".into() }),
        ]
        .concat();
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in frames {
            dec.feed(&[b]);
            while let Some(f) = dec.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got.len(), 2);
        assert!(matches!(got[0], Frame::Request(Request::Sql { .. })));
        assert!(matches!(got[1], Frame::Response(Response::Busy { .. })));
    }

    #[test]
    fn read_frame_reports_clean_eof_and_truncation() {
        let bytes = encode_request(&Request::Goodbye);
        let mut full = std::io::Cursor::new(bytes.clone());
        assert!(matches!(read_frame(&mut full).unwrap(), Some(Frame::Request(Request::Goodbye))));
        assert!(read_frame(&mut full).unwrap().is_none()); // clean EOF
        for cut in 1..bytes.len() {
            let mut partial = std::io::Cursor::new(bytes[..cut].to_vec());
            let err = read_frame(&mut partial).unwrap_err();
            assert!(err.to_string().contains("truncated"), "cut={cut}: {err}");
        }
    }

    #[test]
    fn row_batch_counts_are_bounded_by_payload_bytes() {
        // nrows = u32::MAX with ncols = 0: nothing in the payload bounds
        // the row count, so the decoder must refuse before reserving.
        let mut p = Vec::new();
        put_u32(&mut p, u32::MAX);
        put_u32(&mut p, 0);
        let mut dec = FrameDecoder::new();
        dec.feed(&frame_bytes(K_ROW_BATCH, &p));
        assert!(matches!(dec.next_frame(), Err(ProtocolError::Malformed(_))));

        // A huge claimed shape with a tiny payload is likewise rejected
        // at the counts, not trusted into Vec::with_capacity.
        let mut p = Vec::new();
        put_u32(&mut p, u32::MAX);
        put_u32(&mut p, 2);
        p.push(V_NULL);
        let mut dec = FrameDecoder::new();
        dec.feed(&frame_bytes(K_ROW_BATCH, &p));
        assert!(matches!(dec.next_frame(), Err(ProtocolError::Malformed(_))));
    }

    #[test]
    fn result_frames_split_batches_by_encoded_bytes() {
        // 5 rows of ~6 MiB each: a 1024-row batch would encode to ~30
        // MiB, far past MAX_FRAME_LEN. Byte-aware chunking must keep
        // every emitted frame within the wire limit.
        let schema = Schema::new(vec![Field::new("s", DataType::Str)]);
        let big = "x".repeat(6 * 1024 * 1024);
        let rows: Vec<_> = (0..5).map(|_| row![big.clone()]).collect();
        let rel = Relation::new(schema, rows).unwrap();
        let frames = result_frames(&rel, &ExecStats::default());
        let batches = frames.iter().filter(|f| matches!(f, Response::RowBatch(_))).count();
        assert!(batches >= 3, "expected byte-split batches, got {batches}");
        let mut rows_seen = 0;
        for f in &frames {
            if let Response::RowBatch(rows) = f {
                rows_seen += rows.len();
            }
            assert!(encode_response(f).len() <= 4 + MAX_FRAME_LEN, "oversized frame on the wire");
        }
        assert_eq!(rows_seen, 5);
        assert!(matches!(frames.last(), Some(Response::End { rows: 5, .. })));
    }

    #[test]
    fn result_frames_answer_unframeable_row_with_error() {
        // A single row bigger than any frame cannot be shipped; the
        // response must degrade to an in-band Error, not an oversized
        // frame the client would treat as a protocol violation.
        let schema = Schema::new(vec![Field::new("s", DataType::Str)]);
        let rel = Relation::new(schema, vec![row!["x".repeat(MAX_FRAME_LEN)]]).unwrap();
        let frames = result_frames(&rel, &ExecStats::default());
        assert!(matches!(frames.last(), Some(Response::Error { .. })));
        for f in &frames {
            assert!(encode_response(f).len() <= 4 + MAX_FRAME_LEN);
        }
    }

    #[test]
    fn result_frames_chunk_large_relations() {
        let schema = Schema::new(vec![Field::new("n", DataType::Int)]);
        let rows: Vec<_> = (0..2500i64).map(|i| row![i]).collect();
        let rel = Relation::new(schema, rows).unwrap();
        let frames = result_frames(&rel, &ExecStats::default());
        // Schema + ceil(2500/1024)=3 batches + End.
        assert_eq!(frames.len(), 5);
        assert!(matches!(frames[0], Response::Schema(_)));
        assert!(matches!(frames.last(), Some(Response::End { rows: 2500, .. })));
    }
}
