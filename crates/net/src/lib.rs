//! xmlpub-net: the publishing service on the wire.
//!
//! Everything below `crates/server` is a library: a [`Server`] owns the
//! shared database, plan cache and bounded worker pool, and in-process
//! [`Session`]s drive it. This crate is the missing network face — the
//! paper's middleware (§2) is a *server* clients talk to, not a crate
//! they link:
//!
//! - [`frame`] — the length-prefixed wire protocol: request frames
//!   (SQL, prepared-exec, publish, control), response frames (schema +
//!   row batches, streamed XML chunks, end-of-stream with `ExecStats`,
//!   typed errors, BUSY), and a panic-free incremental decoder.
//! - [`server`] — [`NetServer`]: a TCP acceptor over `std::net` plus a
//!   reader/writer thread pair per connection. Requests pipeline per
//!   connection, execution stays on the shared bounded `WorkerPool`
//!   (admission-control sheds surface as BUSY frames), published XML
//!   streams from the tagger straight onto the socket, and
//!   [`NetServer::drain`] shuts down gracefully: stop accepting, finish
//!   in-flight work, GOODBYE + FIN, bounded by a deadline.
//! - [`client`] — [`NetClient`]: a small blocking client used by the
//!   CLI's `--connect` mode, the load harness, and the differential
//!   tests that pin socket output byte-identical to in-process results.
//! - [`netload`] — the open-loop socket load harness: multi-threaded
//!   clients issuing Figure 8 requests at a *fixed arrival rate*
//!   (arrivals don't slow down when the server does, unlike the
//!   closed-loop in-process harness), reporting p50/p95/p99 service
//!   times with BUSY retries and backoff accounted separately.
//!
//! Net-layer traffic is observable as `server.net.*` counters in the
//! server's own metrics registry, so `\metrics` and the text exposition
//! include them with no extra plumbing.

pub mod client;
pub mod frame;
pub mod netload;
pub mod server;

pub use client::{NetClient, Reply, RetryStats};
pub use frame::{
    encode_request, encode_response, Frame, FrameDecoder, ProtocolError, Request, Response,
    MAX_FRAME_LEN, PROTOCOL_VERSION,
};
pub use netload::{run_fig8_socket_load, NetLoadOptions, NetLoadReport};
pub use server::{resolve_view, DrainReport, NetConfig, NetServer};

#[cfg(doc)]
use xmlpub_server::{Server, Session};
