//! The TCP face of the service: acceptor, per-connection threads,
//! pipelining, BUSY surfacing, and graceful drain.
//!
//! ## Threading model
//!
//! One acceptor thread polls the listener (non-blocking with a short
//! sleep, so drain never waits on `accept`). Each accepted connection
//! gets *two* threads:
//!
//! - a **reader** that pulls bytes off the socket, runs them through the
//!   incremental [`FrameDecoder`], and forwards decoded requests into a
//!   bounded channel — this is what makes requests *pipeline*: a client
//!   may write many frames back-to-back and the reader decodes ahead
//!   while earlier requests execute. When the channel (depth
//!   [`NetConfig::max_pipeline`]) is full the reader blocks, which
//!   stops reading the socket, which backpressures the client through
//!   TCP flow control.
//! - a **writer/executor** that owns the connection's [`Session`],
//!   takes requests off the channel *in order*, executes each on the
//!   shared worker pool, and writes the response frames. Responses
//!   therefore come back in request order — the protocol has no request
//!   ids and needs none.
//!
//! Execution itself never runs on connection threads: sessions submit
//! to the server's bounded `WorkerPool` exactly as in-process sessions
//! do, so the admission-control story (queue depth, shedding) is shared
//! between transport and library users. A shed surfaces to the client
//! as a [`Response::Busy`] frame rather than an error: nothing was
//! executed, and the client may retry.
//!
//! Published XML does not round-trip through a buffer: the pool worker
//! streams tagger output into an [`XmlChunkWriter`] that frames bytes
//! straight onto the socket ([`Session::publish_to`]). This is safe
//! because the writer thread blocks inside `publish_to` for the
//! duration — there is never a second writer to interleave with.
//!
//! ## Drain sequence
//!
//! [`NetServer::drain`] flips the draining flag, at which point:
//! 1. the acceptor exits and drops the listener — new connections are
//!    refused by the OS from here on;
//! 2. each reader notices the flag at its next read-timeout tick
//!    (≤50ms), stops reading *new* requests and hangs up its channel;
//! 3. each writer finishes every request already in the channel, sends
//!    a [`Response::Goodbye`] frame, and closes the socket (FIN);
//! 4. `drain` waits for active connections to reach zero, bounded by
//!    the deadline — past it, remaining sockets are shut down hard and
//!    the report counts them as aborted.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use xmlpub::Database;
use xmlpub_common::{Error, Result};
use xmlpub_obs::{Counter, MetricsHandle};
use xmlpub_server::{Server, Session, SHED_MSG};
use xmlpub_xml::view::XmlView;
use xmlpub_xml::{customer_orders_view, supplier_parts_view};

use crate::frame::{
    encode_error_code, encode_response, result_frames, Frame, FrameDecoder, ProtocolError, Request,
    Response, PROTOCOL_VERSION, XML_CHUNK_BYTES,
};

/// How the acceptor polls for connections and the drain flag.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Read timeout on connection sockets: the latency bound on a reader
/// noticing the drain flag.
const READ_POLL: Duration = Duration::from_millis(50);

/// Network-layer configuration (the execution side is all
/// [`xmlpub_server::ServerConfig`]).
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`NetServer::local_addr`]).
    pub addr: String,
    /// Per-connection pipeline depth: how many decoded requests may wait
    /// behind the one executing before the reader stops pulling bytes
    /// off the socket.
    pub max_pipeline: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig { addr: "127.0.0.1:0".to_string(), max_pipeline: 32 }
    }
}

/// What [`NetServer::drain`] observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainReport {
    /// Every connection finished its in-flight work and said goodbye
    /// within the deadline.
    pub drained: bool,
    /// Connections forcibly shut down at the deadline.
    pub aborted: usize,
}

/// Resolve a published view by its wire name. The registry is
/// deliberately closed — the protocol names views, it does not ship
/// view definitions.
pub fn resolve_view(db: &Database, name: &str) -> Result<XmlView> {
    match name {
        "supplier_parts" => supplier_parts_view(db.catalog()),
        "customer_orders" => customer_orders_view(db.catalog()),
        other => Err(Error::Catalog(format!(
            "unknown view {other:?} (known: supplier_parts, customer_orders)"
        ))),
    }
}

/// Hot-path counters resolved once per connection (name lookups happen
/// at connect time, not per frame). All no-ops when metrics are
/// disabled.
#[derive(Clone, Default)]
struct NetCounters {
    bytes_in: Option<Arc<Counter>>,
    bytes_out: Option<Arc<Counter>>,
    frames_in: Option<Arc<Counter>>,
    frames_out: Option<Arc<Counter>>,
    requests: Option<Arc<Counter>>,
    busy: Option<Arc<Counter>>,
    malformed: Option<Arc<Counter>>,
}

impl NetCounters {
    fn resolve(metrics: &MetricsHandle) -> Self {
        NetCounters {
            bytes_in: metrics.counter("server.net.bytes_in"),
            bytes_out: metrics.counter("server.net.bytes_out"),
            frames_in: metrics.counter("server.net.frames_in"),
            frames_out: metrics.counter("server.net.frames_out"),
            requests: metrics.counter("server.net.requests"),
            busy: metrics.counter("server.net.busy"),
            malformed: metrics.counter("server.net.malformed"),
        }
    }
}

fn bump(c: &Option<Arc<Counter>>, n: u64) {
    if let Some(c) = c {
        c.add(n);
    }
}

struct NetShared {
    server: Arc<Server>,
    draining: AtomicBool,
    /// Connections accepted but not yet finished (their connection
    /// thread still runs).
    active: AtomicUsize,
    next_conn: AtomicU64,
    /// Stream clones for the hard-abort path at the drain deadline.
    conns: Mutex<HashMap<u64, TcpStream>>,
    max_pipeline: usize,
    counters: NetCounters,
}

impl NetShared {
    fn metrics(&self) -> &MetricsHandle {
        self.server.metrics()
    }
}

/// A running TCP listener over a [`Server`].
pub struct NetServer {
    shared: Arc<NetShared>,
    acceptor: Option<JoinHandle<()>>,
    addr: SocketAddr,
}

impl NetServer {
    /// Bind and start accepting. The execution side (pool, cache,
    /// metrics) is the `server`'s; this only adds the transport.
    pub fn start(server: Arc<Server>, config: NetConfig) -> Result<NetServer> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| Error::exec(format!("bind {}: {e}", config.addr)))?;
        let addr = listener.local_addr().map_err(|e| Error::exec(format!("local_addr: {e}")))?;
        listener.set_nonblocking(true).map_err(|e| Error::exec(format!("set_nonblocking: {e}")))?;
        let counters = NetCounters::resolve(server.metrics());
        let shared = Arc::new(NetShared {
            server,
            draining: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            next_conn: AtomicU64::new(0),
            conns: Mutex::new(HashMap::new()),
            max_pipeline: config.max_pipeline.max(1),
            counters,
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("net-acceptor".to_string())
                .spawn(move || accept_loop(shared, listener))
                .map_err(|e| Error::exec(format!("spawn acceptor: {e}")))?
        };
        Ok(NetServer { shared, acceptor: Some(acceptor), addr })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::Acquire)
    }

    /// Whether drain has started.
    pub fn draining(&self) -> bool {
        self.shared.draining.load(Ordering::Acquire)
    }

    /// Graceful shutdown, bounded by `deadline`: stop accepting, let
    /// in-flight requests finish and their responses flush, send
    /// GOODBYE on every connection, then close. Connections still busy
    /// at the deadline are shut down hard and counted as aborted.
    pub fn drain(mut self, deadline: Duration) -> DrainReport {
        self.drain_inner(deadline)
    }

    fn drain_inner(&mut self, deadline: Duration) -> DrainReport {
        self.shared.draining.store(true, Ordering::Release);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        let start = Instant::now();
        while self.shared.active.load(Ordering::Acquire) > 0 && start.elapsed() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let mut aborted = 0;
        if self.shared.active.load(Ordering::Acquire) > 0 {
            // Deadline passed: kick the stragglers off the socket. Their
            // connection threads unblock (reads/writes fail) and exit.
            let conns = self.shared.conns.lock().unwrap();
            aborted = conns.len();
            for stream in conns.values() {
                let _ = stream.shutdown(Shutdown::Both);
            }
            drop(conns);
            // Bounded grace for the aborted threads to unwind — they are
            // off the socket already, this only tidies the counters.
            let grace = Instant::now();
            while self.shared.active.load(Ordering::Acquire) > 0
                && grace.elapsed() < Duration::from_secs(2)
            {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        let drained = aborted == 0 && self.shared.active.load(Ordering::Acquire) == 0;
        self.shared.metrics().add("server.net.drains", 1);
        DrainReport { drained, aborted }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            // Not explicitly drained: shut down with a short deadline so
            // tests and the CLI never leak the acceptor.
            self.drain_inner(Duration::from_secs(1));
        }
    }
}

fn accept_loop(shared: Arc<NetShared>, listener: TcpListener) {
    while !shared.draining.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
                shared.active.fetch_add(1, Ordering::AcqRel);
                shared.metrics().add("server.net.connections.opened", 1);
                shared.metrics().gauge_add("server.net.connections.active", 1);
                if let Ok(clone) = stream.try_clone() {
                    shared.conns.lock().unwrap().insert(id, clone);
                }
                let conn_shared = Arc::clone(&shared);
                let spawned =
                    std::thread::Builder::new().name(format!("net-conn-{id}")).spawn(move || {
                        run_connection(&conn_shared, stream, id);
                        finish_connection(&conn_shared, id);
                    });
                if spawned.is_err() {
                    finish_connection(&shared, id);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    // Dropping the listener here closes the socket: refused connections
    // during drain come from the OS, not from a thread we keep around.
}

fn finish_connection(shared: &NetShared, id: u64) {
    shared.conns.lock().unwrap().remove(&id);
    shared.metrics().add("server.net.connections.closed", 1);
    shared.metrics().gauge_add("server.net.connections.active", -1);
    shared.active.fetch_sub(1, Ordering::AcqRel);
}

/// One message from reader to writer: a decoded request, or the typed
/// protocol error that ended the stream.
type Inbound = std::result::Result<Request, ProtocolError>;

fn run_connection(shared: &Arc<NetShared>, mut stream: TcpStream, id: u64) {
    let _ = stream.set_nodelay(true);
    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (tx, rx) = mpsc::sync_channel::<Inbound>(shared.max_pipeline);
    let done = Arc::new(AtomicBool::new(false));
    let reader = {
        let shared = Arc::clone(shared);
        let done = Arc::clone(&done);
        std::thread::Builder::new()
            .name(format!("net-read-{id}"))
            .spawn(move || reader_loop(reader_stream, tx, shared, done))
    };
    let reader = match reader {
        Ok(h) => h,
        Err(_) => return,
    };
    writer_loop(shared, &mut stream, rx);
    // Writer is finished (goodbye sent or error): stop the reader and
    // close our half.
    done.store(true, Ordering::Release);
    let _ = stream.shutdown(Shutdown::Both);
    let _ = reader.join();
}

fn reader_loop(
    mut stream: TcpStream,
    tx: SyncSender<Inbound>,
    shared: Arc<NetShared>,
    done: Arc<AtomicBool>,
) {
    let counters = shared.counters.clone();
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut dec = FrameDecoder::new();
    let mut buf = [0u8; 64 * 1024];
    loop {
        if done.load(Ordering::Acquire) || shared.draining.load(Ordering::Acquire) {
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => {
                if dec.pending() > 0 {
                    // EOF mid-frame: the client vanished partway through
                    // a request.
                    bump(&counters.malformed, 1);
                    let _ = tx.send(Err(ProtocolError::Truncated));
                }
                return;
            }
            Ok(n) => {
                bump(&counters.bytes_in, n as u64);
                dec.feed(&buf[..n]);
                loop {
                    match dec.next_frame() {
                        Ok(Some(Frame::Request(req))) => {
                            bump(&counters.frames_in, 1);
                            let is_goodbye = matches!(req, Request::Goodbye);
                            if tx.send(Ok(req)).is_err() {
                                return; // writer gone
                            }
                            if is_goodbye {
                                return; // nothing follows a goodbye
                            }
                        }
                        Ok(Some(Frame::Response(_))) => {
                            bump(&counters.malformed, 1);
                            let _ = tx.send(Err(ProtocolError::Malformed(
                                "response frame from client".to_string(),
                            )));
                            return;
                        }
                        Ok(None) => break,
                        Err(e) => {
                            // Decoder errors are terminal: framing is lost.
                            bump(&counters.malformed, 1);
                            let _ = tx.send(Err(e));
                            return;
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                continue;
            }
            Err(_) => return,
        }
    }
}

fn send(stream: &mut TcpStream, counters: &NetCounters, resp: &Response) -> std::io::Result<()> {
    let bytes = encode_response(resp);
    stream.write_all(&bytes)?;
    bump(&counters.bytes_out, bytes.len() as u64);
    bump(&counters.frames_out, 1);
    Ok(())
}

fn writer_loop(shared: &NetShared, stream: &mut TcpStream, rx: Receiver<Inbound>) {
    let mut session = shared.server.session();
    let counters = &shared.counters;
    // rx.iter() ends when the reader hangs up: client EOF, goodbye, a
    // protocol error, or drain. Whatever was already decoded still gets
    // executed and answered — that is the "finish in-flight" half of the
    // drain contract.
    for inbound in rx.iter() {
        match inbound {
            Ok(req) => {
                bump(&counters.requests, 1);
                let goodbye = matches!(req, Request::Goodbye);
                if handle_request(shared, &mut session, stream, req).is_err() {
                    return; // client unreachable; nothing left to say
                }
                if goodbye {
                    return; // handle_request sent the goodbye frame
                }
            }
            Err(proto) => {
                // Answer the protocol error so the client knows why the
                // connection is going away, then stop: framing is lost.
                let _ = send(
                    stream,
                    counters,
                    &Response::Error { code: 3, message: format!("protocol: {proto}") },
                );
                return;
            }
        }
    }
    // Channel closed without a client goodbye — drain or client EOF.
    // Say goodbye either way; on a dead socket the write just fails.
    let _ = send(stream, counters, &Response::Goodbye);
}

/// Execute one request and write its response frames. `Err` means the
/// *socket* failed (responses unsendable) — request-level failures are
/// answered in-band and return `Ok`.
fn handle_request(
    shared: &NetShared,
    session: &mut Session,
    stream: &mut TcpStream,
    req: Request,
) -> std::io::Result<()> {
    let counters = &shared.counters;
    match req {
        Request::Hello { version } => {
            if version != PROTOCOL_VERSION {
                send(
                    stream,
                    counters,
                    &Response::Error {
                        code: 6,
                        message: format!(
                            "protocol version {version} unsupported (server speaks {PROTOCOL_VERSION})"
                        ),
                    },
                )
            } else {
                send(
                    stream,
                    counters,
                    &Response::Ok {
                        version: PROTOCOL_VERSION,
                        info: "xmlpub publishing service".to_string(),
                    },
                )
            }
        }
        Request::Sql { sql } => answer_rows(stream, counters, session.execute(&sql)),
        Request::Prepare { name, sql } => match session.prepare(&name, &sql) {
            Ok(hit) => send(
                stream,
                counters,
                &Response::Ok {
                    version: PROTOCOL_VERSION,
                    info: if hit { "hit".to_string() } else { "miss".to_string() },
                },
            ),
            Err(e) => answer_error(stream, counters, &e),
        },
        Request::ExecPrepared { name } => {
            answer_rows(stream, counters, session.execute_prepared(&name))
        }
        Request::Publish { view, pretty } => {
            let resolved = resolve_view(session.database(), &view);
            let view = match resolved {
                Ok(v) => v,
                Err(e) => return answer_error(stream, counters, &e),
            };
            let sink = match stream.try_clone() {
                Ok(clone) => XmlChunkWriter::new(clone, counters.clone()),
                Err(e) => return Err(e),
            };
            // The pool worker writes XmlChunk frames straight to the
            // socket while we block here; we append the final partial
            // chunk and the End frame after it returns, so frame order
            // is total.
            match session.publish_to(&view, pretty, sink) {
                Ok((sink, rows, stats)) => {
                    sink.finish()?;
                    send(stream, counters, &Response::End { rows, stats })
                }
                Err(e) => answer_error(stream, counters, &e),
            }
        }
        Request::Goodbye => send(stream, counters, &Response::Goodbye),
    }
}

fn answer_rows(
    stream: &mut TcpStream,
    counters: &NetCounters,
    result: Result<(xmlpub_common::Relation, xmlpub_engine::ExecStats)>,
) -> std::io::Result<()> {
    match result {
        Ok((rel, stats)) => {
            for frame in result_frames(&rel, &stats) {
                send(stream, counters, &frame)?;
            }
            Ok(())
        }
        Err(e) => answer_error(stream, counters, &e),
    }
}

/// Answer a request-level failure: sheds become BUSY (retryable,
/// nothing executed), everything else a typed error frame.
fn answer_error(stream: &mut TcpStream, counters: &NetCounters, e: &Error) -> std::io::Result<()> {
    let is_shed = matches!(e, Error::Execution(msg) if msg.contains(SHED_MSG));
    if is_shed {
        bump(&counters.busy, 1);
        send(stream, counters, &Response::Busy { message: e.to_string() })
    } else {
        send(
            stream,
            counters,
            &Response::Error { code: encode_error_code(e), message: e.to_string() },
        )
    }
}

/// An `io::Write` sink that frames tagger output into `XmlChunk`
/// frames on a socket, buffered to [`XML_CHUNK_BYTES`] so tiny tagger
/// writes don't become tiny frames.
struct XmlChunkWriter {
    stream: TcpStream,
    buf: Vec<u8>,
    counters: NetCounters,
}

impl XmlChunkWriter {
    fn new(stream: TcpStream, counters: NetCounters) -> Self {
        XmlChunkWriter { stream, buf: Vec::with_capacity(XML_CHUNK_BYTES), counters }
    }

    fn flush_chunk(&mut self) -> std::io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let chunk = std::mem::take(&mut self.buf);
        let bytes = encode_response(&Response::XmlChunk(chunk));
        self.stream.write_all(&bytes)?;
        bump(&self.counters.bytes_out, bytes.len() as u64);
        bump(&self.counters.frames_out, 1);
        Ok(())
    }

    /// Flush the final partial chunk; called by the connection writer
    /// after `publish_to` hands the sink back.
    fn finish(mut self) -> std::io::Result<()> {
        self.flush_chunk()
    }
}

impl Write for XmlChunkWriter {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.buf.extend_from_slice(data);
        if self.buf.len() >= XML_CHUNK_BYTES {
            self.flush_chunk()?;
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.flush_chunk()
    }
}
