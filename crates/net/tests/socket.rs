//! End-to-end tests over real localhost sockets: differential pinning
//! against the in-process path, pipelining, BUSY semantics, protocol
//! errors, and the graceful-drain contract.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use xmlpub::Database;
use xmlpub_net::{
    encode_request, resolve_view, Frame, NetClient, NetConfig, NetServer, Request, Response,
    RetryStats,
};
use xmlpub_server::{Server, ServerConfig, SHED_MSG};
use xmlpub_xml::workloads::figure8_workloads;

const SCALE: f64 = 0.001;

fn start(config: ServerConfig, net: NetConfig) -> (Arc<Server>, NetServer) {
    let server = Arc::new(Server::new(Database::tpch(SCALE).unwrap(), config));
    let net = NetServer::start(Arc::clone(&server), net).unwrap();
    (server, net)
}

fn default_start() -> (Arc<Server>, NetServer) {
    start(
        ServerConfig { workers: 2, queue_depth: 32, ..ServerConfig::default() },
        NetConfig::default(),
    )
}

#[test]
fn sql_over_socket_matches_direct_database() {
    let (server, net) = default_start();
    let mut client = NetClient::connect(net.local_addr()).unwrap();
    for w in figure8_workloads() {
        let direct = server.database().sql(&w.gapply_sql).unwrap();
        let (rel, stats) = client.sql(&w.gapply_sql).unwrap().expect_done().unwrap();
        assert_eq!(rel, direct, "{} diverged over the wire", w.name);
        assert_eq!(stats.plan_cache_hits + stats.plan_cache_misses, 1, "{}", w.name);
    }
    client.goodbye().unwrap();
    let report = net.drain(Duration::from_secs(10));
    assert!(report.drained, "{report:?}");
}

#[test]
fn prepared_statements_over_socket() {
    let (server, net) = default_start();
    let mut client = NetClient::connect(net.local_addr()).unwrap();
    let w = &figure8_workloads()[0];
    assert!(!client.prepare(w.name, &w.gapply_sql).unwrap().expect_done().unwrap());
    let direct = server.database().sql(&w.gapply_sql).unwrap();
    for _ in 0..3 {
        let (rel, stats) = client.exec_prepared(w.name).unwrap().expect_done().unwrap();
        assert_eq!(rel, direct);
        assert_eq!(stats.plan_cache_hits, 1);
    }
    // Unknown prepared name: typed error frame, connection stays usable.
    let err = client.exec_prepared("nope").unwrap_err();
    assert!(err.to_string().contains("nope"), "{err}");
    let (rel, _) = client.exec_prepared(w.name).unwrap().expect_done().unwrap();
    assert_eq!(rel, direct);
    client.goodbye().unwrap();
}

#[test]
fn publish_streams_byte_identical_xml() {
    let (server, net) = default_start();
    let session = server.session();
    let view = resolve_view(server.database(), "supplier_parts").unwrap();
    let mut client = NetClient::connect(net.local_addr()).unwrap();
    for pretty in [false, true] {
        let expected = session.publish(&view, pretty).unwrap();
        let (xml, rows, stats) =
            client.publish("supplier_parts", pretty).unwrap().expect_done().unwrap();
        assert_eq!(xml, expected, "streamed XML diverged (pretty={pretty})");
        assert!(rows > 0);
        // The End frame carries the request's real engine counters, not
        // zeroed defaults: a publish scans rows and resolves its plan
        // through the shared cache.
        assert!(stats.rows_scanned > 0, "publish End frame lost engine counters: {stats:?}");
        assert_eq!(stats.plan_cache_hits + stats.plan_cache_misses, 1, "{stats:?}");
    }
    // Unknown views answer a catalog error in-band.
    let err = client.publish("no_such_view", false).unwrap_err();
    assert!(err.to_string().contains("no_such_view"), "{err}");
    client.goodbye().unwrap();
}

#[test]
fn bad_sql_gets_typed_error_and_connection_survives() {
    let (_server, net) = default_start();
    let mut client = NetClient::connect(net.local_addr()).unwrap();
    let err = client.sql("select from from").unwrap_err();
    let msg = err.to_string();
    assert!(!msg.is_empty());
    // Still usable afterwards: request-level failures don't kill the
    // connection.
    let (rel, _) = client.sql("select count(*) from part").unwrap().expect_done().unwrap();
    assert_eq!(rel.len(), 1);
    client.goodbye().unwrap();
}

#[test]
fn pipelined_requests_answer_in_order() {
    let (server, net) = default_start();
    let direct = server.database().sql("select count(*) from part").unwrap();
    // Raw frames: handshake plus five SQL requests written back-to-back
    // before reading anything, then a goodbye.
    let mut stream = TcpStream::connect(net.local_addr()).unwrap();
    let mut burst = Vec::new();
    burst.extend_from_slice(&encode_request(&Request::Hello { version: 1 }));
    for _ in 0..5 {
        burst.extend_from_slice(&encode_request(&Request::Sql {
            sql: "select count(*) from part".to_string(),
        }));
    }
    burst.extend_from_slice(&encode_request(&Request::Goodbye));
    stream.write_all(&burst).unwrap();

    let mut responses = Vec::new();
    while let Some(frame) = xmlpub_net::frame::read_frame(&mut stream).unwrap() {
        match frame {
            Frame::Response(r) => responses.push(r),
            Frame::Request(_) => panic!("server sent a request frame"),
        }
    }
    // Ok, then 5 x (Schema RowBatch End), then Goodbye — strictly in
    // request order.
    assert!(matches!(responses.first(), Some(Response::Ok { .. })), "{responses:?}");
    assert!(matches!(responses.last(), Some(Response::Goodbye)), "{responses:?}");
    let mut i = 1;
    for _ in 0..5 {
        assert!(matches!(&responses[i], Response::Schema(s) if s.len() == 1), "{responses:?}");
        let Response::RowBatch(rows) = &responses[i + 1] else {
            panic!("expected RowBatch at {}: {responses:?}", i + 1);
        };
        assert_eq!(rows[0], direct.rows()[0]);
        assert!(matches!(&responses[i + 2], Response::End { rows: 1, .. }), "{responses:?}");
        i += 3;
    }
    assert_eq!(i, responses.len() - 1, "unexpected extra frames: {responses:?}");
}

/// The satellite's concurrent differential: 8 socket clients publishing
/// and querying at once, every answer byte-identical to the in-process
/// path.
#[test]
fn eight_concurrent_socket_clients_stay_byte_identical() {
    let (server, net) = start(
        ServerConfig { workers: 2, queue_depth: 64, ..ServerConfig::default() },
        NetConfig::default(),
    );
    let view = resolve_view(server.database(), "supplier_parts").unwrap();
    let expected_xml = server.session().publish(&view, false).unwrap();
    let q = &figure8_workloads()[1];
    let expected_rel = server.database().sql(&q.gapply_sql).unwrap();
    let addr = net.local_addr();
    std::thread::scope(|s| {
        for t in 0..8 {
            let expected_xml = &expected_xml;
            let expected_rel = &expected_rel;
            let sql = &q.gapply_sql;
            s.spawn(move || {
                let mut client = NetClient::connect(addr).unwrap();
                let mut retries = RetryStats::default();
                for i in 0..4 {
                    if (t + i) % 2 == 0 {
                        let (xml, _, _) = client
                            .retry_busy(&mut retries, |c| c.publish("supplier_parts", false))
                            .unwrap();
                        assert_eq!(&xml, expected_xml, "client {t} iter {i}: XML diverged");
                    } else {
                        let (rel, _) = client.retry_busy(&mut retries, |c| c.sql(sql)).unwrap();
                        assert_eq!(&rel, expected_rel, "client {t} iter {i}: rows diverged");
                    }
                }
                client.goodbye().unwrap();
            });
        }
    });
    let report = net.drain(Duration::from_secs(10));
    assert!(report.drained && report.aborted == 0, "{report:?}");
}

/// Admission-control sheds surface as BUSY frames: nothing executed,
/// the connection lives, retries eventually succeed.
#[test]
fn sheds_surface_as_busy_frames_and_are_retryable() {
    let (server, net) = start(
        ServerConfig { workers: 1, queue_depth: 1, ..ServerConfig::default() },
        NetConfig::default(),
    );
    let q = &figure8_workloads()[3]; // the heaviest workload
    let expected = server.database().sql(&q.gapply_sql).unwrap();
    let addr = net.local_addr();
    let mut total = RetryStats::default();
    let outcomes: Vec<RetryStats> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let sql = &q.gapply_sql;
                let expected = &expected;
                s.spawn(move || {
                    let mut client = NetClient::connect(addr).unwrap();
                    let mut retries = RetryStats::default();
                    for _ in 0..3 {
                        let (rel, _) = client.retry_busy(&mut retries, |c| c.sql(sql)).unwrap();
                        assert_eq!(&rel, expected);
                    }
                    client.goodbye().unwrap();
                    retries
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for r in &outcomes {
        total.merge(r);
    }
    // Whether sheds happened is load-dependent (fine either way), but
    // the accounting invariant is not: backoff time only exists when
    // retries do, and the busy counter matches the metrics registry.
    if total.busy_retries == 0 {
        assert_eq!(total.backoff, Duration::ZERO);
    }
    let snap = server.metrics().snapshot().unwrap();
    assert_eq!(snap.counter("server.net.busy").unwrap_or(0), total.busy_retries);
    net.drain(Duration::from_secs(10));
}

/// The drain contract: the in-flight publish completes and its XML
/// arrives intact, the draining server says GOODBYE, and new
/// connections are refused afterwards.
#[test]
fn graceful_drain_finishes_in_flight_work_and_refuses_new_connections() {
    let (server, net) = default_start();
    let addr = net.local_addr();
    let view = resolve_view(server.database(), "supplier_parts").unwrap();
    let expected = server.session().publish(&view, true).unwrap();

    // Raw connection: handshake, then a publish left un-read so it is
    // in flight when the drain starts.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(&encode_request(&Request::Hello { version: 1 })).unwrap();
    match xmlpub_net::frame::read_frame(&mut stream).unwrap() {
        Some(Frame::Response(Response::Ok { .. })) => {}
        other => panic!("handshake failed: {other:?}"),
    }
    stream
        .write_all(&encode_request(&Request::Publish {
            view: "supplier_parts".to_string(),
            pretty: true,
        }))
        .unwrap();
    // Wait until the server has *dequeued* the request (the net.requests
    // counter bumps when the writer picks it up), so the drain below
    // provably races with an in-flight request, not an unread socket.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let requests =
            server.metrics().snapshot().unwrap().counter("server.net.requests").unwrap_or(0);
        if requests >= 2 {
            break;
        }
        assert!(Instant::now() < deadline, "server never dequeued the publish");
        std::thread::sleep(Duration::from_millis(1));
    }

    let drainer = std::thread::spawn(move || net.drain(Duration::from_secs(30)));

    // The in-flight response arrives intact: chunks, End, then the
    // server's GOODBYE, then EOF.
    let mut xml = Vec::new();
    let mut ended = false;
    let mut goodbye = false;
    while let Some(frame) = xmlpub_net::frame::read_frame(&mut stream).unwrap() {
        match frame {
            Frame::Response(Response::XmlChunk(mut bytes)) => xml.append(&mut bytes),
            Frame::Response(Response::End { rows, .. }) => {
                assert!(rows > 0);
                ended = true;
            }
            Frame::Response(Response::Goodbye) => goodbye = true,
            other => panic!("unexpected frame during drain: {other:?}"),
        }
    }
    assert!(ended, "publish response never completed");
    assert!(goodbye, "server closed without saying goodbye");
    assert_eq!(String::from_utf8(xml).unwrap(), expected, "drained XML is not intact");

    let report = drainer.join().unwrap();
    assert!(report.drained && report.aborted == 0, "{report:?}");

    // The listener is gone: new connections are refused.
    let refused = TcpStream::connect_timeout(&addr, Duration::from_millis(500));
    assert!(refused.is_err(), "post-drain connect should fail");

    // The net layer accounted for the connection lifecycle.
    let snap = server.metrics().snapshot().unwrap();
    assert_eq!(snap.counter("server.net.connections.opened"), Some(1));
    assert_eq!(snap.counter("server.net.connections.closed"), Some(1));
    assert_eq!(snap.gauge("server.net.connections.active"), Some(0));
    assert_eq!(snap.counter("server.net.drains"), Some(1));
}

/// Draining with idle connections: they get a GOODBYE too, promptly.
#[test]
fn idle_connections_drain_promptly() {
    let (_server, net) = default_start();
    let addr = net.local_addr();
    let mut idle = TcpStream::connect(addr).unwrap();
    idle.write_all(&encode_request(&Request::Hello { version: 1 })).unwrap();
    match xmlpub_net::frame::read_frame(&mut idle).unwrap() {
        Some(Frame::Response(Response::Ok { .. })) => {}
        other => panic!("handshake failed: {other:?}"),
    }
    let start = Instant::now();
    let report = net.drain(Duration::from_secs(10));
    assert!(report.drained, "{report:?}");
    assert!(start.elapsed() < Duration::from_secs(5), "idle drain too slow");
    let mut saw_goodbye = false;
    while let Some(frame) = xmlpub_net::frame::read_frame(&mut idle).unwrap() {
        if matches!(frame, Frame::Response(Response::Goodbye)) {
            saw_goodbye = true;
        }
    }
    assert!(saw_goodbye, "idle connection closed without goodbye");
}

/// Malformed traffic: a zero-length frame gets a protocol error frame
/// and bumps the malformed counter; the process survives.
#[test]
fn malformed_frames_are_answered_and_counted() {
    let (server, net) = default_start();
    let mut stream = TcpStream::connect(net.local_addr()).unwrap();
    stream.write_all(&encode_request(&Request::Hello { version: 1 })).unwrap();
    match xmlpub_net::frame::read_frame(&mut stream).unwrap() {
        Some(Frame::Response(Response::Ok { .. })) => {}
        other => panic!("handshake failed: {other:?}"),
    }
    stream.write_all(&[0, 0, 0, 0]).unwrap(); // zero-length frame
    match xmlpub_net::frame::read_frame(&mut stream).unwrap() {
        Some(Frame::Response(Response::Error { message, .. })) => {
            assert!(message.contains("zero-length"), "{message}");
        }
        other => panic!("wanted a protocol error frame, got {other:?}"),
    }
    // The connection is then closed by the server (framing is lost).
    assert!(xmlpub_net::frame::read_frame(&mut stream).unwrap().is_none());
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let snap = server.metrics().snapshot().unwrap();
        if snap.counter("server.net.malformed").unwrap_or(0) >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "malformed counter never bumped");
        std::thread::sleep(Duration::from_millis(1));
    }
    net.drain(Duration::from_secs(10));
}

/// A client that speaks a future protocol version is told so in-band.
#[test]
fn version_mismatch_is_rejected_in_band() {
    let (_server, net) = default_start();
    let mut stream = TcpStream::connect(net.local_addr()).unwrap();
    stream.write_all(&encode_request(&Request::Hello { version: 99 })).unwrap();
    match xmlpub_net::frame::read_frame(&mut stream).unwrap() {
        Some(Frame::Response(Response::Error { message, .. })) => {
            assert!(message.contains("version"), "{message}");
        }
        other => panic!("wanted a version error, got {other:?}"),
    }
}

/// The shed message constant the BUSY mapping relies on must keep
/// containing the canonical marker — a rename upstream would silently
/// turn BUSY frames into hard errors.
#[test]
fn busy_mapping_tracks_the_shed_message() {
    assert!(!SHED_MSG.is_empty());
    assert!(SHED_MSG.contains("queue full"));
}
