//! Decoder robustness: arbitrary bytes through [`FrameDecoder`] must
//! never panic, hang, or mis-frame — the reader thread feeds it
//! whatever the network produced.

use proptest::collection;
use proptest::prelude::*;

use xmlpub_net::{
    encode_request, encode_response, Frame, FrameDecoder, ProtocolError, Request, Response,
};

/// Drive a decoder over `bytes` split at `cuts`, collecting every
/// decoded frame until an error or exhaustion. Panics are the bug this
/// test exists to catch; errors are the contract.
fn drain(bytes: &[u8], chunk: usize) -> Result<Vec<Frame>, ProtocolError> {
    let mut dec = FrameDecoder::new();
    let mut frames = Vec::new();
    for part in bytes.chunks(chunk.max(1)) {
        dec.feed(part);
        loop {
            match dec.next_frame() {
                Ok(Some(f)) => frames.push(f),
                Ok(None) => break,
                Err(e) => return Err(e),
            }
        }
    }
    Ok(frames)
}

fn sample_frames() -> Vec<Vec<u8>> {
    vec![
        encode_request(&Request::Hello { version: 1 }),
        encode_request(&Request::Sql { sql: "select 1 from part".to_string() }),
        encode_request(&Request::Prepare { name: "q".to_string(), sql: "select 2".to_string() }),
        encode_request(&Request::Publish { view: "supplier_parts".to_string(), pretty: false }),
        encode_request(&Request::Goodbye),
        encode_response(&Response::Busy { message: "full".to_string() }),
        encode_response(&Response::XmlChunk(b"<a>&amp;</a>".to_vec())),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary garbage: any outcome but a panic or a bogus frame
    /// stream is acceptable, and the outcome must not depend on how the
    /// bytes were chunked.
    #[test]
    fn random_bytes_never_panic_and_chunking_is_irrelevant(
        bytes in collection::vec(any::<u8>(), 0..512),
        chunk in 1usize..64,
    ) {
        let whole = drain(&bytes, usize::MAX);
        let pieces = drain(&bytes, chunk);
        match (&whole, &pieces) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            // A frame completed in one feeding but not the other can't
            // happen: the decoder buffers identically either way.
            _ => prop_assert!(false, "chunking changed the outcome: {whole:?} vs {pieces:?}"),
        }
    }

    /// Random *prefixes* of a valid frame stream: every proper prefix
    /// either waits for more bytes or (when it ends inside a later
    /// frame) stays quiet — never errors, never invents a frame beyond
    /// the complete ones.
    #[test]
    fn prefixes_of_valid_streams_decode_cleanly(
        picks in collection::vec(0usize..7, 1..5),
        cut_back in 0usize..40,
    ) {
        let samples = sample_frames();
        let mut stream = Vec::new();
        for p in &picks {
            stream.extend_from_slice(&samples[*p]);
        }
        let cut = stream.len().saturating_sub(cut_back);
        let frames = drain(&stream[..cut], 7).expect("valid prefix must not error");
        prop_assert!(frames.len() <= picks.len());
        // The whole stream decodes every frame.
        let all = drain(&stream, usize::MAX).expect("valid stream");
        prop_assert_eq!(all.len(), picks.len());
    }

    /// One flipped byte in a valid stream: decoding may now fail (with
    /// a typed error) or still succeed (the flip landed in a string
    /// payload) — but it must not panic and must not loop forever.
    #[test]
    fn single_byte_corruption_fails_typed_or_survives(
        pick in 0usize..7,
        pos_seed in 0usize..4096,
        xor in 1u8..=255,
    ) {
        let frame = sample_frames().swap_remove(pick);
        let pos = pos_seed % frame.len();
        let mut corrupted = frame.clone();
        corrupted[pos] ^= xor;
        match drain(&corrupted, 3) {
            Ok(frames) => prop_assert!(frames.len() <= 1),
            Err(_typed) => {} // rejected with a typed ProtocolError: fine
        }
    }
}

#[test]
fn decoder_is_quiet_on_empty_input() {
    let mut dec = FrameDecoder::new();
    assert!(matches!(dec.next_frame(), Ok(None)));
    dec.feed(&[]);
    assert!(matches!(dec.next_frame(), Ok(None)));
    assert_eq!(dec.pending(), 0);
}

/// Fixed inputs that once mattered: shapes the property tests found (or
/// could find only rarely) pinned as plain unit cases so they run on
/// every build, proptest seed or not. The raw bytes are spelled out
/// because an attacker doesn't use our encoder.
mod regressions {
    use super::*;

    /// A 13-byte ROW_BATCH frame whose header claims u32::MAX rows of
    /// u32::MAX columns with zero payload bytes behind it. The decoder
    /// must reject the shape lie up front — not reserve memory for
    /// 2^64 values. Wire layout: len=9 (kind + 8 header bytes), kind
    /// 0x83 (ROW_BATCH), nrows, ncols.
    #[test]
    fn row_batch_shape_lie_is_rejected_without_allocation() {
        let bytes: [u8; 13] = [0, 0, 0, 9, 0x83, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF];
        for chunk in [usize::MAX, 1] {
            match drain(&bytes, chunk) {
                Err(ProtocolError::Malformed(msg)) => {
                    assert!(msg.contains("row batch"), "unexpected message: {msg}")
                }
                other => panic!("shape lie must be malformed, got {other:?}"),
            }
        }
    }

    /// A length word one past MAX_FRAME_LEN (16 MiB): the decoder must
    /// fail from the 4 length bytes alone, before any payload arrives
    /// or gets buffered.
    #[test]
    fn oversized_length_word_is_rejected_before_payload() {
        let len = (16 * 1024 * 1024 + 1u32).to_be_bytes();
        let mut dec = FrameDecoder::new();
        dec.feed(&len);
        match dec.next_frame() {
            Err(ProtocolError::Oversized { len }) => assert_eq!(len, 16 * 1024 * 1024 + 1),
            other => panic!("oversized length word must error, got {other:?}"),
        }
    }

    /// A valid frame with its last byte cut off: the decoder stays
    /// pending (no error, no frame) until the byte arrives, then yields
    /// exactly that frame.
    #[test]
    fn truncated_tail_stays_pending_until_completed() {
        let frame = encode_request(&Request::Sql { sql: "select 1 from part".to_string() });
        let (head, tail) = frame.split_at(frame.len() - 1);
        let mut dec = FrameDecoder::new();
        dec.feed(head);
        assert!(matches!(dec.next_frame(), Ok(None)), "truncated frame must stay pending");
        assert!(dec.pending() > 0);
        dec.feed(tail);
        match dec.next_frame() {
            Ok(Some(Frame::Request(Request::Sql { sql }))) => {
                assert_eq!(sql, "select 1 from part")
            }
            other => panic!("completed frame must decode, got {other:?}"),
        }
        assert!(matches!(dec.next_frame(), Ok(None)));
        assert_eq!(dec.pending(), 0);
    }
}
