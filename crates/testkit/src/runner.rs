//! The matrix runner: execute one [`Scenario`] across every knob cell
//! and prove all cells render byte-identical output, then pin that
//! output against the scenario's `.snap` file.
//!
//! Each cell gets a fresh [`Database`] (so updates replay from the same
//! base state) and a fresh [`Server`] built from
//! [`ServerConfig::deterministic`], with the session's `engine.dop` and
//! `engine.batch_size` set to the cell's knobs. Warm-cache cells first
//! prime the shared plan cache by running every read-only statement
//! once; trace cells attach a real tracer with a buffer sink and assert
//! spans were recorded. Scenarios that `republish` are additionally
//! checked differentially inside every cell: a second session with the
//! fallback threshold forced to `0.0` (full recompute whenever anything
//! changed) must produce byte-identical documents.

use std::collections::HashSet;

use xmlpub::xml::{customer_orders_view, supplier_parts_view, XmlView};
use xmlpub::{
    BufferSink, Database, ExecStats, MetricsHandle, Observability, Relation, Schema, SpanRecord,
    TableDef, TraceHandle, Value,
};
use xmlpub_common::{DeltaBatch, Field, Tuple};
use xmlpub_server::{RepublishOutcome, Server, ServerConfig, Session};

use crate::normalize;
use crate::scenario::{
    CacheMode, Cell, Expect, Scenario, Setup, Stmt, TableSpec, UpdateOp, ViewName,
};
use crate::snapshot::unified_diff;

/// Run every cell of the scenario's matrix and return the (identical)
/// rendered output. Errors carry the first diverging cell pair as a
/// unified diff, or the failing statement's context.
pub fn render_scenario(sc: &Scenario) -> Result<String, String> {
    let cells = sc.matrix.cells();
    let mut first: Option<(Cell, String)> = None;
    for cell in cells {
        let rendered =
            run_cell(sc, cell).map_err(|e| format!("scenario {} [{cell}]: {e}", sc.name))?;
        match &first {
            None => first = Some((cell, rendered)),
            Some((cell0, rendered0)) => {
                if *rendered0 != rendered {
                    return Err(format!(
                        "scenario {}: output diverges across matrix cells\n{}",
                        sc.name,
                        unified_diff(
                            rendered0,
                            &rendered,
                            &format!("[{cell0}]"),
                            &format!("[{cell}]")
                        )
                    ));
                }
            }
        }
    }
    Ok(first.expect("matrix has at least one cell").1)
}

fn run_cell(sc: &Scenario, cell: Cell) -> Result<String, String> {
    let (db, sink) = build_database(sc, cell)?;
    let server = Server::new(db, ServerConfig::deterministic(cell.dop));
    let mut session = configure(server.session(), cell);
    // The full-recompute oracle for republish differentials; created
    // lazily so read-only scenarios pay nothing.
    let mut oracle: Option<Session> = None;

    if cell.cache == CacheMode::Warm {
        let priming = configure(server.session(), cell);
        for stmt in sc.stmts.iter().filter(|s| s.is_read_only()) {
            prime(&priming, &server, stmt)?;
        }
    }

    let mut out = format!("== scenario {} ==\n", sc.name);
    if !sc.description.is_empty() {
        out.push_str(&sc.description);
        out.push('\n');
    }
    let mut seen_sql: HashSet<String> = HashSet::new();
    for (idx, stmt) in sc.stmts.iter().enumerate() {
        out.push_str(&format!("\n-- {}: {} --\n", idx + 1, stmt.label()));
        let block = run_stmt(sc, cell, &server, &mut session, &mut oracle, &mut seen_sql, stmt)
            .map_err(|e| format!("stmt {} ({}): {e}", idx + 1, stmt.label()))?;
        out.push_str(block.trim_end_matches('\n'));
        out.push('\n');
    }

    if let Some(sink) = sink {
        // Tracing must have actually observed the work (the snapshot
        // equality across the trace axis proves it observed *purely*).
        let records = SpanRecord::parse_all(&sink.contents())
            .map_err(|e| format!("trace output must parse: {e}"))?;
        if records.is_empty() {
            return Err("tracing enabled but no spans recorded".into());
        }
    }
    Ok(out)
}

fn build_database(sc: &Scenario, cell: Cell) -> Result<(Database, Option<BufferSink>), String> {
    let mut db = match sc.setup {
        Setup::None => Database::new(),
        Setup::TpchCore(scale) => {
            Database::tpch(scale).map_err(|e| format!("tpch({scale}): {e}"))?
        }
        Setup::TpchFull(scale) => {
            Database::tpch_full(scale).map_err(|e| format!("tpch_full({scale}): {e}"))?
        }
    };
    for spec in &sc.tables {
        let (def, data) = build_table(spec)?;
        db.register_table(def, data).map_err(|e| format!("register {}: {e}", spec.name))?;
    }
    let sink = if cell.trace {
        let sink = BufferSink::new();
        db.set_observability(Observability {
            metrics: MetricsHandle::new_registry(),
            tracer: TraceHandle::new(Box::new(sink.clone())),
        });
        Some(sink)
    } else {
        None
    };
    Ok((db, sink))
}

fn build_table(spec: &TableSpec) -> Result<(TableDef, Relation), String> {
    let fields =
        spec.columns.iter().map(|(name, ty)| Field::new(name.clone(), *ty)).collect::<Vec<_>>();
    let schema = Schema::new(fields);
    let def = TableDef::new(spec.name.clone(), schema.clone());
    let rows = spec.rows.iter().map(|r| Tuple::new(r.clone())).collect();
    Ok((def, Relation::from_rows_unchecked(schema, rows)))
}

fn configure(mut session: Session, cell: Cell) -> Session {
    session.config_mut().engine.dop = cell.dop;
    session.config_mut().engine.batch_size = cell.batch;
    session
}

fn view_for(server: &Server, view: ViewName) -> Result<XmlView, String> {
    let catalog = server.database().catalog();
    match view {
        ViewName::SupplierParts => supplier_parts_view(catalog),
        ViewName::CustomerOrders => customer_orders_view(catalog),
    }
    .map_err(|e| format!("{view} view: {e}"))
}

fn prime(session: &Session, server: &Server, stmt: &Stmt) -> Result<(), String> {
    match stmt {
        Stmt::Sql { sql, .. } => {
            session.execute(sql).map_err(|e| format!("warm priming {sql:?}: {e}"))?;
        }
        Stmt::Analyze { sql, .. } => {
            session.execute(sql).map_err(|e| format!("warm priming {sql:?}: {e}"))?;
        }
        Stmt::Publish { view, pretty, .. } => {
            let v = view_for(server, *view)?;
            session.publish(&v, *pretty).map_err(|e| format!("warm priming publish: {e}"))?;
        }
        // `\explain` plans outside the server cache; nothing to warm.
        Stmt::Explain { .. } => {}
        Stmt::Update { .. } | Stmt::Republish { .. } => unreachable!("not read-only"),
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn run_stmt(
    sc: &Scenario,
    cell: Cell,
    server: &Server,
    session: &mut Session,
    oracle: &mut Option<Session>,
    seen_sql: &mut HashSet<String>,
    stmt: &Stmt,
) -> Result<String, String> {
    match stmt {
        Stmt::Sql { sql, sort, .. } => {
            let (rel, stats) = session.execute(sql).map_err(|e| format!("{sql:?}: {e}"))?;
            check_plan_cache_invariant(cell, seen_sql, sql, &stats)?;
            let rel = if *sort { canonical_sort(&rel) } else { rel };
            Ok(format!(
                "rows ({}):\n{}\nstats: {}\n",
                rel.len(),
                rel.to_table_string().trim_end_matches('\n'),
                stats.snapshot_line()
            ))
        }
        Stmt::Explain { sql, .. } => {
            server.database().explain(sql).map_err(|e| format!("{sql:?}: {e}"))
        }
        Stmt::Analyze { sql, .. } => {
            let (_, report) = session.execute_analyzed(sql).map_err(|e| format!("{sql:?}: {e}"))?;
            seen_sql.insert(sql.clone());
            Ok(normalize::analyze_snapshot(&report))
        }
        Stmt::Publish { view, pretty, .. } => {
            let v = view_for(server, *view)?;
            let xml = session.publish(&v, *pretty).map_err(|e| format!("publish: {e}"))?;
            Ok(xml)
        }
        Stmt::Update { ops, .. } => {
            let mut out = String::new();
            for op in ops {
                out.push_str(&apply_update(server.database(), op)?);
                out.push('\n');
            }
            Ok(out)
        }
        Stmt::Republish { view, pretty, expect, .. } => {
            let v = view_for(server, *view)?;
            if oracle.is_none() {
                let mut o = configure(server.session(), cell);
                o.set_republish_threshold(0.0);
                *oracle = Some(o);
            }
            let (xml, outcome) =
                session.republish(&v, *pretty).map_err(|e| format!("republish: {e}"))?;
            let o = oracle.as_mut().expect("oracle just created");
            let (oracle_xml, oracle_outcome) =
                o.republish(&v, *pretty).map_err(|e| format!("oracle republish: {e}"))?;
            if xml != oracle_xml {
                return Err(format!(
                    "republish ({outcome}) diverges from full-recompute oracle ({oracle_outcome})\n{}",
                    unified_diff(&oracle_xml, &xml, "oracle", "incremental")
                ));
            }
            if let Some(expect) = expect {
                check_expect(sc, expect, &outcome)?;
            }
            Ok(format!("outcome: {outcome}\n{xml}"))
        }
    }
}

/// Cold cells must plan a never-seen statement fresh; warm cells were
/// primed, so every statement must be served from the shared cache.
fn check_plan_cache_invariant(
    cell: Cell,
    seen_sql: &mut HashSet<String>,
    sql: &str,
    stats: &ExecStats,
) -> Result<(), String> {
    let first_time = seen_sql.insert(sql.to_string());
    let expect_hit = cell.cache == CacheMode::Warm || !first_time;
    if stats.plan_cache_hits + stats.plan_cache_misses != 1 {
        return Err(format!(
            "plan cache counters must record exactly one planning event, got hits={} misses={}",
            stats.plan_cache_hits, stats.plan_cache_misses
        ));
    }
    if expect_hit && stats.plan_cache_hits != 1 {
        return Err(format!(
            "expected a plan-cache hit ({} cache, first_time={first_time}), got a miss",
            cell.cache
        ));
    }
    if !expect_hit && stats.plan_cache_misses != 1 {
        return Err("expected a plan-cache miss (cold cache, fresh statement), got a hit".into());
    }
    Ok(())
}

fn check_expect(sc: &Scenario, expect: &Expect, outcome: &RepublishOutcome) -> Result<(), String> {
    let ok = match (expect, outcome) {
        (Expect::Incremental, RepublishOutcome::Incremental { .. }) => true,
        (Expect::Clean, RepublishOutcome::Clean) => true,
        (Expect::Full(reason), RepublishOutcome::Full { reason: actual }) => reason == actual,
        _ => false,
    };
    if ok {
        Ok(())
    } else {
        Err(format!("scenario {} expected {expect:?}, got: {outcome}", sc.name))
    }
}

fn apply_update(db: &Database, op: &UpdateOp) -> Result<String, String> {
    let table = match op {
        UpdateOp::Delete { table, .. }
        | UpdateOp::Set { table, .. }
        | UpdateOp::SetRange { table, .. }
        | UpdateOp::Clone { table, .. } => table.clone(),
    };
    let data = db.catalog().data(&table).map_err(|e| format!("{table}: {e}"))?;
    let rows = data.rows();
    let col_index = |name: &str| -> Result<usize, String> {
        data.schema().index_of(name).ok_or_else(|| format!("table {table} has no column {name:?}"))
    };
    let row_at = |idx: usize| -> Result<Tuple, String> {
        rows.get(idx)
            .cloned()
            .ok_or_else(|| format!("table {table} has {} rows, no index {idx}", rows.len()))
    };
    let replaced = |row: &Tuple, col: usize, value: &Value| -> Tuple {
        let mut vals = row.values().to_vec();
        vals[col] = value.clone();
        Tuple::new(vals)
    };
    let (delta, desc) = match op {
        UpdateOp::Delete { row, .. } => {
            let old = row_at(*row)?;
            (DeltaBatch::deletes(vec![old]), format!("delete {table}[{row}]"))
        }
        UpdateOp::Set { row, column, value, .. } => {
            let old = row_at(*row)?;
            let col = col_index(column)?;
            let new = replaced(&old, col, value);
            (DeltaBatch::new(vec![new], vec![old]), format!("set {table}[{row}].{column}"))
        }
        UpdateOp::SetRange { lo, hi, column, value, .. } => {
            let col = col_index(column)?;
            let hi = (*hi).min(rows.len());
            if *lo >= hi {
                return Err(format!("set-range {table} [{lo}, {hi}) is empty"));
            }
            let mut deleted = Vec::new();
            let mut appended = Vec::new();
            for idx in *lo..hi {
                let old = row_at(idx)?;
                appended.push(replaced(&old, col, value));
                deleted.push(old);
            }
            (DeltaBatch::new(appended, deleted), format!("set-range {table}[{lo}..{hi}].{column}"))
        }
        UpdateOp::Clone { row, column, value, .. } => {
            let old = row_at(*row)?;
            let col = col_index(column)?;
            (
                DeltaBatch::appends(vec![replaced(&old, col, value)]),
                format!("clone {table}[{row}] with .{column}"),
            )
        }
    };
    drop(data);
    let applied = db.apply_delta(&table, &delta).map_err(|e| format!("{desc}: {e}"))?;
    Ok(format!("{desc}: applied {applied} row change(s)"))
}

/// Sort rows by the total order over all columns — for statements whose
/// plan does not pin a total output order.
fn canonical_sort(rel: &Relation) -> Relation {
    let mut rows = rel.rows().to_vec();
    rows.sort_by(|a, b| {
        a.values()
            .iter()
            .zip(b.values())
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| o.is_ne())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Relation::from_rows_unchecked(rel.schema().clone(), rows)
}
