//! The `.scn` scenario file format: a small, TOML-ish declarative
//! description of one test scenario — data setup, a statement list, and
//! an optional knob-matrix override.
//!
//! The format is deliberately tiny (sections, `key = value` pairs,
//! array-of-table `[[stmt]]` blocks, `"""` multiline strings) so a
//! scenario needs no Rust at all; the full grammar is documented in
//! `docs/testing.md`. Parsing is hand-rolled to keep the workspace
//! dependency-free.

use std::fmt;
use std::path::Path;

use xmlpub_common::{DataType, Value};

/// A parsed scenario: what to set up, what to run, and over which knob
/// matrix the runner must prove snapshot invariance.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (defaults to the file stem).
    pub name: String,
    /// Free-text description (shown in failure messages).
    pub description: String,
    /// Data setup: a TPC-H catalog, inline tables, or both.
    pub setup: Setup,
    /// Inline tables registered after the TPC-H catalog (if any).
    pub tables: Vec<TableSpec>,
    /// The knob matrix every statement sequence runs across.
    pub matrix: Matrix,
    /// The statement sequence, executed in order in every cell.
    pub stmts: Vec<Stmt>,
}

/// Which base catalog the scenario starts from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Setup {
    /// No generated data — the scenario brings its own `[[table]]`s.
    None,
    /// `Database::tpch(scale)` — supplier / part / partsupp.
    TpchCore(f64),
    /// `Database::tpch_full(scale)` — all eight tables.
    TpchFull(f64),
}

/// An inline table: schema plus literal rows.
#[derive(Debug, Clone)]
pub struct TableSpec {
    pub name: String,
    /// `(column name, type)` pairs, one per `column = "name type"` line.
    pub columns: Vec<(String, DataType)>,
    /// Literal rows, one per `row = [..]` line.
    pub rows: Vec<Vec<Value>>,
}

/// Plan-cache axis: a cold cell plans everything fresh; a warm cell
/// first primes the shared cache by running every read-only statement
/// once, then records the pass that is snapshotted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    Cold,
    Warm,
}

impl fmt::Display for CacheMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CacheMode::Cold => "cold",
            CacheMode::Warm => "warm",
        })
    }
}

/// The knob matrix. Defaults to the full
/// batch {1, 1024} × dop {1, 4} × cache {cold, warm} × trace {off, on}
/// grid; a `[matrix]` section narrows any axis.
#[derive(Debug, Clone)]
pub struct Matrix {
    pub batch: Vec<usize>,
    pub dop: Vec<usize>,
    pub cache: Vec<CacheMode>,
    pub trace: Vec<bool>,
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix {
            batch: vec![1, 1024],
            dop: vec![1, 4],
            cache: vec![CacheMode::Cold, CacheMode::Warm],
            trace: vec![false, true],
        }
    }
}

impl Matrix {
    /// Every cell in row-major (batch, dop, cache, trace) order.
    pub fn cells(&self) -> Vec<Cell> {
        let mut out = Vec::new();
        for &batch in &self.batch {
            for &dop in &self.dop {
                for &cache in &self.cache {
                    for &trace in &self.trace {
                        out.push(Cell { batch, dop, cache, trace });
                    }
                }
            }
        }
        out
    }
}

/// One point of the knob matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    pub batch: usize,
    pub dop: usize,
    pub cache: CacheMode,
    pub trace: bool,
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "batch={} dop={} cache={} trace={}",
            self.batch,
            self.dop,
            self.cache,
            if self.trace { "on" } else { "off" }
        )
    }
}

/// A named XML view over the current catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewName {
    SupplierParts,
    CustomerOrders,
}

impl ViewName {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "supplier_parts" => Ok(ViewName::SupplierParts),
            "customer_orders" => Ok(ViewName::CustomerOrders),
            other => Err(format!("unknown view {other:?} (supplier_parts | customer_orders)")),
        }
    }
}

impl fmt::Display for ViewName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ViewName::SupplierParts => "supplier_parts",
            ViewName::CustomerOrders => "customer_orders",
        })
    }
}

/// Expected [`xmlpub_server::RepublishOutcome`] classification of a
/// `republish` statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expect {
    Incremental,
    Clean,
    /// `full:<reason>` — the exact fallback reason string.
    Full(String),
}

impl Expect {
    fn parse(s: &str) -> Result<Self, String> {
        if s == "incremental" {
            Ok(Expect::Incremental)
        } else if s == "clean" {
            Ok(Expect::Clean)
        } else if let Some(reason) = s.strip_prefix("full:") {
            Ok(Expect::Full(reason.to_string()))
        } else {
            Err(format!("bad expect {s:?} (incremental | clean | full:<reason>)"))
        }
    }
}

/// One deterministic catalog mutation inside an `update` statement.
#[derive(Debug, Clone)]
pub enum UpdateOp {
    /// `delete <table> <row>` — delete the row at the given index of
    /// the table's *current* row vector.
    Delete { table: String, row: usize },
    /// `set <table> <row> <column> <value>` — replace one column of one
    /// row (delete + append, like the proptest mutation scripts).
    Set { table: String, row: usize, column: String, value: Value },
    /// `set-range <table> <lo> <hi> <column> <value>` — `set` applied
    /// to every row index in `[lo, hi)`; the mass-churn op behind the
    /// dirty-fraction fallback scenario.
    SetRange { table: String, lo: usize, hi: usize, column: String, value: Value },
    /// `clone <table> <row> <column> <value>` — append a copy of a row
    /// with one column (typically the key) replaced.
    Clone { table: String, row: usize, column: String, value: Value },
}

/// One statement of the scenario sequence.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// Run SQL through the session; snapshot rows + invariant stats.
    /// `sort = true` canonically sorts rows before rendering (for
    /// plans whose output order is not total).
    Sql { label: String, sql: String, sort: bool },
    /// Snapshot the `\explain` report (bound plan, rules, optimized).
    Explain { label: String, sql: String },
    /// Snapshot the `\explain --analyze` report, reduced to its
    /// matrix-invariant parts (plan + scrubbed engine counters).
    Analyze { label: String, sql: String },
    /// Publish a named view; snapshot the document verbatim.
    Publish { label: String, view: ViewName, pretty: bool },
    /// Apply catalog mutations through the delta path.
    Update { label: String, ops: Vec<UpdateOp> },
    /// Incrementally republish a named view; differentially check the
    /// bytes against a threshold-0 full-recompute oracle session and
    /// assert the outcome classification.
    Republish { label: String, view: ViewName, pretty: bool, expect: Option<Expect> },
}

impl Stmt {
    /// Statements that neither mutate the catalog nor depend on
    /// per-session republish state — safe to run in the warm-cache
    /// priming pass.
    pub fn is_read_only(&self) -> bool {
        matches!(
            self,
            Stmt::Sql { .. } | Stmt::Explain { .. } | Stmt::Analyze { .. } | Stmt::Publish { .. }
        )
    }

    /// The label used in snapshot block headers and failure messages.
    pub fn label(&self) -> &str {
        match self {
            Stmt::Sql { label, .. }
            | Stmt::Explain { label, .. }
            | Stmt::Analyze { label, .. }
            | Stmt::Publish { label, .. }
            | Stmt::Update { label, .. }
            | Stmt::Republish { label, .. } => label,
        }
    }
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// A raw `key = value` literal before interpretation.
#[derive(Debug, Clone, PartialEq)]
enum Lit {
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
    Null,
    Array(Vec<Lit>),
}

impl Lit {
    fn type_name(&self) -> &'static str {
        match self {
            Lit::Str(_) => "string",
            Lit::Int(_) => "int",
            Lit::Float(_) => "float",
            Lit::Bool(_) => "bool",
            Lit::Null => "null",
            Lit::Array(_) => "array",
        }
    }

    fn to_value(&self) -> Result<Value, String> {
        Ok(match self {
            Lit::Str(s) => Value::str(s.clone()),
            Lit::Int(i) => Value::Int(*i),
            Lit::Float(f) => Value::Float(*f),
            Lit::Bool(_) => return Err("bool is not a column value".into()),
            Lit::Null => Value::Null,
            Lit::Array(_) => return Err("nested arrays are not column values".into()),
        })
    }
}

/// One section of the file: `[name]` or `[[name]]` plus its key/value
/// pairs in order (repeated keys are kept — `row = [...]` relies on it).
#[derive(Debug)]
struct Section {
    name: String,
    /// True for `[[name]]` array-of-table syntax.
    repeated: bool,
    entries: Vec<(String, Lit)>,
    line: usize,
}

impl Section {
    fn get(&self, key: &str) -> Option<&Lit> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn get_str(&self, key: &str) -> Result<Option<&str>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(Lit::Str(s)) => Ok(Some(s)),
            Some(other) => {
                Err(format!("[{}] {key} must be a string, got {}", self.name, other.type_name()))
            }
        }
    }

    fn get_bool(&self, key: &str, default: bool) -> Result<bool, String> {
        match self.get(key) {
            None => Ok(default),
            Some(Lit::Bool(b)) => Ok(*b),
            Some(other) => {
                Err(format!("[{}] {key} must be a bool, got {}", self.name, other.type_name()))
            }
        }
    }
}

/// Parse a scenario file's text. `stem` names the scenario when the
/// file has no explicit `name`.
pub fn parse(text: &str, stem: &str) -> Result<Scenario, String> {
    let sections = split_sections(text)?;
    let mut sc = Scenario {
        name: stem.to_string(),
        description: String::new(),
        setup: Setup::None,
        tables: Vec::new(),
        matrix: Matrix::default(),
        stmts: Vec::new(),
    };
    for sec in &sections {
        match (sec.name.as_str(), sec.repeated) {
            ("scenario", false) => {
                if let Some(name) = sec.get_str("name")? {
                    sc.name = name.to_string();
                }
                if let Some(d) = sec.get_str("description")? {
                    sc.description = d.to_string();
                }
            }
            ("setup", false) => sc.setup = parse_setup(sec)?,
            ("matrix", false) => sc.matrix = parse_matrix(sec)?,
            ("table", true) => sc.tables.push(parse_table(sec)?),
            ("stmt", true) => {
                let idx = sc.stmts.len() + 1;
                sc.stmts.push(parse_stmt(sec, idx)?);
            }
            (other, repeated) => {
                let brackets = if repeated { "[[ ]]" } else { "[ ]" };
                return Err(format!("line {}: unknown section {other:?} ({brackets})", sec.line));
            }
        }
    }
    if sc.stmts.is_empty() {
        return Err("scenario has no [[stmt]] sections".into());
    }
    if sc.setup == Setup::None && sc.tables.is_empty() {
        return Err("scenario has neither [setup] nor [[table]] data".into());
    }
    Ok(sc)
}

/// Parse a scenario file from disk.
pub fn parse_file(path: &Path) -> Result<Scenario, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("scenario");
    parse(&text, stem).map_err(|e| format!("{}: {e}", path.display()))
}

fn parse_setup(sec: &Section) -> Result<Setup, String> {
    let scale = |lit: &Lit| -> Result<f64, String> {
        match lit {
            Lit::Float(f) => Ok(*f),
            Lit::Int(i) => Ok(*i as f64),
            other => Err(format!("[setup] scale must be a number, got {}", other.type_name())),
        }
    };
    match (sec.get("tpch"), sec.get("tpch_full")) {
        (Some(_), Some(_)) => Err("[setup] has both tpch and tpch_full".into()),
        (Some(l), None) => Ok(Setup::TpchCore(scale(l)?)),
        (None, Some(l)) => Ok(Setup::TpchFull(scale(l)?)),
        (None, None) => Ok(Setup::None),
    }
}

fn parse_matrix(sec: &Section) -> Result<Matrix, String> {
    let mut m = Matrix::default();
    for (key, lit) in &sec.entries {
        let items = match lit {
            Lit::Array(items) => items,
            other => {
                return Err(format!("[matrix] {key} must be an array, got {}", other.type_name()))
            }
        };
        if items.is_empty() {
            return Err(format!("[matrix] {key} must not be empty"));
        }
        match key.as_str() {
            "batch" | "dop" => {
                let mut out = Vec::new();
                for it in items {
                    match it {
                        Lit::Int(i) if *i >= 1 => out.push(*i as usize),
                        _ => return Err(format!("[matrix] {key} entries must be ints ≥ 1")),
                    }
                }
                if key == "batch" {
                    m.batch = out;
                } else {
                    m.dop = out;
                }
            }
            "cache" => {
                let mut out = Vec::new();
                for it in items {
                    match it {
                        Lit::Str(s) if s == "cold" => out.push(CacheMode::Cold),
                        Lit::Str(s) if s == "warm" => out.push(CacheMode::Warm),
                        _ => {
                            return Err("[matrix] cache entries must be \"cold\" | \"warm\"".into())
                        }
                    }
                }
                m.cache = out;
            }
            "trace" => {
                let mut out = Vec::new();
                for it in items {
                    match it {
                        Lit::Str(s) if s == "off" => out.push(false),
                        Lit::Str(s) if s == "on" => out.push(true),
                        _ => return Err("[matrix] trace entries must be \"off\" | \"on\"".into()),
                    }
                }
                m.trace = out;
            }
            other => return Err(format!("[matrix] unknown axis {other:?}")),
        }
    }
    Ok(m)
}

fn parse_table(sec: &Section) -> Result<TableSpec, String> {
    let name = sec
        .get_str("name")?
        .ok_or_else(|| format!("line {}: [[table]] needs name", sec.line))?
        .to_string();
    let mut columns = Vec::new();
    let mut rows = Vec::new();
    for (key, lit) in &sec.entries {
        match key.as_str() {
            "name" => {}
            "column" => {
                let spec = match lit {
                    Lit::Str(s) => s,
                    other => {
                        return Err(format!(
                            "[[table]] column must be \"name type\", got {}",
                            other.type_name()
                        ))
                    }
                };
                let mut parts = spec.split_whitespace();
                let (col, ty) = match (parts.next(), parts.next(), parts.next()) {
                    (Some(c), Some(t), None) => (c, t),
                    _ => return Err(format!("bad column spec {spec:?} (want \"name type\")")),
                };
                let ty = match ty {
                    "int" => DataType::Int,
                    "float" => DataType::Float,
                    "str" => DataType::Str,
                    other => return Err(format!("bad column type {other:?} (int | float | str)")),
                };
                columns.push((col.to_string(), ty));
            }
            "row" => {
                let items = match lit {
                    Lit::Array(items) => items,
                    other => {
                        return Err(format!(
                            "[[table]] row must be an array, got {}",
                            other.type_name()
                        ))
                    }
                };
                let row: Result<Vec<Value>, String> = items.iter().map(Lit::to_value).collect();
                rows.push(row?);
            }
            other => return Err(format!("[[table]] unknown key {other:?}")),
        }
    }
    if columns.is_empty() {
        return Err(format!("[[table]] {name} has no columns"));
    }
    for (i, row) in rows.iter().enumerate() {
        if row.len() != columns.len() {
            return Err(format!(
                "[[table]] {name} row {i} has {} values for {} columns",
                row.len(),
                columns.len()
            ));
        }
    }
    Ok(TableSpec { name, columns, rows })
}

fn parse_stmt(sec: &Section, idx: usize) -> Result<Stmt, String> {
    let kinds = ["sql", "explain", "analyze", "publish", "update", "republish"];
    let present: Vec<&str> =
        kinds.iter().copied().filter(|k| sec.entries.iter().any(|(key, _)| key == k)).collect();
    let kind = match present.as_slice() {
        [one] => *one,
        [] => {
            return Err(format!(
                "line {}: [[stmt]] {idx} needs one of {}",
                sec.line,
                kinds.join(" | ")
            ))
        }
        many => {
            return Err(format!("line {}: [[stmt]] {idx} mixes {}", sec.line, many.join(" + ")))
        }
    };
    let label = match sec.get_str("name")? {
        Some(n) => n.to_string(),
        None => match kind {
            "publish" | "republish" => {
                format!("{kind} {}", sec.get_str(kind)?.unwrap_or_default())
            }
            _ => kind.to_string(),
        },
    };
    let sql_of = |key: &str| -> Result<String, String> {
        Ok(sec.get_str(key)?.ok_or_else(|| format!("{key} must be a string"))?.trim().to_string())
    };
    match kind {
        "sql" => Ok(Stmt::Sql { label, sql: sql_of("sql")?, sort: sec.get_bool("sort", false)? }),
        "explain" => Ok(Stmt::Explain { label, sql: sql_of("explain")? }),
        "analyze" => Ok(Stmt::Analyze { label, sql: sql_of("analyze")? }),
        "publish" => Ok(Stmt::Publish {
            label,
            view: ViewName::parse(sec.get_str("publish")?.unwrap_or_default())?,
            pretty: sec.get_bool("pretty", true)?,
        }),
        "republish" => Ok(Stmt::Republish {
            label,
            view: ViewName::parse(sec.get_str("republish")?.unwrap_or_default())?,
            pretty: sec.get_bool("pretty", true)?,
            expect: sec.get_str("expect")?.map(Expect::parse).transpose()?,
        }),
        "update" => {
            let mut ops = Vec::new();
            for (key, lit) in &sec.entries {
                if key != "update" {
                    continue;
                }
                let spec = match lit {
                    Lit::Str(s) => s,
                    other => {
                        return Err(format!("update must be a string, got {}", other.type_name()))
                    }
                };
                ops.push(parse_update_op(spec)?);
            }
            if ops.is_empty() {
                return Err(format!("[[stmt]] {idx}: update statement has no update ops"));
            }
            Ok(Stmt::Update { label, ops })
        }
        _ => unreachable!(),
    }
}

/// Parse one update-op spec. Tokens are whitespace-separated; the
/// trailing value token is a literal (int / float / null / 'quoted
/// string').
fn parse_update_op(spec: &str) -> Result<UpdateOp, String> {
    let toks = tokenize_op(spec)?;
    let usize_tok = |t: &str| -> Result<usize, String> {
        t.parse::<usize>().map_err(|_| format!("bad index {t:?} in {spec:?}"))
    };
    let value_tok = |t: &str| -> Result<Value, String> {
        if t == "null" {
            Ok(Value::Null)
        } else if let Some(s) = t.strip_prefix('\'').and_then(|s| s.strip_suffix('\'')) {
            Ok(Value::str(s))
        } else if let Ok(i) = t.parse::<i64>() {
            Ok(Value::Int(i))
        } else if let Ok(f) = t.parse::<f64>() {
            Ok(Value::Float(f))
        } else {
            Err(format!("bad value {t:?} in {spec:?} (int | float | null | 'string')"))
        }
    };
    match toks.as_slice() {
        [op, table, row] if op == "delete" => {
            Ok(UpdateOp::Delete { table: table.clone(), row: usize_tok(row)? })
        }
        [op, table, row, column, value] if op == "set" => Ok(UpdateOp::Set {
            table: table.clone(),
            row: usize_tok(row)?,
            column: column.clone(),
            value: value_tok(value)?,
        }),
        [op, table, lo, hi, column, value] if op == "set-range" => Ok(UpdateOp::SetRange {
            table: table.clone(),
            lo: usize_tok(lo)?,
            hi: usize_tok(hi)?,
            column: column.clone(),
            value: value_tok(value)?,
        }),
        [op, table, row, column, value] if op == "clone" => Ok(UpdateOp::Clone {
            table: table.clone(),
            row: usize_tok(row)?,
            column: column.clone(),
            value: value_tok(value)?,
        }),
        _ => Err(format!(
            "bad update op {spec:?} (delete t i | set t i col v | set-range t lo hi col v | clone t i col v)"
        )),
    }
}

/// Split an op spec into tokens, keeping `'quoted strings'` (which may
/// contain spaces) as single tokens.
fn tokenize_op(spec: &str) -> Result<Vec<String>, String> {
    let mut toks = Vec::new();
    let mut rest = spec.trim();
    while !rest.is_empty() {
        if let Some(tail) = rest.strip_prefix('\'') {
            let end = tail.find('\'').ok_or_else(|| format!("unterminated ' in {spec:?}"))?;
            toks.push(format!("'{}'", &tail[..end]));
            rest = tail[end + 1..].trim_start();
        } else {
            let end = rest.find(char::is_whitespace).unwrap_or(rest.len());
            toks.push(rest[..end].to_string());
            rest = rest[end..].trim_start();
        }
    }
    Ok(toks)
}

// ---------------------------------------------------------------------
// Low-level line format
// ---------------------------------------------------------------------

fn split_sections(text: &str) -> Result<Vec<Section>, String> {
    let mut sections: Vec<Section> = Vec::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((i, raw)) = lines.next() {
        let line = raw.trim();
        let lineno = i + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(name) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
            sections.push(Section {
                name: name.trim().to_string(),
                repeated: true,
                entries: Vec::new(),
                line: lineno,
            });
        } else if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            sections.push(Section {
                name: name.trim().to_string(),
                repeated: false,
                entries: Vec::new(),
                line: lineno,
            });
        } else {
            let (key, rest) = line
                .split_once('=')
                .ok_or_else(|| format!("line {lineno}: expected `key = value`, got {line:?}"))?;
            let key = key.trim().to_string();
            let rest = rest.trim();
            let lit = if rest == "\"\"\"" {
                // Multiline string: lines verbatim until a `"""` line.
                let mut body = String::new();
                let mut closed = false;
                for (_, l) in lines.by_ref() {
                    if l.trim() == "\"\"\"" {
                        closed = true;
                        break;
                    }
                    if !body.is_empty() {
                        body.push('\n');
                    }
                    body.push_str(l);
                }
                if !closed {
                    return Err(format!("line {lineno}: unterminated \"\"\" string"));
                }
                Lit::Str(body)
            } else {
                parse_lit(rest).map_err(|e| format!("line {lineno}: {e}"))?
            };
            let sec = sections
                .last_mut()
                .ok_or_else(|| format!("line {lineno}: `{key} = ...` before any [section]"))?;
            sec.entries.push((key, lit));
        }
    }
    Ok(sections)
}

fn parse_lit(s: &str) -> Result<Lit, String> {
    let s = s.trim();
    if let Some(inner) = s.strip_prefix('[') {
        let inner = inner.strip_suffix(']').ok_or_else(|| format!("unterminated array {s:?}"))?;
        let mut items = Vec::new();
        for part in split_array_items(inner)? {
            let part = part.trim();
            if !part.is_empty() {
                items.push(parse_lit(part)?);
            }
        }
        return Ok(Lit::Array(items));
    }
    if let Some(tail) = s.strip_prefix('"') {
        let body = tail.strip_suffix('"').ok_or_else(|| format!("unterminated string {s:?}"))?;
        if body.contains('"') {
            return Err(format!("stray quote inside {s:?}"));
        }
        return Ok(Lit::Str(body.to_string()));
    }
    match s {
        "true" => return Ok(Lit::Bool(true)),
        "false" => return Ok(Lit::Bool(false)),
        "null" => return Ok(Lit::Null),
        _ => {}
    }
    if let Ok(i) = s.parse::<i64>() {
        return Ok(Lit::Int(i));
    }
    if let Ok(f) = s.parse::<f64>() {
        return Ok(Lit::Float(f));
    }
    Err(format!("bad literal {s:?}"))
}

/// Split array contents on commas that are outside double quotes.
fn split_array_items(inner: &str) -> Result<Vec<String>, String> {
    let mut items = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in inner.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                items.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if in_str {
        return Err(format!("unterminated string in array [{inner}]"));
    }
    items.push(cur);
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_scenario() {
        let text = r#"
# a comment
[scenario]
name = "demo"
description = "round trip"

[setup]
tpch = 0.001

[matrix]
batch = [1, 1024]
dop = [1]
cache = ["cold"]
trace = ["off", "on"]

[[table]]
name = "t"
column = "k int"
column = "v str"
row = [1, "a"]
row = [null, "b"]

[[stmt]]
name = "count"
sql = """
select count(*)
from supplier
"""

[[stmt]]
publish = "supplier_parts"
pretty = false

[[stmt]]
update = "delete supplier 0"
update = "set supplier 1 s_name 'Supplier#X Y'"

[[stmt]]
republish = "supplier_parts"
expect = "full:first-publish"
"#;
        let sc = parse(text, "stem").unwrap();
        assert_eq!(sc.name, "demo");
        assert_eq!(sc.setup, Setup::TpchCore(0.001));
        assert_eq!(sc.matrix.cells().len(), 4);
        assert_eq!(sc.tables.len(), 1);
        assert_eq!(sc.tables[0].rows[1][0], Value::Null);
        assert_eq!(sc.stmts.len(), 4);
        match &sc.stmts[0] {
            Stmt::Sql { label, sql, sort } => {
                assert_eq!(label, "count");
                assert!(sql.contains("from supplier"));
                assert!(!sort);
            }
            other => panic!("bad stmt {other:?}"),
        }
        match &sc.stmts[2] {
            Stmt::Update { ops, .. } => {
                assert_eq!(ops.len(), 2);
                match &ops[1] {
                    UpdateOp::Set { column, value, .. } => {
                        assert_eq!(column, "s_name");
                        assert_eq!(*value, Value::str("Supplier#X Y"));
                    }
                    other => panic!("bad op {other:?}"),
                }
            }
            other => panic!("bad stmt {other:?}"),
        }
        match &sc.stmts[3] {
            Stmt::Republish { expect, pretty, .. } => {
                assert_eq!(*expect, Some(Expect::Full("first-publish".into())));
                assert!(*pretty);
            }
            other => panic!("bad stmt {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("[scenario]\n", "x").is_err()); // no stmts
        assert!(parse("key = 1\n", "x").is_err()); // key before section
        assert!(
            parse("[setup]\ntpch = 0.001\n[[stmt]]\nsql = \"q\"\nexplain = \"q\"\n", "x").is_err()
        ); // mixed kinds
        assert!(parse("[setup]\ntpch = 0.001\n[[stmt]]\nupdate = \"frob x 1\"\n", "x").is_err());
    }
}
