//! Pinned-snapshot bookkeeping: compare a rendered scenario output to
//! its `.snap` file (with a unified diff on mismatch) or re-bless it.

use std::fs;
use std::path::Path;

/// Compare `rendered` against the pinned snapshot at `path`. Returns a
/// human-readable error (missing pin, or a unified diff) on mismatch.
pub fn check(path: &Path, rendered: &str) -> Result<(), String> {
    let pinned = fs::read_to_string(path).map_err(|_| {
        format!(
            "missing snapshot {} — run `XMLPUB_BLESS=1 cargo test` or \
             `cargo run -p xmlpub-testkit --bin bless` to create it",
            path.display()
        )
    })?;
    if pinned == rendered {
        return Ok(());
    }
    Err(format!(
        "snapshot mismatch for {}\n{}\n(re-bless with `cargo run -p xmlpub-testkit --bin bless` \
         if the change is intended)",
        path.display(),
        unified_diff(&pinned, rendered, "pinned", "actual")
    ))
}

/// Write `rendered` as the new pinned snapshot. Returns whether the
/// file changed.
pub fn bless(path: &Path, rendered: &str) -> Result<bool, String> {
    let old = fs::read_to_string(path).ok();
    if old.as_deref() == Some(rendered) {
        return Ok(false);
    }
    fs::write(path, rendered).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(true)
}

/// A compact unified diff between two texts. Common prefix/suffix lines
/// are trimmed first; the differing middle is diffed by LCS when small
/// enough, and shown side-on (all removals then all additions) when the
/// region is too large for that to be worth the quadratic cost.
pub fn unified_diff(old: &str, new: &str, old_label: &str, new_label: &str) -> String {
    const CONTEXT: usize = 3;
    const MAX_LCS_LINES: usize = 2000;

    let old_lines: Vec<&str> = old.lines().collect();
    let new_lines: Vec<&str> = new.lines().collect();
    let common_prefix = old_lines.iter().zip(new_lines.iter()).take_while(|(a, b)| a == b).count();
    let common_suffix = old_lines[common_prefix..]
        .iter()
        .rev()
        .zip(new_lines[common_prefix..].iter().rev())
        .take_while(|(a, b)| a == b)
        .count();
    let old_mid = &old_lines[common_prefix..old_lines.len() - common_suffix];
    let new_mid = &new_lines[common_prefix..new_lines.len() - common_suffix];

    let mut out = format!("--- {old_label}\n+++ {new_label}\n");
    out.push_str(&format!(
        "@@ line {} ({} pinned / {} actual lines differ) @@\n",
        common_prefix + 1,
        old_mid.len(),
        new_mid.len()
    ));
    for line in old_lines[common_prefix.saturating_sub(CONTEXT)..common_prefix].iter() {
        out.push_str(&format!(" {line}\n"));
    }
    if old_mid.len().saturating_mul(new_mid.len()) <= MAX_LCS_LINES * MAX_LCS_LINES {
        for (tag, line) in lcs_diff(old_mid, new_mid) {
            out.push_str(&format!("{tag}{line}\n"));
        }
    } else {
        for line in old_mid.iter().take(MAX_LCS_LINES) {
            out.push_str(&format!("-{line}\n"));
        }
        for line in new_mid.iter().take(MAX_LCS_LINES) {
            out.push_str(&format!("+{line}\n"));
        }
        if old_mid.len() > MAX_LCS_LINES || new_mid.len() > MAX_LCS_LINES {
            out.push_str("(diff truncated)\n");
        }
    }
    let suffix_start = old_lines.len() - common_suffix;
    for line in old_lines[suffix_start..(suffix_start + CONTEXT).min(old_lines.len())].iter() {
        out.push_str(&format!(" {line}\n"));
    }
    out
}

/// Classic LCS line diff over a (pre-trimmed) region.
fn lcs_diff<'a>(old: &[&'a str], new: &[&'a str]) -> Vec<(char, &'a str)> {
    let n = old.len();
    let m = new.len();
    // lcs[i][j] = LCS length of old[i..] and new[j..].
    let mut lcs = vec![vec![0u32; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            lcs[i][j] = if old[i] == new[j] {
                lcs[i + 1][j + 1] + 1
            } else {
                lcs[i + 1][j].max(lcs[i][j + 1])
            };
        }
    }
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if old[i] == new[j] {
            out.push((' ', old[i]));
            i += 1;
            j += 1;
        } else if lcs[i + 1][j] >= lcs[i][j + 1] {
            out.push(('-', old[i]));
            i += 1;
        } else {
            out.push(('+', new[j]));
            j += 1;
        }
    }
    out.extend(old[i..].iter().map(|l| ('-', *l)));
    out.extend(new[j..].iter().map(|l| ('+', *l)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_marks_changed_lines() {
        let d = unified_diff("a\nb\nc\nd\n", "a\nB\nc\nd\n", "old", "new");
        assert!(d.contains("-b\n"), "{d}");
        assert!(d.contains("+B\n"), "{d}");
        assert!(d.contains(" a\n"), "{d}");
    }

    #[test]
    fn bless_roundtrips() {
        let dir = std::env::temp_dir().join("xmlpub-testkit-snap-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.snap");
        let _ = fs::remove_file(&path);
        assert!(check(&path, "hello").is_err());
        assert!(bless(&path, "hello").unwrap());
        assert!(!bless(&path, "hello").unwrap());
        check(&path, "hello").unwrap();
        let err = check(&path, "world").unwrap_err();
        assert!(err.contains("-hello"), "{err}");
        let _ = fs::remove_file(&path);
    }
}
