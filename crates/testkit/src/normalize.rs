//! Shared normalization helpers for golden-output comparisons.
//!
//! These grew up copy-pasted across `tests/golden_xml.rs`,
//! `tests/golden_reports.rs`, and `tests/observability.rs`; they live
//! here once now, used both by those tests and by the scenario runner.

use xmlpub::{normalized_tree, SpanRecord};

/// Span names elided from normalized trace trees: worker spans are
/// per-dop by nature.
pub const TRACE_DROP_NAMES: &[&str] = &["gapply.worker"];

/// Span attributes elided from normalized trace trees: timing-ish or
/// dop-dependent values that vary run to run.
pub const TRACE_DROP_ATTRS: &[&str] = &["dop", "self_us", "worker", "groups"];

/// Replace the value after each timing key with `_`. `buckets=` swallows
/// the whole `i:n,...` list; the `_us=` keys swallow the digit run.
pub fn normalize_timings(report: &str) -> String {
    let mut out = String::with_capacity(report.len());
    let mut rest = report;
    'outer: while !rest.is_empty() {
        for key in ["time_us=", "self_us=", "sum_us=", "threshold_us ", "buckets="] {
            if let Some(tail) = rest.strip_prefix(key) {
                let value_len = if key == "buckets=" {
                    tail.find(char::is_whitespace).unwrap_or(tail.len())
                } else {
                    tail.find(|c: char| !c.is_ascii_digit()).unwrap_or(tail.len())
                };
                out.push_str(key);
                out.push('_');
                rest = &tail[value_len..];
                continue 'outer;
            }
        }
        let mut chars = rest.chars();
        out.push(chars.next().unwrap());
        rest = chars.as_str();
    }
    out
}

/// Drop every newline and space — the "pretty and compact only differ
/// in whitespace" comparison from the golden XML tests.
pub fn strip_whitespace(s: &str) -> String {
    s.replace(['\n', ' '], "")
}

/// Parse a trace sink's JSONL contents and render the normalized span
/// tree (span ids, timings, and dop-dependent worker spans elided) —
/// the form that is identical across dop and across runs.
pub fn normalized_span_tree(sink_contents: &str) -> Result<String, String> {
    let records = SpanRecord::parse_all(sink_contents)
        .map_err(|e| format!("trace output must parse: {e}"))?;
    Ok(normalized_tree(&records, TRACE_DROP_NAMES, TRACE_DROP_ATTRS))
}

/// Reduce an `\explain --analyze` report from [`xmlpub_server::Session::execute_analyzed`]
/// to its matrix-invariant parts:
///
/// * the `== optimized plan ==` section is kept verbatim (plan shape
///   does not depend on engine knobs);
/// * the `== operators (analyze) ==` section is dropped — batch counts,
///   `next()` calls, and timings all legitimately vary across the
///   batch-size axis;
/// * the `== engine counters ==` section keeps the `ExecStats` line
///   with the plan-cache counters scrubbed (they vary cold/warm), and
///   drops the `batch size` / `dop` lines (those *are* the matrix);
/// * the `== server counters ==` section is dropped — pool and cache
///   totals depend on how many requests the cell has already run.
pub fn analyze_snapshot(report: &str) -> String {
    let mut out = String::new();
    let mut section = "";
    for line in report.lines() {
        if line.starts_with("== ") {
            section = line;
            if matches!(section, "== optimized plan ==" | "== engine counters ==") {
                if !out.is_empty() {
                    out.push('\n');
                }
                out.push_str(line);
                out.push('\n');
            }
            continue;
        }
        match section {
            "== optimized plan ==" if !line.is_empty() => {
                out.push_str(line);
                out.push('\n');
            }
            "== engine counters ==" => {
                let t = line.trim_start();
                if t.starts_with("batch size") || t.starts_with("dop ") || t.is_empty() {
                    continue;
                }
                out.push_str(&scrub_plan_cache_counters(line));
                out.push('\n');
            }
            _ => {}
        }
    }
    out
}

/// Replace the digits after `plan_cache_hits:` / `plan_cache_misses:`
/// with `_` — those counters record how *this* request was planned,
/// which is exactly what the cold/warm axis varies.
pub fn scrub_plan_cache_counters(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut rest = line;
    'outer: while !rest.is_empty() {
        for key in ["plan_cache_hits: ", "plan_cache_misses: "] {
            if let Some(tail) = rest.strip_prefix(key) {
                let value_len = tail.find(|c: char| !c.is_ascii_digit()).unwrap_or(tail.len());
                out.push_str(key);
                out.push('_');
                rest = &tail[value_len..];
                continue 'outer;
            }
        }
        let mut chars = rest.chars();
        out.push(chars.next().unwrap());
        rest = chars.as_str();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timings_are_scrubbed() {
        let s = "a time_us=123 b self_us=9 sum_us=77 threshold_us 5 buckets=0:1,2:3 end";
        assert_eq!(
            normalize_timings(s),
            "a time_us=_ b self_us=_ sum_us=_ threshold_us _ buckets=_ end"
        );
    }

    #[test]
    fn analyze_report_is_reduced_to_invariants() {
        let report = "\
== optimized plan ==
GroupBy keys=[k]
  Scan t

== operators (analyze) ==
HashAggregate  rows_in=800 rows_out=800 batches=800 open=1 next=801 close=1 time_us=3 self_us=1

== engine counters ==
  batch size 1
  dop 4 (session 4, server cap 4)
  ExecStats { rows_scanned: 1000, plan_cache_hits: 1, plan_cache_misses: 0 }

== server counters ==
  pool: 9 admitted
";
        let snap = analyze_snapshot(report);
        assert_eq!(
            snap,
            "\
== optimized plan ==
GroupBy keys=[k]
  Scan t

== engine counters ==
  ExecStats { rows_scanned: 1000, plan_cache_hits: _, plan_cache_misses: _ }
"
        );
    }
}
