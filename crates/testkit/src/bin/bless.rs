//! Re-pin every scenario snapshot in the corpus.
//!
//! ```text
//! cargo run -p xmlpub-testkit --bin bless [-- --corpus DIR]
//! ```
//!
//! Runs each scenario across its full knob matrix (so a snapshot can
//! only be blessed if it is already byte-identical in every cell) and
//! rewrites the `.snap` files that changed. CI runs this and then
//! `git diff --exit-code` to catch stale pins.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut corpus: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--corpus" => match args.next() {
                Some(dir) => corpus = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--corpus needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("usage: bless [--corpus DIR]   (default: <workspace>/tests/scenarios)");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    let corpus = corpus.unwrap_or_else(|| {
        // crates/testkit/ → workspace root.
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/scenarios")
    });
    match xmlpub_testkit::bless_dir(&corpus) {
        Ok(results) => {
            let changed = results.iter().filter(|(_, c)| *c).count();
            for (path, c) in &results {
                println!("{} {}", if *c { "blessed " } else { "unchanged" }, path.display());
            }
            println!("{} snapshot(s), {} rewritten", results.len(), changed);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bless failed: {e}");
            ExitCode::FAILURE
        }
    }
}
