//! `xmlpub-testkit` — the declarative scenario corpus runner.
//!
//! A *scenario* is a data file (`tests/scenarios/**/*.scn`, see
//! [`scenario`]) describing a catalog setup and a statement sequence.
//! The [`runner`] executes each scenario across the full knob matrix —
//! batch size × dop × plan-cache cold/warm × trace off/on, plus a
//! full-recompute oracle for every incremental republish — and asserts
//! the rendered output (rows, plans, invariant engine counters,
//! published XML) is byte-identical in every cell *and* to the pinned
//! `.snap` file next to the scenario.
//!
//! Adding a scenario is a data-only change: drop a `.scn` file in the
//! corpus, run `cargo run -p xmlpub-testkit --bin bless` (or
//! `XMLPUB_BLESS=1 cargo test`) to pin its snapshot, and review the
//! generated `.snap` like any other golden file. See `docs/testing.md`.

pub mod normalize;
pub mod runner;
pub mod scenario;
pub mod snapshot;

use std::path::{Path, PathBuf};

pub use runner::render_scenario;
pub use scenario::Scenario;

/// Environment variable that switches snapshot checking to blessing.
pub const BLESS_ENV: &str = "XMLPUB_BLESS";

/// The `.snap` path for a scenario file: same directory, same stem.
pub fn snap_path(scn: &Path) -> PathBuf {
    scn.with_extension("snap")
}

/// All `.scn` files under `dir`, recursively, in sorted order.
pub fn scenario_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    collect_scn(dir, &mut out)?;
    out.sort();
    Ok(out)
}

fn collect_scn(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_scn(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "scn") {
            out.push(path);
        }
    }
    Ok(())
}

/// Run one scenario file: execute the matrix, then check the snapshot
/// (or re-pin it when `XMLPUB_BLESS=1`).
pub fn run_scenario_file(path: &Path) -> Result<(), String> {
    let sc = scenario::parse_file(path)?;
    let rendered = runner::render_scenario(&sc)?;
    let snap = snap_path(path);
    if std::env::var(BLESS_ENV).map(|v| v == "1").unwrap_or(false) {
        snapshot::bless(&snap, &rendered)?;
        Ok(())
    } else {
        snapshot::check(&snap, &rendered)
    }
}

/// Run every scenario under `dir`, collecting all failures. Returns the
/// number of scenarios run. This is what `tests/scenario_corpus.rs`
/// calls — a new scenario file is picked up with zero new Rust.
pub fn run_dir(dir: &Path) -> Result<usize, String> {
    let files = scenario_files(dir)?;
    if files.is_empty() {
        return Err(format!("no .scn files under {}", dir.display()));
    }
    let mut failures = Vec::new();
    for file in &files {
        if let Err(e) = run_scenario_file(file) {
            failures.push(format!("• {}:\n{e}", file.display()));
        }
    }
    if failures.is_empty() {
        Ok(files.len())
    } else {
        Err(format!(
            "{} of {} scenario(s) failed:\n\n{}",
            failures.len(),
            files.len(),
            failures.join("\n\n")
        ))
    }
}

/// Re-bless every scenario under `dir`; returns `(path, changed)` per
/// scenario. Used by the `bless` binary and the CI drift check.
pub fn bless_dir(dir: &Path) -> Result<Vec<(PathBuf, bool)>, String> {
    let files = scenario_files(dir)?;
    if files.is_empty() {
        return Err(format!("no .scn files under {}", dir.display()));
    }
    let mut out = Vec::new();
    for file in &files {
        let sc = scenario::parse_file(file)?;
        let rendered =
            runner::render_scenario(&sc).map_err(|e| format!("{}: {e}", file.display()))?;
        let snap = snap_path(file);
        let changed = snapshot::bless(&snap, &rendered)?;
        out.push((snap, changed));
    }
    Ok(out)
}
