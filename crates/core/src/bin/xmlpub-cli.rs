//! `xmlpub-cli` — an interactive SQL shell over a generated TPC-H
//! database, with the paper's `gapply` syntax available.
//!
//! ```text
//! cargo run --release -p xmlpub --bin xmlpub-cli [-- --scale 0.01 --full]
//! ```
//!
//! Meta commands:
//!   \d              list tables
//!   \explain [--verify|--analyze] <sql>
//!                   show bound plan, optimized plan, fired rules (with
//!                   --verify: lint every rewrite and the final plan;
//!                   with --analyze: run the query and show per-operator
//!                   runtime counters)
//!   \lint <sql>     run the plan linter on the bound plan
//!   \stats <sql>    run and show engine counters
//!   \batch [<n>]    set (or show) the engine batch-size target; 1 is
//!                   tuple-at-a-time
//!   \publish        publish the Figure 1 supplier/part view as XML
//!   \raw on|off     toggle the optimizer
//!   \sort | \hash   GApply partition strategy
//!   \q              quit

use std::io::{BufRead, Write};
use xmlpub::{Database, PartitionStrategy};

fn main() {
    let mut scale = 0.005f64;
    let mut full = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                scale = args.next().and_then(|v| v.parse().ok()).expect("--scale needs a number")
            }
            "--full" => full = true,
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    let mut db = if full {
        Database::tpch_full(scale).expect("generate TPC-H")
    } else {
        Database::tpch(scale).expect("generate TPC-H")
    };
    println!("xmlpub — GApply SQL shell (TPC-H scale {scale}). \\q to quit, \\d for tables.");

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("xmlpub> ");
        } else {
            print!("   ...> ");
        }
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('\\') {
            if !meta_command(trimmed, &mut db) {
                break;
            }
            continue;
        }
        buffer.push_str(&line);
        // Execute on a terminating semicolon (or a blank line).
        if trimmed.ends_with(';') || (trimmed.is_empty() && !buffer.trim().is_empty()) {
            run_sql(&db, buffer.trim());
            buffer.clear();
        }
    }
}

fn run_sql(db: &Database, sql: &str) {
    if sql.is_empty() {
        return;
    }
    match db.sql(sql) {
        Ok(result) => {
            let shown = result.rows().len().min(40);
            let preview = xmlpub::Relation::from_rows_unchecked(
                result.schema().clone(),
                result.rows()[..shown].to_vec(),
            );
            print!("{}", preview.to_table_string());
            if shown < result.len() {
                println!("({} rows, showing first {shown})", result.len());
            } else {
                println!("({} rows)", result.len());
            }
        }
        Err(e) => eprintln!("{e}"),
    }
}

/// Returns false to quit.
fn meta_command(cmd: &str, db: &mut Database) -> bool {
    let (name, rest) = match cmd.split_once(' ') {
        Some((n, r)) => (n, r.trim()),
        None => (cmd, ""),
    };
    match name {
        "\\q" => return false,
        "\\d" => {
            for t in db.catalog().tables() {
                println!(
                    "  {:<10} {:>8} rows   {}",
                    t.name,
                    db.statistics().rows(&t.name),
                    t.schema
                );
            }
        }
        "\\explain" => {
            if let Some(s) = rest.strip_prefix("--analyze") {
                if s.is_empty() || s.starts_with(char::is_whitespace) {
                    match db.sql_analyzed(s.trim()) {
                        Ok((result, report)) => {
                            println!("{report}");
                            println!("({} rows)", result.len());
                        }
                        Err(e) => eprintln!("{e}"),
                    }
                    return true;
                }
            }
            let (verify, sql) = match rest.strip_prefix("--verify") {
                Some(s) if s.is_empty() || s.starts_with(char::is_whitespace) => (true, s.trim()),
                _ => (false, rest),
            };
            match db.explain_with(sql, verify) {
                Ok(text) => println!("{text}"),
                Err(e) => eprintln!("{e}"),
            }
        }
        "\\lint" => match db.lint(rest) {
            Ok(diags) if diags.is_empty() => println!("clean: no lint diagnostics"),
            Ok(diags) => {
                for d in &diags {
                    println!("{d}");
                }
                println!("({} diagnostic(s))", diags.len());
            }
            Err(e) => eprintln!("{e}"),
        },
        "\\stats" => match db.sql_with_stats(rest) {
            Ok((result, stats)) => {
                println!("{} rows", result.len());
                println!("{stats:#?}");
            }
            Err(e) => eprintln!("{e}"),
        },
        "\\batch" => {
            if rest.is_empty() {
                println!("batch size {}", db.config().engine.batch_size);
            } else {
                match rest.parse::<usize>() {
                    Ok(n) => {
                        let n = n.max(1);
                        db.config_mut().engine.batch_size = n;
                        println!(
                            "batch size {n}{}",
                            if n == 1 { " (tuple-at-a-time)" } else { "" }
                        );
                    }
                    Err(_) => eprintln!("\\batch needs a positive integer"),
                }
            }
        }
        "\\publish" => {
            match xmlpub::xml::supplier_parts_view(db.catalog())
                .and_then(|view| db.publish(&view, true))
            {
                Ok(xml) => {
                    for line in xml.lines().take(30) {
                        println!("{line}");
                    }
                    println!("... ({} lines total)", xml.lines().count());
                }
                Err(e) => eprintln!("{e}"),
            }
        }
        "\\raw" => {
            let on = rest.eq_ignore_ascii_case("on");
            db.config_mut().skip_optimizer = on;
            println!("optimizer {}", if on { "disabled" } else { "enabled" });
        }
        "\\sort" => {
            db.config_mut().engine.partition_strategy = PartitionStrategy::Sort;
            println!("GApply partitioning: sort");
        }
        "\\hash" => {
            db.config_mut().engine.partition_strategy = PartitionStrategy::Hash;
            println!("GApply partitioning: hash");
        }
        other => {
            eprintln!(
                "unknown command {other}; try \\d \\explain \\lint \\stats \\batch \\publish \\q"
            )
        }
    }
    true
}
