//! `xmlpub` — the public facade of the reproduction.
//!
//! A downstream user gets one type, [`Database`]: register tables (or
//! generate TPC-H data), run SQL — including the paper's `gapply`
//! extension — through the full parse → bind → optimize → execute stack,
//! inspect plans before and after the §4 transformation rules, and
//! publish XML views through the sorted-outer-union + constant-space
//! tagger pipeline.
//!
//! ```
//! use xmlpub::Database;
//!
//! let db = Database::tpch(0.001).unwrap();
//! let result = db
//!     .sql(
//!         "select gapply(select count(*), avg(p_retailprice) from g) as (n, avgprice) \
//!          from partsupp, part where ps_partkey = p_partkey \
//!          group by ps_suppkey : g",
//!     )
//!     .unwrap();
//! assert_eq!(result.len(), 10); // one row per supplier at SF 0.001
//! ```

pub mod database;

pub use database::{Config, Database};

// Re-export the workspace layers under stable paths.
pub use xmlpub_algebra as algebra;
pub use xmlpub_common as common;
pub use xmlpub_engine as engine;
pub use xmlpub_expr as expr;
pub use xmlpub_lint as lint;
pub use xmlpub_obs as obs;
pub use xmlpub_optimizer as optimizer;
pub use xmlpub_sql as sql;
pub use xmlpub_tpch as tpch;
pub use xmlpub_xml as xml;

// The everyday types at the crate root.
pub use xmlpub_algebra::{Catalog, LogicalPlan, TableDef};
pub use xmlpub_common::{
    ColumnVec, DataType, Error, Field, NullBitmap, Relation, Result, Schema, Tuple, TupleBatch,
    Value, DEFAULT_BATCH_SIZE,
};
pub use xmlpub_engine::{EngineConfig, ExecStats, OpProfile, PartitionStrategy};
pub use xmlpub_lint::{Diagnostic, LintRegistry, Severity};
pub use xmlpub_obs::{
    normalized_tree, parse_text, render_text, BufferSink, MetricsHandle, MetricsSnapshot,
    ObsContext, Observability, Registry, SpanRecord, TraceHandle,
};
pub use xmlpub_optimizer::{OptimizerConfig, RuleFiring};
