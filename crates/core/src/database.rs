//! The `Database` facade.

use xmlpub_algebra::{validate, Catalog, LogicalPlan, TableDef};
use xmlpub_common::{Relation, Result};
use xmlpub_engine::{
    execute_analyzed, execute_stream, execute_with_stats, render_profiles, EngineConfig, ExecStats,
};
use xmlpub_lint::{Diagnostic, LintRegistry};
use xmlpub_optimizer::{Optimizer, OptimizerConfig, RuleFiring, Statistics};
use xmlpub_sql::{parse, Binder};
use xmlpub_tpch::TpchGenerator;
use xmlpub_xml::souq::sorted_outer_union;
use xmlpub_xml::view::XmlView;
use xmlpub_xml::StreamingTagger;

/// End-to-end configuration: which rules the optimizer may fire and how
/// the engine executes (partition strategy, apply caching).
#[derive(Debug, Clone, Copy, Default)]
pub struct Config {
    /// Optimizer rule flags (§4). Default: everything on, cost-gated
    /// group/aggregate selection.
    pub optimizer: OptimizerConfig,
    /// Engine knobs (§3 partitioning strategy, apply caching).
    pub engine: EngineConfig,
    /// Skip the optimizer entirely (run bound plans as-is). Useful for
    /// the with/without-rule experiments.
    pub skip_optimizer: bool,
}

/// An in-memory database: catalog + statistics + configuration.
pub struct Database {
    catalog: Catalog,
    stats: Statistics,
    config: Config,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database { catalog: Catalog::new(), stats: Statistics::empty(), config: Config::default() }
    }

    /// Wrap an existing catalog (gathers statistics immediately).
    pub fn from_catalog(catalog: Catalog) -> Self {
        let stats = Statistics::from_catalog(&catalog);
        Database { catalog, stats, config: Config::default() }
    }

    /// A database pre-loaded with the three core TPC-H tables
    /// (supplier, part, partsupp) at the given scale factor.
    pub fn tpch(scale: f64) -> Result<Self> {
        Ok(Database::from_catalog(TpchGenerator::with_scale(scale).core_catalog()?))
    }

    /// A database pre-loaded with all seven TPC-H tables.
    pub fn tpch_full(scale: f64) -> Result<Self> {
        Ok(Database::from_catalog(TpchGenerator::with_scale(scale).catalog()?))
    }

    /// Register a table and refresh statistics.
    pub fn register_table(&mut self, def: TableDef, data: Relation) -> Result<()> {
        self.catalog.register(def, data)?;
        self.stats = Statistics::from_catalog(&self.catalog);
        Ok(())
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The gathered statistics.
    pub fn statistics(&self) -> &Statistics {
        &self.stats
    }

    /// Current configuration.
    pub fn config(&self) -> Config {
        self.config
    }

    /// Mutable configuration access.
    pub fn config_mut(&mut self) -> &mut Config {
        &mut self.config
    }

    /// Parse and bind a SQL query (no optimization).
    pub fn plan(&self, sql: &str) -> Result<LogicalPlan> {
        let query = parse(sql)?;
        let plan = Binder::new(&self.catalog).bind_query(&query)?;
        validate(&plan)?;
        Ok(plan)
    }

    /// Parse, bind and optimize, returning the plan and the rule firings.
    pub fn optimized_plan(&self, sql: &str) -> Result<(LogicalPlan, Vec<RuleFiring>)> {
        let plan = self.plan(sql)?;
        self.optimize_plan(plan)
    }

    /// Optimize a pre-built (bound) plan under this database's
    /// configuration — the shared back half of [`Database::optimized_plan`],
    /// also used by the publishing pipeline and the server's plan cache.
    pub fn optimize_plan(&self, plan: LogicalPlan) -> Result<(LogicalPlan, Vec<RuleFiring>)> {
        if self.config.skip_optimizer {
            return Ok((plan, Vec::new()));
        }
        let optimizer = Optimizer::new(self.config.optimizer, &self.stats);
        let (optimized, log) = optimizer.optimize(plan);
        validate(&optimized)?;
        Ok((optimized, log))
    }

    /// Run a SQL query end-to-end.
    pub fn sql(&self, sql: &str) -> Result<Relation> {
        Ok(self.sql_with_stats(sql)?.0)
    }

    /// Run a SQL query end-to-end, also returning the engine counters.
    pub fn sql_with_stats(&self, sql: &str) -> Result<(Relation, ExecStats)> {
        let (plan, _) = self.optimized_plan(sql)?;
        execute_with_stats(&plan, &self.catalog, &self.config.engine)
    }

    /// Run a SQL query with per-operator profiling (`\explain --analyze`):
    /// returns the result plus a report combining the optimized plan, a
    /// per-operator runtime breakdown (opens/next calls/batches/rows) and
    /// the global engine counters.
    pub fn sql_analyzed(&self, sql: &str) -> Result<(Relation, String)> {
        let (plan, _) = self.optimized_plan(sql)?;
        let (result, stats, profiles) =
            execute_analyzed(&plan, &self.catalog, &self.config.engine)?;
        let mut out = String::from("== optimized plan ==\n");
        out.push_str(&plan.explain());
        out.push_str("\n== operators (analyze) ==\n");
        out.push_str(&render_profiles(&profiles));
        out.push_str(&format!(
            "\n== engine counters ==\n  batch size {}\n  {stats:?}\n",
            self.config.engine.batch_size
        ));
        Ok((result, out))
    }

    /// Execute a pre-built logical plan with this database's engine
    /// configuration.
    pub fn execute_plan(&self, plan: &LogicalPlan) -> Result<(Relation, ExecStats)> {
        execute_with_stats(plan, &self.catalog, &self.config.engine)
    }

    /// Run the full lint registry over the bound (unoptimized) plan of a
    /// query. An empty result means the plan satisfies every structural
    /// invariant the linter knows about.
    pub fn lint(&self, sql: &str) -> Result<Vec<Diagnostic>> {
        let plan = self.plan(sql)?;
        Ok(LintRegistry::default().lint_plan(&plan))
    }

    /// EXPLAIN: the bound plan, the optimized plan, and the fired rules
    /// (with the plan path each one fired at).
    pub fn explain(&self, sql: &str) -> Result<String> {
        self.explain_with(sql, false)
    }

    /// [`Database::explain`], optionally with per-rewrite verification:
    /// when `verify` is set, the optimizer lints every rule firing and
    /// the report carries each firing's diagnostics plus a final lint of
    /// both plans.
    pub fn explain_with(&self, sql: &str, verify: bool) -> Result<String> {
        let bound = self.plan(sql)?;
        let (optimized, log) = if verify {
            // Force per-firing verification regardless of build profile.
            let mut config = self.config.optimizer;
            config.verify_rewrites = true;
            if self.config.skip_optimizer {
                (bound.clone(), Vec::new())
            } else {
                let (optimized, log) = Optimizer::new(config, &self.stats).optimize(bound.clone());
                validate(&optimized)?;
                (optimized, log)
            }
        } else {
            self.optimized_plan(sql)?
        };
        let mut out = String::from("== bound plan ==\n");
        out.push_str(&bound.explain());
        out.push_str("\n== optimized plan ==\n");
        out.push_str(&optimized.explain());
        if !log.is_empty() {
            out.push_str("\n== rules fired ==\n");
            for f in &log {
                out.push_str(&format!("  {} at {}\n", f.rule, f.path));
                for d in &f.diagnostics {
                    out.push_str(&format!("    {d}\n"));
                }
            }
        }
        if verify {
            out.push_str("\n== lint ==\n");
            let diags = LintRegistry::default().lint_plan(&optimized);
            if diags.is_empty() {
                let fired = log.iter().filter(|f| !f.diagnostics.is_empty()).count();
                if fired == 0 {
                    out.push_str("  clean: every firing and the final plan pass all lint passes\n");
                } else {
                    out.push_str(&format!(
                        "  final plan clean, but {fired} firing(s) carry diagnostics (above)\n"
                    ));
                }
            } else {
                for d in &diags {
                    out.push_str(&format!("  {d}\n"));
                }
            }
        }
        Ok(out)
    }

    /// Publish an XML view: build the sorted outer union, execute it and
    /// run the constant-space tagger, collecting the document into a
    /// `String`. Streams internally — see [`Database::publish_to`].
    pub fn publish(&self, view: &XmlView, pretty: bool) -> Result<String> {
        let bytes = self.publish_to(view, pretty, Vec::new())?;
        Ok(String::from_utf8(bytes).expect("tagger emits UTF-8 only"))
    }

    /// Publish an XML view incrementally into an [`io::Write`] sink: the
    /// sorted-outer-union plan is executed as a batch stream and each
    /// batch is tagged and written as it arrives, so peak memory is one
    /// batch plus the tagger's open-element stack — never the whole
    /// document or the whole relational result. Returns the sink.
    ///
    /// [`io::Write`]: std::io::Write
    pub fn publish_to<W: std::io::Write>(
        &self,
        view: &XmlView,
        pretty: bool,
        sink: W,
    ) -> Result<W> {
        let sou = sorted_outer_union(view)?;
        let (plan, _) = self.optimize_plan(sou.plan.clone())?;
        let mut stream = execute_stream(&plan, &self.catalog, &self.config.engine)?;
        let mut tagger = StreamingTagger::new(sink, &sou.tag_plan, pretty);
        while let Some(batch) = stream.next_batch()? {
            for row in batch.rows() {
                tagger.write_row(row)?;
            }
        }
        tagger.finish()
    }
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlpub_common::{row, DataType, Field, Schema, Value};

    #[test]
    fn empty_database_register_and_query() {
        let mut db = Database::new();
        let def = TableDef::new(
            "t",
            Schema::new(vec![Field::new("k", DataType::Int), Field::new("v", DataType::Float)]),
        );
        let data = Relation::new(def.schema.clone(), vec![row![1, 2.0], row![1, 4.0]]).unwrap();
        db.register_table(def, data).unwrap();
        let r = db.sql("select k, avg(v) from t group by k").unwrap();
        assert_eq!(r.rows(), &[row![1, 3.0]]);
        assert_eq!(db.statistics().rows("t"), 2);
    }

    #[test]
    fn tpch_database_runs_gapply() {
        let db = Database::tpch(0.001).unwrap();
        let (r, stats) = db
            .sql_with_stats(
                "select gapply(select max(p_retailprice) from g) as (maxp) \
                 from partsupp, part where ps_partkey = p_partkey \
                 group by ps_suppkey : g",
            )
            .unwrap();
        assert_eq!(r.len(), 10);
        // The pure-aggregate PGQ converts to a plain group-by, so no
        // groups are processed by a GApply operator at all.
        assert_eq!(stats.groups_processed, 0);
    }

    #[test]
    fn skip_optimizer_keeps_gapply() {
        let mut db = Database::tpch(0.001).unwrap();
        db.config_mut().skip_optimizer = true;
        let (r, stats) = db
            .sql_with_stats(
                "select gapply(select max(p_retailprice) from g) as (maxp) \
                 from partsupp, part where ps_partkey = p_partkey \
                 group by ps_suppkey : g",
            )
            .unwrap();
        assert_eq!(r.len(), 10);
        assert_eq!(stats.groups_processed, 10);
    }

    #[test]
    fn explain_mentions_rules() {
        let db = Database::tpch(0.001).unwrap();
        let text = db
            .explain(
                "select gapply(select avg(p_retailprice) from g) \
                 from partsupp, part where ps_partkey = p_partkey \
                 group by ps_suppkey : g",
            )
            .unwrap();
        assert!(text.contains("== bound plan =="), "{text}");
        assert!(text.contains("GApply"), "{text}");
        assert!(text.contains("gapply-to-groupby"), "{text}");
    }

    #[test]
    fn lint_reports_clean_for_valid_queries() {
        let db = Database::tpch(0.001).unwrap();
        let diags = db
            .lint(
                "select gapply(select max(p_retailprice) from g) as (maxp) \
                 from partsupp, part where ps_partkey = p_partkey \
                 group by ps_suppkey : g",
            )
            .unwrap();
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn verified_explain_reports_clean_lint() {
        let db = Database::tpch(0.001).unwrap();
        let text = db
            .explain_with(
                "select gapply(select avg(p_retailprice) from g) \
                 from partsupp, part where ps_partkey = p_partkey \
                 group by ps_suppkey : g",
                true,
            )
            .unwrap();
        assert!(text.contains("== lint =="), "{text}");
        assert!(text.contains("clean"), "{text}");
        // Firings carry the plan path they applied at.
        assert!(text.contains(" at $"), "{text}");
    }

    #[test]
    fn sql_analyzed_reports_operator_breakdown() {
        let db = Database::tpch(0.001).unwrap();
        let (r, report) =
            db.sql_analyzed("select p_name from part where p_retailprice > 1500.0").unwrap();
        let plain = db.sql("select p_name from part where p_retailprice > 1500.0").unwrap();
        assert!(r.bag_eq(&plain), "{}", r.bag_diff(&plain));
        assert!(report.contains("== operators (analyze) =="), "{report}");
        assert!(report.contains("TableScan(part)"), "{report}");
        assert!(report.contains("rows_out"), "{report}");
    }

    #[test]
    fn batch_size_one_matches_default() {
        let mut db = Database::tpch(0.001).unwrap();
        let sql = "select gapply(select p_name, max(p_retailprice) from g group by p_name) \
                   from partsupp, part where ps_partkey = p_partkey group by ps_suppkey : g";
        let batched = db.sql(sql).unwrap();
        db.config_mut().engine.batch_size = 1;
        let tuple_at_a_time = db.sql(sql).unwrap();
        assert!(batched.bag_eq(&tuple_at_a_time), "{}", batched.bag_diff(&tuple_at_a_time));
    }

    #[test]
    fn publish_produces_xml() {
        let db = Database::tpch(0.001).unwrap();
        let view = xmlpub_xml::supplier_parts_view(db.catalog()).unwrap();
        let xml = db.publish(&view, false).unwrap();
        assert!(xml.starts_with("<suppliers>"));
        assert_eq!(xml.matches("<supplier s_suppkey=").count(), 10);
    }

    #[test]
    fn publish_to_sink_matches_publish_string() {
        let db = Database::tpch(0.001).unwrap();
        let view = xmlpub_xml::supplier_parts_view(db.catalog()).unwrap();
        for pretty in [false, true] {
            let s = db.publish(&view, pretty).unwrap();
            let bytes = db.publish_to(&view, pretty, Vec::new()).unwrap();
            assert_eq!(s.as_bytes(), &bytes[..], "pretty={pretty}");
        }
    }

    #[test]
    fn optimizer_and_unoptimized_agree() {
        let db = Database::tpch(0.001).unwrap();
        let mut db_raw = Database::tpch(0.001).unwrap();
        db_raw.config_mut().skip_optimizer = true;
        for sql in [
            "select gapply(select p_name from g where p_retailprice > 1500.0) \
             from partsupp, part where ps_partkey = p_partkey group by ps_suppkey : g",
            "select gapply(select count(*), null from g where p_retailprice >= \
               (select avg(p_retailprice) from g) \
             union all select null, count(*) from g where p_retailprice < \
               (select avg(p_retailprice) from g)) \
             from partsupp, part where ps_partkey = p_partkey group by ps_suppkey : g",
        ] {
            let a = db.sql(sql).unwrap();
            let b = db_raw.sql(sql).unwrap();
            assert!(a.bag_eq(&b), "{sql}\n{}", a.bag_diff(&b));
        }
    }

    #[test]
    fn error_surfaces_from_all_layers() {
        let db = Database::tpch(0.001).unwrap();
        assert!(db.sql("selectt nonsense").is_err()); // parse
        assert!(db.sql("select nope from part").is_err()); // bind
        let r = db.sql("select p_name from part where p_retailprice > 'x'");
        assert!(r.is_err()); // execution type error
    }

    #[test]
    fn partition_strategy_is_configurable() {
        let mut db = Database::tpch(0.001).unwrap();
        db.config_mut().skip_optimizer = true;
        let sql = "select gapply(select min(p_retailprice) from g) \
                   from partsupp, part where ps_partkey = p_partkey \
                   group by ps_suppkey : g";
        let hash = db.sql(sql).unwrap();
        db.config_mut().engine.partition_strategy = xmlpub_engine::PartitionStrategy::Sort;
        let sort = db.sql(sql).unwrap();
        assert!(hash.bag_eq(&sort), "{}", hash.bag_diff(&sort));
        // Sort partitioning clusters output by key.
        let keys: Vec<Value> = sort.rows().iter().map(|r| r.value(0).clone()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }
}
