//! The `Database` facade.

use std::time::Instant;

use xmlpub_algebra::{validate, Catalog, LogicalPlan, TableDef};
use xmlpub_analysis::explain_with_properties;
use xmlpub_common::{Error, Relation, Result};
use xmlpub_engine::{
    emit_operator_spans, execute_stream, execute_stream_with_obs, execute_with_stats,
    render_profiles, EngineConfig, ExecStats, OpProfile,
};
use xmlpub_lint::{Diagnostic, LintRegistry};
use xmlpub_obs::{saturating_ns_since, saturating_us_since, Observability, SpanId};
use xmlpub_optimizer::{Optimizer, OptimizerConfig, RuleFiring, Statistics};
use xmlpub_sql::{parse, Binder};
use xmlpub_tpch::TpchGenerator;
use xmlpub_xml::souq::sorted_outer_union;
use xmlpub_xml::view::XmlView;
use xmlpub_xml::StreamingTagger;

/// End-to-end configuration: which rules the optimizer may fire and how
/// the engine executes (partition strategy, apply caching).
#[derive(Debug, Clone, Copy, Default)]
pub struct Config {
    /// Optimizer rule flags (§4). Default: everything on, cost-gated
    /// group/aggregate selection.
    pub optimizer: OptimizerConfig,
    /// Engine knobs (§3 partitioning strategy, apply caching).
    pub engine: EngineConfig,
    /// Skip the optimizer entirely (run bound plans as-is). Useful for
    /// the with/without-rule experiments.
    pub skip_optimizer: bool,
}

/// An in-memory database: catalog + statistics + configuration.
pub struct Database {
    catalog: Catalog,
    stats: Statistics,
    config: Config,
    obs: Observability,
}

impl Database {
    /// An empty database. Observability is configured from the
    /// environment (`XMLPUB_TRACE`, `XMLPUB_METRICS`) and fully
    /// disabled by default.
    pub fn new() -> Self {
        Database {
            catalog: Catalog::new(),
            stats: Statistics::empty(),
            config: Config::default(),
            obs: Observability::from_env(),
        }
    }

    /// Wrap an existing catalog (gathers statistics immediately).
    pub fn from_catalog(catalog: Catalog) -> Self {
        let stats = Statistics::from_catalog(&catalog);
        Database { catalog, stats, config: Config::default(), obs: Observability::from_env() }
    }

    /// A database pre-loaded with the three core TPC-H tables
    /// (supplier, part, partsupp) at the given scale factor.
    pub fn tpch(scale: f64) -> Result<Self> {
        Ok(Database::from_catalog(TpchGenerator::with_scale(scale).core_catalog()?))
    }

    /// A database pre-loaded with all seven TPC-H tables.
    pub fn tpch_full(scale: f64) -> Result<Self> {
        Ok(Database::from_catalog(TpchGenerator::with_scale(scale).catalog()?))
    }

    /// Register a table and refresh statistics.
    pub fn register_table(&mut self, def: TableDef, data: Relation) -> Result<()> {
        self.catalog.register(def, data)?;
        self.stats = Statistics::from_catalog(&self.catalog);
        Ok(())
    }

    /// Apply a batch of appends/deletes to a base table, returning the
    /// table's new version. Takes `&self`: the catalog's table store is
    /// interior-mutable and versioned, so readers running concurrently
    /// keep the snapshot they started on. The planner statistics are
    /// deliberately *not* refreshed per batch — they only steer cost
    /// decisions (key/FK facts come from the immutable definitions),
    /// and re-deriving them would make update cost proportional to the
    /// data instead of the delta. Call [`Database::refresh_statistics`]
    /// after bulk loads where the data distribution shifted materially.
    pub fn apply_delta(&self, table: &str, delta: &xmlpub_common::DeltaBatch) -> Result<u64> {
        self.catalog.apply_delta(table, delta)
    }

    /// Re-gather planner statistics from the current table snapshots.
    pub fn refresh_statistics(&mut self) {
        self.stats = Statistics::from_catalog(&self.catalog);
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The gathered statistics.
    pub fn statistics(&self) -> &Statistics {
        &self.stats
    }

    /// Current configuration.
    pub fn config(&self) -> Config {
        self.config
    }

    /// Mutable configuration access.
    pub fn config_mut(&mut self) -> &mut Config {
        &mut self.config
    }

    /// Observability handles (metrics registry + tracer). Disabled
    /// unless configured via the environment or
    /// [`Database::set_observability`].
    pub fn observability(&self) -> &Observability {
        &self.obs
    }

    /// Install observability handles — e.g. a server-shared metrics
    /// registry or a trace sink pointed at a file/buffer.
    pub fn set_observability(&mut self, obs: Observability) {
        self.obs = obs;
    }

    /// Parse and bind a SQL query (no optimization).
    pub fn plan(&self, sql: &str) -> Result<LogicalPlan> {
        let query = parse(sql)?;
        let plan = Binder::new(&self.catalog).bind_query(&query)?;
        validate(&plan)?;
        Ok(plan)
    }

    /// Parse, bind and optimize, returning the plan and the rule firings.
    pub fn optimized_plan(&self, sql: &str) -> Result<(LogicalPlan, Vec<RuleFiring>)> {
        let plan = self.plan(sql)?;
        self.optimize_plan(plan)
    }

    /// Optimize a pre-built (bound) plan under this database's
    /// configuration — the shared back half of [`Database::optimized_plan`],
    /// also used by the publishing pipeline and the server's plan cache.
    pub fn optimize_plan(&self, plan: LogicalPlan) -> Result<(LogicalPlan, Vec<RuleFiring>)> {
        self.optimize_plan_observed(plan, 0)
    }

    /// [`Database::optimize_plan`] under a parent trace span: when
    /// observability is enabled, each rule firing becomes a child span
    /// and a per-rule counter, and optimizer latency is recorded into
    /// the `query.optimize_us` histogram.
    pub fn optimize_plan_observed(
        &self,
        plan: LogicalPlan,
        parent: SpanId,
    ) -> Result<(LogicalPlan, Vec<RuleFiring>)> {
        if self.config.skip_optimizer {
            return Ok((plan, Vec::new()));
        }
        let start = Instant::now();
        let optimizer = Optimizer::new(self.config.optimizer, &self.stats);
        let obs = self.obs.context(parent);
        let (optimized, log) = if obs.enabled() {
            optimizer.optimize_observed(plan, &obs)
        } else {
            optimizer.optimize(plan)
        };
        self.obs.metrics.record_us("query.optimize_us", saturating_us_since(start));
        validate(&optimized)?;
        Ok((optimized, log))
    }

    /// Run a SQL query end-to-end.
    pub fn sql(&self, sql: &str) -> Result<Relation> {
        Ok(self.sql_with_stats(sql)?.0)
    }

    /// Run a SQL query end-to-end, also returning the engine counters.
    pub fn sql_with_stats(&self, sql: &str) -> Result<(Relation, ExecStats)> {
        let (_, result, stats, _) = self.run_sql(sql, false)?;
        Ok((result, stats))
    }

    /// Run a SQL query with per-operator profiling (`\explain --analyze`):
    /// returns the result plus a report combining the optimized plan, a
    /// per-operator runtime breakdown (opens/next calls/batches/rows) and
    /// the global engine counters.
    pub fn sql_analyzed(&self, sql: &str) -> Result<(Relation, String)> {
        let (plan, result, stats, profiles) = self.run_sql(sql, true)?;
        let mut out = String::from("== optimized plan ==\n");
        out.push_str(&plan.explain());
        out.push_str("\n== operators (analyze) ==\n");
        out.push_str(&render_profiles(&profiles));
        out.push_str(&format!(
            "\n== engine counters ==\n  batch size {}\n  {stats:?}\n",
            self.config.engine.batch_size
        ));
        Ok((result, out))
    }

    /// The shared SQL execution path: parse → optimize → execute, each
    /// phase wrapped in a trace span and a latency histogram when
    /// observability is enabled. `profile` forces per-operator
    /// profiling (as does an enabled tracer, which synthesizes one
    /// `op:<label>` span per profiled operator after execution so the
    /// hot path never touches the tracer).
    fn run_sql(
        &self,
        sql: &str,
        profile: bool,
    ) -> Result<(LogicalPlan, Relation, ExecStats, Vec<OpProfile>)> {
        if !self.obs.enabled() {
            let (plan, _) = self.optimized_plan(sql)?;
            let mut engine = self.config.engine;
            engine.profile_ops = engine.profile_ops || profile;
            let (result, stats, profiles) =
                execute_stream(&plan, &self.catalog, &engine)?.materialize()?;
            return Ok((plan, result, stats, profiles));
        }
        let start = Instant::now();
        let mut qspan = self.obs.tracer.span("query", 0, &[("sql", sql)]);
        let qid = qspan.id();
        let plan = self.plan_observed(sql, qid)?;
        let (plan, _) = self.optimize_plan_observed(plan, qid)?;
        let (result, stats, profiles) = self.execute_observed(&plan, qid, profile)?;
        qspan.annotate("rows", &result.len().to_string());
        self.obs.metrics.add("query.count", 1);
        self.obs.metrics.record_us("query.total_us", saturating_us_since(start));
        Ok((plan, result, stats, profiles))
    }

    /// [`Database::plan`] under a parent trace span, recording
    /// parse+bind latency into the `query.parse_us` histogram.
    fn plan_observed(&self, sql: &str, parent: SpanId) -> Result<LogicalPlan> {
        let start = Instant::now();
        let _span = self.obs.tracer.span("parse", parent, &[]);
        let plan = self.plan(sql);
        self.obs.metrics.record_us("query.parse_us", saturating_us_since(start));
        plan
    }

    /// Execute an optimized plan under a parent trace span: the engine
    /// runs with an `execute` span (per-worker spans nest under it via
    /// the context), per-operator spans are synthesized from the
    /// collected profiles, and latency lands in `query.exec_us`.
    fn execute_observed(
        &self,
        plan: &LogicalPlan,
        parent: SpanId,
        profile: bool,
    ) -> Result<(Relation, ExecStats, Vec<OpProfile>)> {
        let start = Instant::now();
        let mut engine = self.config.engine;
        engine.profile_ops = engine.profile_ops || profile || self.obs.tracer.enabled();
        let mut espan =
            self.obs.tracer.span("execute", parent, &[("dop", &engine.dop.to_string())]);
        let stream =
            execute_stream_with_obs(plan, &self.catalog, &engine, self.obs.context(espan.id()))?;
        let (result, stats, profiles) = stream.materialize()?;
        emit_operator_spans(&self.obs.tracer, espan.id(), &profiles);
        espan.annotate("rows", &result.len().to_string());
        self.obs.metrics.record_us("query.exec_us", saturating_us_since(start));
        Ok((result, stats, profiles))
    }

    /// Execute a pre-built logical plan with this database's engine
    /// configuration.
    pub fn execute_plan(&self, plan: &LogicalPlan) -> Result<(Relation, ExecStats)> {
        execute_with_stats(plan, &self.catalog, &self.config.engine)
    }

    /// Run the full lint registry over the bound (unoptimized) plan of a
    /// query. An empty result means the plan satisfies every structural
    /// invariant the linter knows about.
    pub fn lint(&self, sql: &str) -> Result<Vec<Diagnostic>> {
        let plan = self.plan(sql)?;
        Ok(self.lint_registry().lint_plan(&plan))
    }

    /// The full lint registry seeded with this database's catalog
    /// constraint facts, so the properties pass re-derives keys and
    /// cardinalities from the same ground truth the optimizer used.
    fn lint_registry(&self) -> LintRegistry {
        LintRegistry::default_with_properties(self.stats.catalog_properties().clone())
    }

    /// PROPS: the bound and optimized plans, each node annotated with
    /// the analyzer's derived properties (candidate keys, sort order,
    /// cardinality interval, non-null columns).
    pub fn props(&self, sql: &str) -> Result<String> {
        let bound = self.plan(sql)?;
        let (optimized, _) = self.optimize_plan(bound.clone())?;
        let facts = self.stats.catalog_properties();
        let mut out = String::from("== bound plan ==\n");
        out.push_str(&explain_with_properties(&bound, facts));
        out.push_str("\n== optimized plan ==\n");
        out.push_str(&explain_with_properties(&optimized, facts));
        Ok(out)
    }

    /// EXPLAIN: the bound plan, the optimized plan, and the fired rules
    /// (with the plan path each one fired at).
    pub fn explain(&self, sql: &str) -> Result<String> {
        self.explain_with(sql, false)
    }

    /// [`Database::explain`], optionally with per-rewrite verification:
    /// when `verify` is set, the optimizer lints every rule firing and
    /// the report carries each firing's diagnostics plus a final lint of
    /// both plans.
    pub fn explain_with(&self, sql: &str, verify: bool) -> Result<String> {
        let bound = self.plan(sql)?;
        let (optimized, log) = if verify {
            // Force per-firing verification regardless of build profile.
            let mut config = self.config.optimizer;
            config.verify_rewrites = true;
            if self.config.skip_optimizer {
                (bound.clone(), Vec::new())
            } else {
                let (optimized, log) = Optimizer::new(config, &self.stats).optimize(bound.clone());
                validate(&optimized)?;
                (optimized, log)
            }
        } else {
            self.optimized_plan(sql)?
        };
        let mut out = String::from("== bound plan ==\n");
        out.push_str(&bound.explain());
        out.push_str("\n== optimized plan ==\n");
        out.push_str(&optimized.explain());
        if !log.is_empty() {
            out.push_str("\n== rules fired ==\n");
            for f in &log {
                out.push_str(&format!("  {} at {}\n", f.rule, f.path));
                if verify {
                    for c in &f.properties {
                        out.push_str(&format!("    consumed: {c}\n"));
                    }
                }
                for d in &f.diagnostics {
                    out.push_str(&format!("    {d}\n"));
                }
            }
        }
        if verify {
            out.push_str("\n== lint ==\n");
            let diags = self.lint_registry().lint_plan(&optimized);
            if diags.is_empty() {
                let fired = log.iter().filter(|f| !f.diagnostics.is_empty()).count();
                if fired == 0 {
                    out.push_str("  clean: every firing and the final plan pass all lint passes\n");
                } else {
                    out.push_str(&format!(
                        "  final plan clean, but {fired} firing(s) carry diagnostics (above)\n"
                    ));
                }
            } else {
                for d in &diags {
                    out.push_str(&format!("  {d}\n"));
                }
            }
        }
        Ok(out)
    }

    /// Publish an XML view: build the sorted outer union, execute it and
    /// run the constant-space tagger, collecting the document into a
    /// `String`. Streams internally — see [`Database::publish_to`].
    pub fn publish(&self, view: &XmlView, pretty: bool) -> Result<String> {
        let bytes = self.publish_to(view, pretty, Vec::new())?;
        Ok(String::from_utf8(bytes).expect("tagger emits UTF-8 only"))
    }

    /// Publish an XML view incrementally into an [`io::Write`] sink: the
    /// sorted-outer-union plan is executed as a batch stream and each
    /// batch is tagged and written as it arrives, so peak memory is one
    /// batch plus the tagger's open-element stack — never the whole
    /// document or the whole relational result. Returns the sink.
    ///
    /// [`io::Write`]: std::io::Write
    pub fn publish_to<W: std::io::Write>(
        &self,
        view: &XmlView,
        pretty: bool,
        sink: W,
    ) -> Result<W> {
        let sou = sorted_outer_union(view)?;
        if !self.obs.enabled() {
            let (plan, _) = self.optimize_plan(sou.plan.clone())?;
            self.check_tagger_safety(&plan, sou.tag_plan.lvl_col)?;
            let mut stream = execute_stream(&plan, &self.catalog, &self.config.engine)?;
            let mut tagger = StreamingTagger::new(sink, &sou.tag_plan, pretty);
            while let Some(batch) = stream.next_batch()? {
                for row in batch.rows() {
                    tagger.write_row(row)?;
                }
            }
            return tagger.finish();
        }
        let start = Instant::now();
        let mut pspan = self.obs.tracer.span("publish", 0, &[]);
        let pid = pspan.id();
        let (plan, _) = self.optimize_plan_observed(sou.plan.clone(), pid)?;
        self.check_tagger_safety(&plan, sou.tag_plan.lvl_col)?;
        let mut engine = self.config.engine;
        engine.profile_ops = engine.profile_ops || self.obs.tracer.enabled();
        let mut espan = self.obs.tracer.span("execute", pid, &[("dop", &engine.dop.to_string())]);
        let mut stream =
            execute_stream_with_obs(&plan, &self.catalog, &engine, self.obs.context(espan.id()))?;
        let mut tagger = StreamingTagger::new(sink, &sou.tag_plan, pretty);
        // Tagging interleaves with execution batch-by-batch, so its time
        // is accumulated around the tagger calls and emitted as one
        // synthesized span after the fact.
        let mut tag_ns: u64 = 0;
        let mut rows: u64 = 0;
        while let Some(batch) = stream.next_batch()? {
            let tag_start = Instant::now();
            for row in batch.rows() {
                tagger.write_row(row)?;
            }
            rows += batch.rows().len() as u64;
            tag_ns = tag_ns.saturating_add(saturating_ns_since(tag_start));
        }
        let tag_start = Instant::now();
        let out = tagger.finish()?;
        tag_ns = tag_ns.saturating_add(saturating_ns_since(tag_start));
        emit_operator_spans(&self.obs.tracer, espan.id(), stream.profiles());
        espan.annotate("rows", &rows.to_string());
        drop(espan);
        self.obs.tracer.emit_span(
            "tag",
            pid,
            self.obs.tracer.now_us(),
            tag_ns / 1_000,
            &[("rows", &rows.to_string()), ("pretty", if pretty { "true" } else { "false" })],
        );
        pspan.annotate("rows", &rows.to_string());
        self.obs.metrics.add("publish.count", 1);
        self.obs.metrics.record_us("publish.tag_us", tag_ns / 1_000);
        self.obs.metrics.record_us("publish.total_us", saturating_us_since(start));
        Ok(out)
    }

    /// Refuse to feed the streaming tagger a plan whose derived sort
    /// order does not provably cluster rows by element (§2): the
    /// constant-space tagger silently produces interleaved documents on
    /// out-of-order input, so an optimizer bug that breaks the sorted
    /// outer union's `ORDER BY` must fail loudly here instead.
    fn check_tagger_safety(&self, plan: &LogicalPlan, lvl_col: usize) -> Result<()> {
        match xmlpub_lint::passes::check_tagger_safety(
            plan,
            lvl_col,
            self.stats.catalog_properties(),
        ) {
            Some(diag) => Err(Error::plan(format!("publish aborted: {diag}"))),
            None => Ok(()),
        }
    }
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlpub_common::{row, DataType, Field, Schema, Value};

    #[test]
    fn empty_database_register_and_query() {
        let mut db = Database::new();
        let def = TableDef::new(
            "t",
            Schema::new(vec![Field::new("k", DataType::Int), Field::new("v", DataType::Float)]),
        );
        let data = Relation::new(def.schema.clone(), vec![row![1, 2.0], row![1, 4.0]]).unwrap();
        db.register_table(def, data).unwrap();
        let r = db.sql("select k, avg(v) from t group by k").unwrap();
        assert_eq!(r.rows(), &[row![1, 3.0]]);
        assert_eq!(db.statistics().rows("t"), 2);
    }

    #[test]
    fn tpch_database_runs_gapply() {
        let db = Database::tpch(0.001).unwrap();
        let (r, stats) = db
            .sql_with_stats(
                "select gapply(select max(p_retailprice) from g) as (maxp) \
                 from partsupp, part where ps_partkey = p_partkey \
                 group by ps_suppkey : g",
            )
            .unwrap();
        assert_eq!(r.len(), 10);
        // The pure-aggregate PGQ converts to a plain group-by, so no
        // groups are processed by a GApply operator at all.
        assert_eq!(stats.groups_processed, 0);
    }

    #[test]
    fn skip_optimizer_keeps_gapply() {
        let mut db = Database::tpch(0.001).unwrap();
        db.config_mut().skip_optimizer = true;
        let (r, stats) = db
            .sql_with_stats(
                "select gapply(select max(p_retailprice) from g) as (maxp) \
                 from partsupp, part where ps_partkey = p_partkey \
                 group by ps_suppkey : g",
            )
            .unwrap();
        assert_eq!(r.len(), 10);
        assert_eq!(stats.groups_processed, 10);
    }

    #[test]
    fn explain_mentions_rules() {
        let db = Database::tpch(0.001).unwrap();
        let text = db
            .explain(
                "select gapply(select avg(p_retailprice) from g) \
                 from partsupp, part where ps_partkey = p_partkey \
                 group by ps_suppkey : g",
            )
            .unwrap();
        assert!(text.contains("== bound plan =="), "{text}");
        assert!(text.contains("GApply"), "{text}");
        assert!(text.contains("gapply-to-groupby"), "{text}");
    }

    #[test]
    fn lint_reports_clean_for_valid_queries() {
        let db = Database::tpch(0.001).unwrap();
        let diags = db
            .lint(
                "select gapply(select max(p_retailprice) from g) as (maxp) \
                 from partsupp, part where ps_partkey = p_partkey \
                 group by ps_suppkey : g",
            )
            .unwrap();
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn verified_explain_reports_clean_lint() {
        let db = Database::tpch(0.001).unwrap();
        let text = db
            .explain_with(
                "select gapply(select avg(p_retailprice) from g) \
                 from partsupp, part where ps_partkey = p_partkey \
                 group by ps_suppkey : g",
                true,
            )
            .unwrap();
        assert!(text.contains("== lint =="), "{text}");
        assert!(text.contains("clean"), "{text}");
        // Firings carry the plan path they applied at.
        assert!(text.contains(" at $"), "{text}");
    }

    #[test]
    fn verified_explain_lists_consumed_side_conditions() {
        let db = Database::tpch(0.001).unwrap();
        // The invariant-grouping workload: the fk-join level above the
        // grouping column is skipped, and the firing must record the
        // key fact it consumed to prove that legal.
        let text =
            db.explain_with(&xmlpub_xml::workloads::invariant_grouping_sweep_sql(), true).unwrap();
        assert!(text.contains("invariant-grouping"), "{text}");
        assert!(text.contains("consumed: "), "{text}");
        assert!(text.contains("key within"), "{text}");
    }

    #[test]
    fn props_annotates_both_plans() {
        let db = Database::tpch(0.001).unwrap();
        let text = db
            .props(
                "select gapply(select max(p_retailprice) from g) as (maxp) \
                 from partsupp, part where ps_partkey = p_partkey \
                 group by ps_suppkey : g",
            )
            .unwrap();
        assert!(text.contains("== bound plan =="), "{text}");
        assert!(text.contains("== optimized plan =="), "{text}");
        // Derived facts are printed per node: keys, order, row bounds.
        assert!(text.contains("keys={"), "{text}");
        assert!(text.contains("rows=["), "{text}");
    }

    #[test]
    fn sql_analyzed_reports_operator_breakdown() {
        let db = Database::tpch(0.001).unwrap();
        let (r, report) =
            db.sql_analyzed("select p_name from part where p_retailprice > 1500.0").unwrap();
        let plain = db.sql("select p_name from part where p_retailprice > 1500.0").unwrap();
        assert!(r.bag_eq(&plain), "{}", r.bag_diff(&plain));
        assert!(report.contains("== operators (analyze) =="), "{report}");
        assert!(report.contains("TableScan(part)"), "{report}");
        assert!(report.contains("rows_out"), "{report}");
    }

    #[test]
    fn batch_size_one_matches_default() {
        let mut db = Database::tpch(0.001).unwrap();
        let sql = "select gapply(select p_name, max(p_retailprice) from g group by p_name) \
                   from partsupp, part where ps_partkey = p_partkey group by ps_suppkey : g";
        let batched = db.sql(sql).unwrap();
        db.config_mut().engine.batch_size = 1;
        let tuple_at_a_time = db.sql(sql).unwrap();
        assert!(batched.bag_eq(&tuple_at_a_time), "{}", batched.bag_diff(&tuple_at_a_time));
    }

    #[test]
    fn publish_produces_xml() {
        let db = Database::tpch(0.001).unwrap();
        let view = xmlpub_xml::supplier_parts_view(db.catalog()).unwrap();
        let xml = db.publish(&view, false).unwrap();
        assert!(xml.starts_with("<suppliers>"));
        assert_eq!(xml.matches("<supplier s_suppkey=").count(), 10);
    }

    #[test]
    fn publish_to_sink_matches_publish_string() {
        let db = Database::tpch(0.001).unwrap();
        let view = xmlpub_xml::supplier_parts_view(db.catalog()).unwrap();
        for pretty in [false, true] {
            let s = db.publish(&view, pretty).unwrap();
            let bytes = db.publish_to(&view, pretty, Vec::new()).unwrap();
            assert_eq!(s.as_bytes(), &bytes[..], "pretty={pretty}");
        }
    }

    #[test]
    fn optimizer_and_unoptimized_agree() {
        let db = Database::tpch(0.001).unwrap();
        let mut db_raw = Database::tpch(0.001).unwrap();
        db_raw.config_mut().skip_optimizer = true;
        for sql in [
            "select gapply(select p_name from g where p_retailprice > 1500.0) \
             from partsupp, part where ps_partkey = p_partkey group by ps_suppkey : g",
            "select gapply(select count(*), null from g where p_retailprice >= \
               (select avg(p_retailprice) from g) \
             union all select null, count(*) from g where p_retailprice < \
               (select avg(p_retailprice) from g)) \
             from partsupp, part where ps_partkey = p_partkey group by ps_suppkey : g",
        ] {
            let a = db.sql(sql).unwrap();
            let b = db_raw.sql(sql).unwrap();
            assert!(a.bag_eq(&b), "{sql}\n{}", a.bag_diff(&b));
        }
    }

    #[test]
    fn error_surfaces_from_all_layers() {
        let db = Database::tpch(0.001).unwrap();
        assert!(db.sql("selectt nonsense").is_err()); // parse
        assert!(db.sql("select nope from part").is_err()); // bind
        let r = db.sql("select p_name from part where p_retailprice > 'x'");
        assert!(r.is_err()); // execution type error
    }

    /// Fresh metrics registry + tracer writing into the returned sink.
    fn buffered_obs() -> (Observability, xmlpub_obs::BufferSink) {
        let sink = xmlpub_obs::BufferSink::new();
        let obs = Observability {
            metrics: xmlpub_obs::MetricsHandle::new_registry(),
            tracer: xmlpub_obs::TraceHandle::new(Box::new(sink.clone())),
        };
        (obs, sink)
    }

    #[test]
    fn traced_query_matches_untraced_and_emits_lifecycle_spans() {
        let mut db = Database::tpch(0.001).unwrap();
        let sql = "select gapply(select max(p_retailprice) from g) as (maxp) \
                   from partsupp, part where ps_partkey = p_partkey \
                   group by ps_suppkey : g";
        let plain = db.sql(sql).unwrap();
        let (obs, sink) = buffered_obs();
        db.set_observability(obs);
        let traced = db.sql(sql).unwrap();
        assert!(plain.bag_eq(&traced), "{}", plain.bag_diff(&traced));

        let records = xmlpub_obs::SpanRecord::parse_all(&sink.contents()).unwrap();
        let names: Vec<&str> = records.iter().map(|r| r.name.as_str()).collect();
        for expected in ["query", "parse", "optimize", "execute"] {
            assert!(names.contains(&expected), "missing span {expected:?} in {names:?}");
        }
        // Per-operator spans synthesized from the profiles.
        assert!(names.iter().any(|n| n.starts_with("op:")), "{names:?}");

        let snap = db.observability().metrics.snapshot().unwrap();
        assert_eq!(snap.counter("query.count"), Some(1));
        for h in ["query.parse_us", "query.optimize_us", "query.exec_us", "query.total_us"] {
            assert_eq!(snap.histogram(h).map(|s| s.count), Some(1), "{h}");
        }
        assert!(snap.counter("engine.rows_out").unwrap_or(0) > 0);
    }

    #[test]
    fn traced_publish_is_byte_identical_and_spans_tag_phase() {
        let mut db = Database::tpch(0.001).unwrap();
        let view = xmlpub_xml::supplier_parts_view(db.catalog()).unwrap();
        let plain = db.publish(&view, false).unwrap();
        let (obs, sink) = buffered_obs();
        db.set_observability(obs);
        let traced = db.publish(&view, false).unwrap();
        assert_eq!(plain, traced);

        let records = xmlpub_obs::SpanRecord::parse_all(&sink.contents()).unwrap();
        let names: Vec<&str> = records.iter().map(|r| r.name.as_str()).collect();
        for expected in ["publish", "optimize", "execute", "tag"] {
            assert!(names.contains(&expected), "missing span {expected:?} in {names:?}");
        }
        let snap = db.observability().metrics.snapshot().unwrap();
        assert_eq!(snap.counter("publish.count"), Some(1));
        assert_eq!(snap.histogram("publish.total_us").map(|s| s.count), Some(1));
    }

    #[test]
    fn metrics_only_observability_skips_tracing() {
        let mut db = Database::tpch(0.001).unwrap();
        db.set_observability(Observability::with_metrics());
        let r = db.sql("select p_name from part").unwrap();
        assert!(!r.rows().is_empty());
        let snap = db.observability().metrics.snapshot().unwrap();
        assert_eq!(snap.counter("query.count"), Some(1));
        // No tracer => no forced profiling and no spans, but phase
        // histograms still record.
        assert_eq!(snap.histogram("query.exec_us").map(|s| s.count), Some(1));
    }

    #[test]
    fn partition_strategy_is_configurable() {
        let mut db = Database::tpch(0.001).unwrap();
        db.config_mut().skip_optimizer = true;
        let sql = "select gapply(select min(p_retailprice) from g) \
                   from partsupp, part where ps_partkey = p_partkey \
                   group by ps_suppkey : g";
        let hash = db.sql(sql).unwrap();
        db.config_mut().engine.partition_strategy = xmlpub_engine::PartitionStrategy::Sort;
        let sort = db.sql(sql).unwrap();
        assert!(hash.bag_eq(&sort), "{}", hash.bag_diff(&sort));
        // Sort partitioning clusters output by key.
        let keys: Vec<Value> = sort.rows().iter().map(|r| r.value(0).clone()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }
}
