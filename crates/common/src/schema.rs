//! Column metadata and name resolution.
//!
//! A [`Schema`] is an ordered list of [`Field`]s. Fields carry an optional
//! *qualifier* (the table alias they came from) so the binder can resolve
//! both `ps_suppkey` and `partsupp.ps_suppkey`, and detect ambiguity when
//! two join inputs expose the same bare name.

use crate::error::{Error, Result};
use crate::value::DataType;
use std::fmt;
use std::sync::Arc;

/// A single output column: qualifier (table alias), name, and type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Table alias this column originated from, if any. Computed columns
    /// (aggregates, expressions) have no qualifier.
    pub qualifier: Option<String>,
    /// Column name.
    pub name: String,
    /// Column type.
    pub data_type: DataType,
}

impl Field {
    /// An unqualified field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field { qualifier: None, name: name.into(), data_type }
    }

    /// A field qualified by a table alias.
    pub fn qualified(
        qualifier: impl Into<String>,
        name: impl Into<String>,
        data_type: DataType,
    ) -> Self {
        Field { qualifier: Some(qualifier.into()), name: name.into(), data_type }
    }

    /// `alias.name` when qualified, bare `name` otherwise.
    pub fn qualified_name(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}.{}", self.name),
            None => self.name.clone(),
        }
    }

    /// Whether a reference `(qualifier?, name)` matches this field.
    /// Matching is case-insensitive on both parts, like SQL identifiers.
    pub fn matches(&self, qualifier: Option<&str>, name: &str) -> bool {
        if !self.name.eq_ignore_ascii_case(name) {
            return false;
        }
        match qualifier {
            None => true,
            Some(q) => self.qualifier.as_deref().is_some_and(|fq| fq.eq_ignore_ascii_case(q)),
        }
    }
}

/// An ordered list of fields. Cheap to clone (fields live behind an `Arc`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Arc<Vec<Field>>,
}

impl Schema {
    /// Build a schema from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields: Arc::new(fields) }
    }

    /// The empty schema (used by the paper's `exists` operator, whose
    /// output relation is over a *null schema*).
    pub fn empty() -> Self {
        Schema::new(Vec::new())
    }

    /// The fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Whether two schemas share the same underlying field allocation
    /// (not just equal contents). `Schema` has been `Arc`-backed since
    /// its introduction, so `clone()` is a refcount bump — this is the
    /// observability hook that lets tests and profiling *prove* an
    /// operator hands out shared handles per emitted batch instead of
    /// deep-copying field vectors.
    pub fn ptr_eq(&self, other: &Schema) -> bool {
        Arc::ptr_eq(&self.fields, &other.fields)
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The field at `index`.
    pub fn field(&self, index: usize) -> &Field {
        &self.fields[index]
    }

    /// Resolve a column reference to its index. Errors on no match or on
    /// an ambiguous unqualified name.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize> {
        self.try_resolve(qualifier, name)?.ok_or_else(|| {
            Error::bind(format!(
                "no such column '{}{}'; available: [{}]",
                qualifier.map(|q| format!("{q}.")).unwrap_or_default(),
                name,
                self.fields.iter().map(|f| f.qualified_name()).collect::<Vec<_>>().join(", ")
            ))
        })
    }

    /// Like [`Schema::resolve`], but distinguishes "not found"
    /// (`Ok(None)`, so a binder can try an enclosing scope) from
    /// "ambiguous" (`Err`).
    pub fn try_resolve(&self, qualifier: Option<&str>, name: &str) -> Result<Option<usize>> {
        let mut hit = None;
        for (i, f) in self.fields.iter().enumerate() {
            if f.matches(qualifier, name) {
                if let Some(prev) = hit {
                    let prev_f: &Field = &self.fields[prev];
                    return Err(Error::bind(format!(
                        "ambiguous column reference '{}{}': matches both {} and {}",
                        qualifier.map(|q| format!("{q}.")).unwrap_or_default(),
                        name,
                        prev_f.qualified_name(),
                        f.qualified_name()
                    )));
                }
                hit = Some(i);
            }
        }
        Ok(hit)
    }

    /// Index of the first field with the given bare name, if any
    /// (convenience used by tests and the tagger).
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name.eq_ignore_ascii_case(name))
    }

    /// Concatenate two schemas (the output of a join or a group-key ×
    /// per-group-result cross product).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut fields = Vec::with_capacity(self.len() + other.len());
        fields.extend_from_slice(self.fields());
        fields.extend_from_slice(other.fields());
        Schema::new(fields)
    }

    /// Keep only the given column indices, in the given order.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema::new(indices.iter().map(|&i| self.fields[i].clone()).collect())
    }

    /// Replace every field's qualifier with `alias` (what `FROM t AS a`
    /// does to the table schema).
    pub fn with_qualifier(&self, alias: &str) -> Schema {
        Schema::new(
            self.fields
                .iter()
                .map(|f| Field {
                    qualifier: Some(alias.to_string()),
                    name: f.name.clone(),
                    data_type: f.data_type,
                })
                .collect(),
        )
    }

    /// Drop all qualifiers (used when a subquery's output becomes a fresh
    /// derived table).
    pub fn without_qualifiers(&self) -> Schema {
        Schema::new(
            self.fields
                .iter()
                .map(|f| Field { qualifier: None, name: f.name.clone(), data_type: f.data_type })
                .collect(),
        )
    }

    /// Whether `other` is compatible for UNION with `self`: same arity and
    /// pairwise unifiable types.
    pub fn union_compatible(&self, other: &Schema) -> bool {
        self.len() == other.len()
            && self
                .fields
                .iter()
                .zip(other.fields.iter())
                .all(|(a, b)| a.data_type.unify(b.data_type).is_some())
    }

    /// The schema of the union of two compatible inputs: names from the
    /// left branch, types unified.
    pub fn union_schema(&self, other: &Schema) -> Result<Schema> {
        if self.len() != other.len() {
            return Err(Error::plan(format!(
                "union arity mismatch: {} vs {} columns",
                self.len(),
                other.len()
            )));
        }
        let fields = self
            .fields
            .iter()
            .zip(other.fields.iter())
            .map(|(a, b)| {
                a.data_type
                    .unify(b.data_type)
                    .map(|dt| Field { qualifier: None, name: a.name.clone(), data_type: dt })
                    .ok_or_else(|| {
                        Error::plan(format!(
                            "union type mismatch on column '{}': {} vs {}",
                            a.name, a.data_type, b.data_type
                        ))
                    })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Schema::new(fields))
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", field.qualified_name(), field.data_type)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Field::qualified("s", "s_suppkey", DataType::Int),
            Field::qualified("s", "s_name", DataType::Str),
            Field::qualified("p", "p_retailprice", DataType::Float),
        ])
    }

    #[test]
    fn ptr_eq_distinguishes_shared_from_rebuilt() {
        let a = sample();
        let b = a.clone();
        assert!(a.ptr_eq(&b), "clone must share the field allocation");
        let c = sample();
        assert_eq!(a, c, "independently built schemas compare equal");
        assert!(!a.ptr_eq(&c), "but they do not share an allocation");
    }

    #[test]
    fn resolve_unqualified_and_qualified() {
        let s = sample();
        assert_eq!(s.resolve(None, "s_name").unwrap(), 1);
        assert_eq!(s.resolve(Some("p"), "p_retailprice").unwrap(), 2);
        assert_eq!(s.resolve(Some("S"), "S_SUPPKEY").unwrap(), 0);
    }

    #[test]
    fn resolve_missing_lists_candidates() {
        let s = sample();
        let err = s.resolve(None, "nope").unwrap_err().to_string();
        assert!(err.contains("no such column 'nope'"), "{err}");
        assert!(err.contains("s.s_suppkey"), "{err}");
    }

    #[test]
    fn resolve_ambiguous() {
        let s = Schema::new(vec![
            Field::qualified("a", "k", DataType::Int),
            Field::qualified("b", "k", DataType::Int),
        ]);
        let err = s.resolve(None, "k").unwrap_err().to_string();
        assert!(err.contains("ambiguous"), "{err}");
        // Qualification disambiguates.
        assert_eq!(s.resolve(Some("b"), "k").unwrap(), 1);
    }

    #[test]
    fn join_and_project() {
        let s = sample();
        let j = s.join(&Schema::new(vec![Field::new("x", DataType::Int)]));
        assert_eq!(j.len(), 4);
        let p = j.project(&[3, 0]);
        assert_eq!(p.field(0).name, "x");
        assert_eq!(p.field(1).name, "s_suppkey");
    }

    #[test]
    fn requalify() {
        let s = sample().with_qualifier("t");
        assert_eq!(s.resolve(Some("t"), "s_name").unwrap(), 1);
        assert!(s.resolve(Some("s"), "s_name").is_err());
        let u = s.without_qualifiers();
        assert_eq!(u.field(0).qualifier, None);
    }

    #[test]
    fn union_schemas() {
        let a = Schema::new(vec![Field::new("k", DataType::Int), Field::new("v", DataType::Null)]);
        let b =
            Schema::new(vec![Field::new("k2", DataType::Int), Field::new("v2", DataType::Float)]);
        assert!(a.union_compatible(&b));
        let u = a.union_schema(&b).unwrap();
        assert_eq!(u.field(0).name, "k");
        assert_eq!(u.field(1).data_type, DataType::Float);

        let c = Schema::new(vec![Field::new("k", DataType::Int)]);
        assert!(!a.union_compatible(&c));
        assert!(a.union_schema(&c).is_err());

        let d = Schema::new(vec![Field::new("k", DataType::Str), Field::new("v", DataType::Float)]);
        assert!(a.union_schema(&d).is_err());
    }

    #[test]
    fn empty_schema_display() {
        assert_eq!(Schema::empty().to_string(), "()");
        assert!(Schema::empty().is_empty());
        let s = sample();
        assert_eq!(s.to_string(), "(s.s_suppkey: int, s.s_name: str, p.p_retailprice: float)");
    }
}
