//! Tuple batches — the unit of data flow in the vectorized engine.
//!
//! Operators exchange [`TupleBatch`]es instead of single tuples so the
//! per-call overhead (virtual dispatch, context threading, expression
//! dispatch) is amortised over up to [`DEFAULT_BATCH_SIZE`] rows. A batch
//! carries its schema so consumers can materialise a [`Relation`] or
//! re-wrap rows without consulting the producing operator.
//!
//! [`Relation`]: crate::Relation

use crate::schema::Schema;
use crate::tuple::Tuple;

/// Default target number of rows per batch. Operators treat this (via the
/// execution context) as a *target*, not a hard bound: an operator whose
/// output expands one input batch (a join, an apply) may exceed it rather
/// than buffer across calls.
pub const DEFAULT_BATCH_SIZE: usize = 1024;

/// A schema-carrying vector of tuples.
///
/// Invariant maintained by the engine (not by this type): batches flowing
/// between operators are non-empty — exhaustion is signalled by `None`
/// from `next_batch`, never by an empty batch.
#[derive(Debug, Clone, PartialEq)]
pub struct TupleBatch {
    schema: Schema,
    rows: Vec<Tuple>,
}

impl TupleBatch {
    /// A batch over `rows` with the given schema.
    pub fn new(schema: Schema, rows: Vec<Tuple>) -> Self {
        TupleBatch { schema, rows }
    }

    /// An empty batch (used as a builder seed).
    pub fn empty(schema: Schema) -> Self {
        TupleBatch { schema, rows: Vec::new() }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The batch schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The rows, borrowed.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// The rows, mutably borrowed.
    pub fn rows_mut(&mut self) -> &mut Vec<Tuple> {
        &mut self.rows
    }

    /// Consume the batch into its rows.
    pub fn into_rows(self) -> Vec<Tuple> {
        self.rows
    }

    /// Append one row.
    pub fn push(&mut self, row: Tuple) {
        self.rows.push(row);
    }

    /// Keep only the rows whose mask entry is true (a selection mask as
    /// produced by `Expr::eval_batch_predicate`).
    pub fn retain(&mut self, mask: &[bool]) {
        debug_assert_eq!(mask.len(), self.rows.len(), "selection mask length mismatch");
        let mut i = 0;
        self.rows.retain(|_| {
            let keep = mask[i];
            i += 1;
            keep
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;
    use crate::{row, Field};

    fn schema() -> Schema {
        Schema::new(vec![Field::new("x", DataType::Int)])
    }

    #[test]
    fn construction_and_access() {
        let mut b = TupleBatch::empty(schema());
        assert!(b.is_empty());
        b.push(row![1]);
        b.push(row![2]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.rows(), &[row![1], row![2]]);
        assert_eq!(b.schema(), &schema());
        assert_eq!(b.into_rows(), vec![row![1], row![2]]);
    }

    #[test]
    fn retain_applies_selection_mask() {
        let mut b = TupleBatch::new(schema(), vec![row![1], row![2], row![3]]);
        b.retain(&[true, false, true]);
        assert_eq!(b.rows(), &[row![1], row![3]]);
    }
}
