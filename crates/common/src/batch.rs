//! Tuple batches — the unit of data flow in the vectorized engine.
//!
//! Operators exchange [`TupleBatch`]es instead of single tuples so the
//! per-call overhead (virtual dispatch, context threading, expression
//! dispatch) is amortised over up to [`DEFAULT_BATCH_SIZE`] rows. A batch
//! carries its schema so consumers can materialise a [`Relation`] or
//! re-wrap rows without consulting the producing operator.
//!
//! A batch is *dual-representation*: the producer hands over whichever
//! layout it naturally has — row tuples ([`TupleBatch::new`]) or
//! [`ColumnVec`]s ([`TupleBatch::from_columns`], see [`crate::column`]) —
//! and that layout stays primary. The other view ([`rows`] / [`columns`])
//! is derived lazily on first access and cached, so a row-producing
//! operator feeding a row-consuming one never pays a transpose, while
//! columnar scans feeding expression kernels never materialise tuples.
//! Operators that have both a columnar and a row code path pick via
//! [`is_columnar`] / [`columnar`] instead of forcing a conversion.
//!
//! [`Relation`]: crate::Relation
//! [`rows`]: TupleBatch::rows
//! [`columns`]: TupleBatch::columns
//! [`is_columnar`]: TupleBatch::is_columnar
//! [`columnar`]: TupleBatch::columnar

use crate::column::ColumnVec;
use crate::schema::Schema;
use crate::tuple::Tuple;
use std::sync::OnceLock;

/// Default target number of rows per batch. Operators treat this (via the
/// execution context) as a *target*, not a hard bound: an operator whose
/// output expands one input batch (a join, an apply) may exceed it rather
/// than buffer across calls.
pub const DEFAULT_BATCH_SIZE: usize = 1024;

/// Primary storage: whichever representation the producer handed over.
#[derive(Debug, Clone)]
enum Cells {
    Rows(Vec<Tuple>),
    Columns(Vec<ColumnVec>),
}

/// A schema-carrying batch with lazily derived row/column views.
///
/// Invariant maintained by the engine (checked by a `debug_assert!` at
/// the executor's operator boundary): batches flowing between operators
/// are non-empty — exhaustion is signalled by `None` from `next_batch`,
/// never by an empty batch.
#[derive(Debug, Clone)]
pub struct TupleBatch {
    schema: Schema,
    cells: Cells,
    /// Row count, tracked separately so zero-width schemas (the unit
    /// relation behind `EXISTS`) still know their cardinality.
    len: usize,
    /// Lazily transposed row view of a column-primary batch;
    /// invalidated by every mutation.
    rows_cache: OnceLock<Vec<Tuple>>,
    /// Lazily columnified view of a row-primary batch; invalidated by
    /// every mutation.
    cols_cache: OnceLock<Vec<ColumnVec>>,
}

impl TupleBatch {
    /// A row-primary batch over `rows` with the given schema (no
    /// transpose; the columnar view is built on demand).
    pub fn new(schema: Schema, rows: Vec<Tuple>) -> Self {
        let len = rows.len();
        debug_assert!(rows.iter().all(|r| r.len() == schema.len()), "row arity mismatch");
        TupleBatch {
            schema,
            cells: Cells::Rows(rows),
            len,
            rows_cache: OnceLock::new(),
            cols_cache: OnceLock::new(),
        }
    }

    /// A column-primary batch directly over columns (all of length `len`).
    pub fn from_columns(schema: Schema, columns: Vec<ColumnVec>, len: usize) -> Self {
        debug_assert_eq!(columns.len(), schema.len(), "column count mismatch");
        debug_assert!(columns.iter().all(|c| c.len() == len), "column length mismatch");
        TupleBatch {
            schema,
            cells: Cells::Columns(columns),
            len,
            rows_cache: OnceLock::new(),
            cols_cache: OnceLock::new(),
        }
    }

    /// An empty row-primary batch (used as a builder seed).
    pub fn empty(schema: Schema) -> Self {
        TupleBatch::new(schema, Vec::new())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The batch schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Whether the *primary* representation is columnar. Operators with
    /// both a vectorized and a row code path branch on this so neither
    /// representation is ever converted just to be consumed.
    pub fn is_columnar(&self) -> bool {
        matches!(self.cells, Cells::Columns(_))
    }

    /// The columns, but only if already materialised (column-primary, or
    /// a row-primary batch whose columnar view was previously forced) —
    /// never triggers a columnification.
    pub fn columnar(&self) -> Option<&[ColumnVec]> {
        match &self.cells {
            Cells::Columns(cols) => Some(cols),
            Cells::Rows(_) => self.cols_cache.get().map(Vec::as_slice),
        }
    }

    /// The columns, borrowed; a row-primary batch columnifies on first
    /// access and caches the result.
    pub fn columns(&self) -> &[ColumnVec] {
        match &self.cells {
            Cells::Columns(cols) => cols,
            Cells::Rows(rows) => self.cols_cache.get_or_init(|| columnify(rows, self.schema.len())),
        }
    }

    /// The column at `i`, borrowed.
    pub fn column(&self, i: usize) -> &ColumnVec {
        &self.columns()[i]
    }

    /// The rows, borrowed; a column-primary batch transposes on first
    /// access and caches the result.
    pub fn rows(&self) -> &[Tuple] {
        match &self.cells {
            Cells::Rows(rows) => rows,
            Cells::Columns(cols) => self.rows_cache.get_or_init(|| transpose(cols, self.len)),
        }
    }

    /// Consume the batch into its rows.
    pub fn into_rows(self) -> Vec<Tuple> {
        match self.cells {
            Cells::Rows(rows) => rows,
            Cells::Columns(cols) => match self.rows_cache.into_inner() {
                Some(rows) => rows,
                None => transpose(&cols, self.len),
            },
        }
    }

    /// Consume the batch into its columns.
    pub fn into_columns(self) -> Vec<ColumnVec> {
        match self.cells {
            Cells::Columns(cols) => cols,
            Cells::Rows(rows) => match self.cols_cache.into_inner() {
                Some(cols) => cols,
                None => columnify(&rows, self.schema.len()),
            },
        }
    }

    /// The sub-batch over `range` (the morsel primitive). Preserves the
    /// primary representation: column slices share their dictionary with
    /// the parent, row slices clone the tuples of the range.
    pub fn slice(&self, range: std::ops::Range<usize>) -> TupleBatch {
        debug_assert!(range.end <= self.len);
        match &self.cells {
            Cells::Columns(cols) => {
                let len = range.len();
                let columns = cols.iter().map(|c| c.slice(range.clone())).collect();
                TupleBatch::from_columns(self.schema.clone(), columns, len)
            }
            Cells::Rows(rows) => TupleBatch::new(self.schema.clone(), rows[range].to_vec()),
        }
    }

    /// Append one row.
    pub fn push(&mut self, row: Tuple) {
        debug_assert_eq!(row.len(), self.schema.len(), "row arity mismatch");
        match &mut self.cells {
            Cells::Rows(rows) => rows.push(row),
            Cells::Columns(cols) => {
                for (col, v) in cols.iter_mut().zip(row.into_values()) {
                    col.push(v);
                }
            }
        }
        self.len += 1;
        self.rows_cache.take();
        self.cols_cache.take();
    }

    /// Append all of `other`'s rows (the morsel-merge primitive);
    /// `other` is converted to `self`'s primary representation if they
    /// differ.
    pub fn append(&mut self, other: TupleBatch) {
        debug_assert_eq!(other.schema.len(), self.schema.len(), "schema width mismatch");
        let other_len = other.len;
        match &mut self.cells {
            Cells::Rows(rows) => rows.extend(other.into_rows()),
            Cells::Columns(cols) => {
                for (col, o) in cols.iter_mut().zip(other.into_columns()) {
                    col.append(o);
                }
            }
        }
        self.len += other_len;
        self.rows_cache.take();
        self.cols_cache.take();
    }

    /// Keep only the rows whose mask entry is true (a selection mask as
    /// produced by `Expr::eval_batch_predicate`).
    pub fn retain(&mut self, mask: &[bool]) {
        debug_assert_eq!(mask.len(), self.len, "selection mask length mismatch");
        match &mut self.cells {
            Cells::Rows(rows) => {
                let mut keep = mask.iter();
                rows.retain(|_| *keep.next().expect("mask covers every row"));
            }
            Cells::Columns(cols) => {
                for col in cols.iter_mut() {
                    col.retain(mask);
                }
            }
        }
        self.len = mask.iter().filter(|k| **k).count();
        self.rows_cache.take();
        self.cols_cache.take();
    }
}

impl PartialEq for TupleBatch {
    /// Logical equality: same schema, same values row by row (the
    /// physical representation — rows or columns — does not matter).
    fn eq(&self, other: &Self) -> bool {
        if self.schema != other.schema || self.len != other.len {
            return false;
        }
        if let (Cells::Columns(a), Cells::Columns(b)) = (&self.cells, &other.cells) {
            return a == b;
        }
        self.rows() == other.rows()
    }
}

/// Build the row view from columns.
fn transpose(columns: &[ColumnVec], len: usize) -> Vec<Tuple> {
    (0..len).map(|i| Tuple::new(columns.iter().map(|c| c.get(i)).collect())).collect()
}

/// Build the columnar view from rows.
fn columnify(rows: &[Tuple], width: usize) -> Vec<ColumnVec> {
    (0..width)
        .map(|c| ColumnVec::from_values(rows.iter().map(|r| r.value(c).clone()).collect()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;
    use crate::{row, Field};

    fn schema() -> Schema {
        Schema::new(vec![Field::new("x", DataType::Int)])
    }

    #[test]
    fn construction_and_access() {
        let mut b = TupleBatch::empty(schema());
        assert!(b.is_empty());
        b.push(row![1]);
        b.push(row![2]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.rows(), &[row![1], row![2]]);
        assert_eq!(b.schema(), &schema());
        assert_eq!(b.into_rows(), vec![row![1], row![2]]);
    }

    #[test]
    fn retain_applies_selection_mask() {
        let mut b = TupleBatch::new(schema(), vec![row![1], row![2], row![3]]);
        b.retain(&[true, false, true]);
        assert_eq!(b.rows(), &[row![1], row![3]]);
        let mut c = TupleBatch::from_columns(schema(), b.columns().to_vec(), b.len());
        c.retain(&[false, true]);
        assert_eq!(c.rows(), &[row![3]]);
    }

    #[test]
    fn columnar_and_row_views_agree() {
        let schema =
            Schema::new(vec![Field::new("k", DataType::Int), Field::new("s", DataType::Str)]);
        let rows = vec![row![1, "a"], row![2, "b"], row![3, "a"]];
        let b = TupleBatch::new(schema.clone(), rows.clone());
        assert_eq!(b.columns().len(), 2);
        assert_eq!(b.column(0).get(2), crate::Value::Int(3));
        assert_eq!(b.rows(), &rows[..]);
        let via_cols = TupleBatch::from_columns(schema, b.columns().to_vec(), b.len());
        assert_eq!(via_cols, b);
    }

    #[test]
    fn representation_is_lazy_and_preserved() {
        let b = TupleBatch::new(schema(), vec![row![1], row![2], row![3]]);
        assert!(!b.is_columnar());
        assert!(b.columnar().is_none(), "row-primary batch must not pre-columnify");
        assert!(!b.slice(0..2).is_columnar(), "slicing preserves the representation");
        let _ = b.columns(); // force (and cache) the columnar view
        assert!(b.columnar().is_some());
        assert!(!b.is_columnar(), "forcing a view must not flip the primary representation");
        let c = TupleBatch::from_columns(schema(), b.columns().to_vec(), b.len());
        assert!(c.is_columnar());
        assert!(c.slice(1..3).is_columnar());
        assert_eq!(c, b);
    }

    #[test]
    fn mutations_invalidate_cached_views() {
        let mut b = TupleBatch::new(schema(), vec![row![1], row![2]]);
        assert_eq!(b.columns()[0].get(1), crate::Value::Int(2)); // build the column cache
        b.push(row![3]);
        assert_eq!(b.columns()[0].get(2), crate::Value::Int(3));
        let mut c = TupleBatch::from_columns(schema(), b.columns().to_vec(), b.len());
        assert_eq!(c.rows().len(), 3); // build the row cache
        c.retain(&[true, false, true]);
        assert_eq!(c.rows(), &[row![1], row![3]]);
    }

    #[test]
    fn slice_and_append_round_trip() {
        let rows = vec![row![1], row![2], row![3], row![4], row![5]];
        let b = TupleBatch::new(schema(), rows.clone());
        let mut head = b.slice(0..2);
        head.append(b.slice(2..5));
        assert_eq!(head, b);
        assert_eq!(head.rows(), &rows[..]);
        // Same round trip through the columnar representation.
        let cb = TupleBatch::from_columns(schema(), b.columns().to_vec(), b.len());
        let mut chead = cb.slice(0..2);
        chead.append(cb.slice(2..5));
        assert_eq!(chead, cb);
        // And mixed: a column-primary head absorbs a row-primary tail.
        let mut mixed = cb.slice(0..2);
        mixed.append(b.slice(2..5));
        assert_eq!(mixed, b);
    }

    #[test]
    fn zero_width_batches_track_length() {
        let unit = Schema::new(vec![]);
        let b = TupleBatch::new(unit.clone(), vec![crate::Tuple::unit(), crate::Tuple::unit()]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.rows(), &[crate::Tuple::unit(), crate::Tuple::unit()]);
        assert_eq!(b.slice(0..1).len(), 1);
        let c = TupleBatch::from_columns(unit, vec![], 2);
        assert_eq!(c.rows(), &[crate::Tuple::unit(), crate::Tuple::unit()]);
    }
}
