//! Row representation.
//!
//! A [`Tuple`] is a fixed-width row of [`Value`]s. Tuples are the unit
//! flowing through the Volcano operators; they are cheap to clone because
//! string payloads are reference counted.

use crate::value::Value;
use std::fmt;
use std::ops::Index;

/// A row of values.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// The zero-column tuple — the single inhabitant of the paper's
    /// "relation over a null schema" that `exists` returns.
    pub fn unit() -> Self {
        Tuple { values: Vec::new() }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True for the zero-column tuple.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The values as a slice.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consume into the backing vector.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// The value at `index`.
    pub fn value(&self, index: usize) -> &Value {
        &self.values[index]
    }

    /// Project onto the given indices (in order).
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple::new(indices.iter().map(|&i| self.values[i].clone()).collect())
    }

    /// Concatenate two tuples: `self ++ other`. This is the `{c} × r`
    /// cross-product step in the formal GApply definition, and the join
    /// output construction.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.len() + other.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Tuple::new(values)
    }
}

impl Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, index: usize) -> &Value {
        &self.values[index]
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple::new(iter.into_iter().collect())
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

/// Build a tuple from a list of things convertible to [`Value`].
///
/// ```
/// use xmlpub_common::{row, Value};
/// let t = row![1, "alice", 2.5];
/// assert_eq!(t.value(1), &Value::str("alice"));
/// ```
#[macro_export]
macro_rules! row {
    () => { $crate::Tuple::unit() };
    ($($v:expr),+ $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($v)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn construction_and_access() {
        let t = row![1, "x", 2.5];
        assert_eq!(t.len(), 3);
        assert_eq!(t[0], Value::Int(1));
        assert_eq!(t.value(1).as_str(), Some("x"));
        assert!(!t.is_empty());
        assert!(Tuple::unit().is_empty());
    }

    #[test]
    fn project_and_concat() {
        let t = row![1, "x", 2.5];
        let p = t.project(&[2, 0]);
        assert_eq!(p, row![2.5, 1]);
        let c = p.concat(&row!["y"]);
        assert_eq!(c, row![2.5, 1, "y"]);
        assert_eq!(Tuple::unit().concat(&t), t);
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(row![1, "a"] < row![1, "b"]);
        assert!(row![1, "z"] < row![2, "a"]);
    }

    #[test]
    fn display() {
        assert_eq!(row![1, "x"].to_string(), "[1, x]");
        assert_eq!(Tuple::unit().to_string(), "[]");
    }

    #[test]
    fn from_iter() {
        let t: Tuple = (0..3).map(Value::Int).collect();
        assert_eq!(t, row![0, 1, 2]);
        let v: Tuple = vec![Value::Int(1)].into();
        assert_eq!(v.len(), 1);
        assert_eq!(v.into_values(), vec![Value::Int(1)]);
    }
}
