//! Shared data model for the XML-publishing reproduction workspace.
//!
//! This crate defines the bottom layer every other crate builds on:
//!
//! * [`Value`] — a dynamically typed SQL value with NULL, total ordering
//!   and hashing (so values can key hash tables even when they are floats);
//! * [`DataType`], [`Field`] and [`Schema`] — column metadata with
//!   qualified-name resolution for the binder;
//! * [`Tuple`] and [`Relation`] — rows and in-memory multiset tables
//!   (the engine follows the paper's multiset semantics throughout);
//! * [`ColumnVec`] and [`NullBitmap`] — typed column vectors (dictionary
//!   encoding for strings, null bitmaps) backing batches and relations;
//! * [`TupleBatch`] — the schema-carrying columnar batch the vectorized
//!   engine passes between operators (row views on demand);
//! * [`ColumnSet`] — ordered column-index sets used by the paper's static
//!   analyses (covering ranges, gp-eval columns, required columns);
//! * [`Error`] — the workspace-wide error type.

pub mod batch;
pub mod colset;
pub mod column;
pub mod delta;
pub mod error;
pub mod relation;
pub mod schema;
pub mod tuple;
pub mod value;

pub use batch::{TupleBatch, DEFAULT_BATCH_SIZE};
pub use colset::ColumnSet;
pub use column::{ColumnVec, NullBitmap, StrDict};
pub use delta::DeltaBatch;
pub use error::{Error, Result};
pub use relation::Relation;
pub use schema::{Field, Schema};
pub use tuple::Tuple;
pub use value::{DataType, Value};
