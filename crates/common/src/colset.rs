//! Ordered sets of column indices.
//!
//! The paper's static analyses are all phrased over sets of columns:
//! grouping columns, *gp-eval* columns (§4.3), join columns and required
//! columns (Definition 1), and the columns a covering range mentions
//! (§4.1). [`ColumnSet`] is a small sorted-vec set tuned for those sizes
//! (schemas here have tens of columns, not thousands).

use std::fmt;

/// A sorted, deduplicated set of column indices.
#[derive(Debug, Clone, PartialEq, Eq, Default, Hash)]
pub struct ColumnSet {
    cols: Vec<usize>,
}

impl ColumnSet {
    /// The empty set.
    pub fn new() -> Self {
        ColumnSet::default()
    }

    /// Build from any iterator of indices (duplicates collapse).
    pub fn from_iter_cols(iter: impl IntoIterator<Item = usize>) -> Self {
        let mut cols: Vec<usize> = iter.into_iter().collect();
        cols.sort_unstable();
        cols.dedup();
        ColumnSet { cols }
    }

    /// The set {0, 1, ..., n-1} — every column of an n-column schema.
    pub fn all(n: usize) -> Self {
        ColumnSet { cols: (0..n).collect() }
    }

    /// Number of columns in the set.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, col: usize) -> bool {
        self.cols.binary_search(&col).is_ok()
    }

    /// Insert one column.
    pub fn insert(&mut self, col: usize) {
        if let Err(pos) = self.cols.binary_search(&col) {
            self.cols.insert(pos, col);
        }
    }

    /// Set union.
    pub fn union(&self, other: &ColumnSet) -> ColumnSet {
        ColumnSet::from_iter_cols(self.cols.iter().chain(other.cols.iter()).copied())
    }

    /// Set intersection.
    pub fn intersect(&self, other: &ColumnSet) -> ColumnSet {
        ColumnSet::from_iter_cols(self.cols.iter().copied().filter(|c| other.contains(*c)))
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &ColumnSet) -> ColumnSet {
        ColumnSet::from_iter_cols(self.cols.iter().copied().filter(|c| !other.contains(*c)))
    }

    /// Whether every column of `self` is in `other`.
    pub fn is_subset(&self, other: &ColumnSet) -> bool {
        self.cols.iter().all(|c| other.contains(*c))
    }

    /// Iterate the indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.cols.iter().copied()
    }

    /// The indices as a slice (ascending).
    pub fn as_slice(&self) -> &[usize] {
        &self.cols
    }

    /// Consume into a `Vec<usize>` (ascending).
    pub fn into_vec(self) -> Vec<usize> {
        self.cols
    }

    /// Remap every index through `f`, dropping columns where `f` returns
    /// `None`. Used when an analysis result crosses a projection boundary.
    pub fn remap(&self, f: impl Fn(usize) -> Option<usize>) -> ColumnSet {
        ColumnSet::from_iter_cols(self.cols.iter().filter_map(|&c| f(c)))
    }
}

impl FromIterator<usize> for ColumnSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        ColumnSet::from_iter_cols(iter)
    }
}

impl From<&[usize]> for ColumnSet {
    fn from(cols: &[usize]) -> Self {
        ColumnSet::from_iter_cols(cols.iter().copied())
    }
}

impl fmt::Display for ColumnSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.cols.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "#{c}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_sort() {
        let s = ColumnSet::from_iter_cols([3, 1, 3, 2, 1]);
        assert_eq!(s.as_slice(), &[1, 2, 3]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn set_algebra() {
        let a: ColumnSet = [0, 1, 2].into_iter().collect();
        let b: ColumnSet = [2, 3].into_iter().collect();
        assert_eq!(a.union(&b).as_slice(), &[0, 1, 2, 3]);
        assert_eq!(a.intersect(&b).as_slice(), &[2]);
        assert_eq!(a.difference(&b).as_slice(), &[0, 1]);
        assert!(ColumnSet::new().is_subset(&a));
        assert!(b.intersect(&a).is_subset(&a));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn insert_and_contains() {
        let mut s = ColumnSet::new();
        assert!(s.is_empty());
        s.insert(5);
        s.insert(2);
        s.insert(5);
        assert_eq!(s.as_slice(), &[2, 5]);
        assert!(s.contains(5));
        assert!(!s.contains(3));
    }

    #[test]
    fn all_and_remap() {
        let s = ColumnSet::all(4);
        assert_eq!(s.as_slice(), &[0, 1, 2, 3]);
        let r = s.remap(|c| if c % 2 == 0 { Some(c / 2) } else { None });
        assert_eq!(r.as_slice(), &[0, 1]);
    }

    #[test]
    fn display() {
        let s: ColumnSet = [1, 4].into_iter().collect();
        assert_eq!(s.to_string(), "{#1,#4}");
        assert_eq!(ColumnSet::new().to_string(), "{}");
    }
}
